//! Admission control for the socket tier: shed load instead of queueing
//! without bound.
//!
//! The worker pool's queue is the only place latency can hide — workers
//! drain in micro-batches, so once the queue is deeper than the pool can
//! clear in an SLA, every additional accepted request only makes every
//! response later. The policy here is the classic high-water mark: when
//! the queue is at or past it, new `/predict` requests are answered
//! immediately with `503` + `Retry-After` (cheap for us, actionable for a
//! well-behaved client) rather than admitted. Shedding keeps p99 of the
//! *accepted* requests bounded under overload — the serving tier degrades
//! by answering fewer requests, not by answering all of them late.

use std::time::Duration;

/// The load-shedding policy for one listener.
#[derive(Debug, Clone)]
pub struct ShedPolicy {
    /// Queue depth (jobs waiting in the worker pool) at or beyond which
    /// new prediction requests are shed.
    pub queue_high_water: usize,
    /// The `Retry-After` hint attached to shed responses.
    pub retry_after: Duration,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self { queue_high_water: 256, retry_after: Duration::from_secs(1) }
    }
}

/// One admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admit the request into the pool queue.
    Accept,
    /// Shed it: answer `503` with this `Retry-After`, in whole seconds
    /// (minimum 1 — a zero hint reads as "retry immediately", which is
    /// exactly the stampede the shed exists to prevent).
    Shed {
        /// Whole-second retry hint.
        retry_after_secs: u64,
    },
}

impl ShedPolicy {
    /// Decides admission for a request given the current queue depth.
    pub fn decide(&self, queue_depth: usize) -> Admission {
        if queue_depth >= self.queue_high_water {
            Admission::Shed { retry_after_secs: self.retry_after.as_secs().max(1) }
        } else {
            Admission::Accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_at_and_above_the_high_water_mark() {
        let policy = ShedPolicy { queue_high_water: 4, retry_after: Duration::from_secs(3) };
        assert_eq!(policy.decide(0), Admission::Accept);
        assert_eq!(policy.decide(3), Admission::Accept);
        assert_eq!(policy.decide(4), Admission::Shed { retry_after_secs: 3 });
        assert_eq!(policy.decide(1000), Admission::Shed { retry_after_secs: 3 });
    }

    #[test]
    fn retry_after_never_rounds_to_zero() {
        let policy = ShedPolicy { queue_high_water: 0, retry_after: Duration::from_millis(100) };
        assert_eq!(policy.decide(0), Admission::Shed { retry_after_secs: 1 });
    }
}

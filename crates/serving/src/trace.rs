//! End-to-end request tracing: per-request span timelines recorded into a
//! bounded store with slowest-trace retention.
//!
//! Every socket request can carry a trace id (from an `x-overton-trace`
//! header, or generated) and a [`RequestTrace`] — eight monotonic spans
//! covering the whole request path:
//! accept → parse → admission → queue-wait → batch-wait → engine-forward
//! → encode → write. Span boundaries are plain atomic stores of
//! microsecond offsets from the request's arrival instant, merged with
//! `fetch_min`/`fetch_max` so a request whose records split across
//! micro-batches still yields one coherent timeline. The same discipline
//! as [`crate::Telemetry::attach_observer`] applies: workers only ever
//! touch lock-free atomics; the handler-side [`TraceStore`] mutex is
//! never taken on the worker hot path, and a contended slowest-list
//! update is dropped (and counted), never waited on.
//!
//! The serde types ([`Span`], [`TraceReport`]) double as the span schema
//! the build pipeline writes to `runs/<id>/trace.jsonl`, so `overton
//! trace` reads one format for both serve-side and build-side timelines.

use crate::telemetry::LatencyHistogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of spans on the request path.
pub const REQUEST_SPANS: usize = 8;

/// The stages of the request path, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanName {
    /// Socket read of the request (keep-alive idle wait + HTTP parse).
    Accept,
    /// JSON body decode and label normalization.
    Parse,
    /// Admission control (the authoritative post-parse shed decision).
    Admission,
    /// Enqueue until a worker drains the job into a batch.
    QueueWait,
    /// Batch formation: drain until the engine forward begins.
    BatchWait,
    /// The engine's batched forward pass.
    EngineForward,
    /// Response JSON encoding.
    Encode,
    /// Serializing and writing the response to the socket.
    Write,
}

impl SpanName {
    /// All spans, in causal order.
    pub const ALL: [SpanName; REQUEST_SPANS] = [
        SpanName::Accept,
        SpanName::Parse,
        SpanName::Admission,
        SpanName::QueueWait,
        SpanName::BatchWait,
        SpanName::EngineForward,
        SpanName::Encode,
        SpanName::Write,
    ];

    /// The stable wire name of the span (used in `/metrics` labels and
    /// `trace.jsonl`).
    pub fn name(self) -> &'static str {
        match self {
            SpanName::Accept => "accept",
            SpanName::Parse => "parse",
            SpanName::Admission => "admission",
            SpanName::QueueWait => "queue-wait",
            SpanName::BatchWait => "batch-wait",
            SpanName::EngineForward => "engine-forward",
            SpanName::Encode => "encode",
            SpanName::Write => "write",
        }
    }

    fn index(self) -> usize {
        SpanName::ALL.iter().position(|&s| s == self).expect("span is in ALL")
    }
}

/// One completed span: `[start, end]` as microsecond offsets from the
/// trace origin. The serialization is the span schema shared by the
/// serving tier (`/trace/<id>`) and the build pipeline
/// (`runs/<id>/trace.jsonl`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Span {
    /// Stage name (one of the [`SpanName`] wire names, or a pipeline
    /// stage name on the build side).
    pub name: String,
    /// Start offset from the trace origin, in microseconds.
    pub start_micros: u64,
    /// End offset from the trace origin, in microseconds.
    pub end_micros: u64,
}

impl Span {
    /// The span's wall time in microseconds (zero if the clock skewed).
    pub fn wall_micros(&self) -> u64 {
        self.end_micros.saturating_sub(self.start_micros)
    }
}

/// How a traced request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The request is still being handled.
    InFlight,
    /// Every record was answered.
    Ok,
    /// Decoding or validation failed (a 4xx, or per-record errors).
    Error,
    /// Admission control turned the request away after parse.
    Shed,
}

impl TraceOutcome {
    /// The stable wire name of the outcome.
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::InFlight => "in-flight",
            TraceOutcome::Ok => "ok",
            TraceOutcome::Error => "error",
            TraceOutcome::Shed => "shed",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => TraceOutcome::Ok,
            2 => TraceOutcome::Error,
            3 => TraceOutcome::Shed,
            _ => TraceOutcome::InFlight,
        }
    }
}

/// One trace as JSON — the `/trace/<id>` response body and the shape the
/// CLI renders.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceReport {
    /// The trace id (client-supplied or generated).
    pub id: String,
    /// How the request ended (a [`TraceOutcome`] wire name).
    pub outcome: String,
    /// Records in the request batch.
    pub records: u64,
    /// Offset of the latest recorded span end — the request's total wall
    /// time in microseconds.
    pub total_micros: u64,
    /// Recorded spans, in causal order; spans a request never reached
    /// (e.g. queue-wait on a shed request) are absent.
    pub spans: Vec<Span>,
}

const UNSET_START: u64 = u64::MAX;

/// The live, lock-free span record of one in-flight request.
///
/// Shared as `Arc` between the connection handler and every pool job the
/// request fanned into; all stamping is atomic (`fetch_min` on starts,
/// `fetch_max` on ends), so concurrent workers of one batch — or several
/// batches of one request — merge into a single envelope per span.
#[derive(Debug)]
pub struct RequestTrace {
    id: String,
    started: Instant,
    starts: [AtomicU64; REQUEST_SPANS],
    ends: [AtomicU64; REQUEST_SPANS],
    records: AtomicU64,
    outcome: AtomicU8,
}

impl RequestTrace {
    /// Starts a trace; `started` is the origin all span offsets are
    /// measured from (the instant the connection began reading the
    /// request).
    pub fn start(id: String, started: Instant) -> Arc<Self> {
        Arc::new(Self {
            id,
            started,
            starts: [const { AtomicU64::new(UNSET_START) }; REQUEST_SPANS],
            ends: [const { AtomicU64::new(0) }; REQUEST_SPANS],
            records: AtomicU64::new(0),
            outcome: AtomicU8::new(0),
        })
    }

    /// The trace id.
    pub fn id(&self) -> &str {
        &self.id
    }

    fn offset(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.started).as_micros().min(u128::from(u64::MAX - 1)) as u64
    }

    /// Marks `span` as starting now.
    pub fn begin(&self, span: SpanName) {
        self.begin_at(span, Instant::now());
    }

    /// Marks `span` as starting at `at` (merged with `fetch_min` when
    /// stamped from several workers).
    pub fn begin_at(&self, span: SpanName, at: Instant) {
        let off = self.offset(at);
        self.starts[span.index()].fetch_min(off, Ordering::Relaxed);
    }

    /// Marks `span` as ending now.
    pub fn end(&self, span: SpanName) {
        self.end_at(span, Instant::now());
    }

    /// Marks `span` as ending at `at` (merged with `fetch_max`).
    pub fn end_at(&self, span: SpanName, at: Instant) {
        let off = self.offset(at);
        self.ends[span.index()].fetch_max(off, Ordering::Relaxed);
    }

    /// Records the batch size of the request.
    pub fn set_records(&self, n: u64) {
        self.records.store(n, Ordering::Relaxed);
    }

    /// Records how the request ended.
    pub fn set_outcome(&self, outcome: TraceOutcome) {
        let v = match outcome {
            TraceOutcome::InFlight => 0,
            TraceOutcome::Ok => 1,
            TraceOutcome::Error => 2,
            TraceOutcome::Shed => 3,
        };
        self.outcome.store(v, Ordering::Relaxed);
    }

    /// The `[start, end]` offsets of a span, when both were stamped.
    pub fn span_micros(&self, span: SpanName) -> Option<(u64, u64)> {
        let i = span.index();
        let start = self.starts[i].load(Ordering::Relaxed);
        let end = self.ends[i].load(Ordering::Relaxed);
        (start != UNSET_START && end >= start).then_some((start, end))
    }

    /// Offset of the latest recorded span end — total wall time so far.
    pub fn total_micros(&self) -> u64 {
        self.ends.iter().map(|e| e.load(Ordering::Relaxed)).max().unwrap_or(0)
    }

    /// A point-in-time serialized view of the trace.
    pub fn report(&self) -> TraceReport {
        let spans = SpanName::ALL
            .iter()
            .filter_map(|&s| {
                self.span_micros(s).map(|(start_micros, end_micros)| Span {
                    name: s.name().to_string(),
                    start_micros,
                    end_micros,
                })
            })
            .collect();
        TraceReport {
            id: self.id.clone(),
            outcome: TraceOutcome::from_u8(self.outcome.load(Ordering::Relaxed)).name().into(),
            records: self.records.load(Ordering::Relaxed),
            total_micros: self.total_micros(),
            spans,
        }
    }
}

/// Tracing knobs for the socket tier.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Most recent traces retained for `/trace/<id>` lookup.
    pub capacity: usize,
    /// Slowest traces retained by total duration (top-K, survives ring
    /// eviction).
    pub slowest: usize,
    /// Trace every Nth request without a client-supplied id (`1` traces
    /// everything, `0` traces only requests that send `x-overton-trace`).
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 256, slowest: 16, sample_every: 1 }
    }
}

/// Whether a client-supplied trace id is acceptable: 1–64 characters of
/// `[A-Za-z0-9._-]`. Anything else is ignored and a fresh id generated —
/// header values flow into logs and metrics labels, so the alphabet is
/// closed.
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 64
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

struct StoreInner {
    recent: VecDeque<Arc<RequestTrace>>,
    slowest: Vec<Arc<RequestTrace>>,
}

/// A bounded trace retention store: a ring of recent traces for
/// `/trace/<id>` lookup plus a top-K slowest list for `/traces` and
/// `overton trace <addr>`.
///
/// Workers never touch this — only the connection handler inserts (at
/// admission) and finalizes (after the response write). Per-stage
/// duration histograms are lock-free atomics updated at finalization, so
/// `/metrics` rendering never contends with request handling either.
pub struct TraceStore {
    config: TraceConfig,
    seq: AtomicU64,
    recorded: AtomicU64,
    sampled_out: AtomicU64,
    id_seed: u64,
    stage_hist: [LatencyHistogram; REQUEST_SPANS],
    open: AtomicUsize,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("config", &self.config)
            .field("recorded", &self.recorded.load(Ordering::Relaxed))
            .field("sampled_out", &self.sampled_out.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new(config: TraceConfig) -> Self {
        // A per-store seed keeps generated ids distinct across server
        // restarts without any global state.
        let id_seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self {
            config,
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            id_seed,
            stage_hist: [const { LatencyHistogram::new() }; REQUEST_SPANS],
            open: AtomicUsize::new(0),
            inner: Mutex::new(StoreInner { recent: VecDeque::new(), slowest: Vec::new() }),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Admits one request into tracing: a valid client-supplied id is
    /// always traced (and echoed); without one, every
    /// [`TraceConfig::sample_every`]-th request is. Returns `None` when
    /// the request is sampled out.
    pub fn admit(&self, header_id: Option<&str>, started: Instant) -> Option<Arc<RequestTrace>> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = match header_id.filter(|id| valid_trace_id(id)) {
            Some(id) => id.to_string(),
            None => {
                if self.config.sample_every == 0 || !seq.is_multiple_of(self.config.sample_every) {
                    self.sampled_out.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                self.generate_id(seq)
            }
        };
        let trace = RequestTrace::start(id, started);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("trace store poisoned");
        if inner.recent.len() >= self.config.capacity.max(1) {
            inner.recent.pop_front();
        }
        inner.recent.push_back(Arc::clone(&trace));
        Some(trace)
    }

    fn generate_id(&self, seq: u64) -> String {
        // splitmix64 over (seed, seq): well-mixed, collision-free per
        // store, and cheap — no RNG state to lock.
        let mut z = self.id_seed.wrapping_add(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        format!("{:016x}", z ^ (z >> 31))
    }

    /// Finalizes a trace after the response write: folds each completed
    /// span into the per-stage duration histograms and offers the trace
    /// to the slowest-K list.
    pub fn finish(&self, trace: &Arc<RequestTrace>) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        for span in SpanName::ALL {
            if let Some((start, end)) = trace.span_micros(span) {
                self.stage_hist[span.index()]
                    .record(std::time::Duration::from_micros(end.saturating_sub(start)));
            }
        }
        if self.config.slowest == 0 {
            return;
        }
        let total = trace.total_micros();
        // try_lock: a contended slowest-list update is dropped rather
        // than waited on — retention is best-effort, latency is not.
        let Ok(mut inner) = self.inner.try_lock() else { return };
        let slowest = &mut inner.slowest;
        if slowest.len() < self.config.slowest {
            slowest.push(Arc::clone(trace));
            slowest.sort_by_key(|t| std::cmp::Reverse(t.total_micros()));
        } else if slowest.last().is_some_and(|t| t.total_micros() < total) {
            slowest.pop();
            slowest.push(Arc::clone(trace));
            slowest.sort_by_key(|t| std::cmp::Reverse(t.total_micros()));
        }
    }

    /// Looks a trace up by id (recent ring first, then the slowest list).
    pub fn get(&self, id: &str) -> Option<TraceReport> {
        let inner = self.inner.lock().expect("trace store poisoned");
        inner
            .recent
            .iter()
            .rev()
            .chain(inner.slowest.iter())
            .find(|t| t.id() == id)
            .map(|t| t.report())
    }

    /// The slowest retained traces, slowest first.
    pub fn slowest(&self) -> Vec<TraceReport> {
        let inner = self.inner.lock().expect("trace store poisoned");
        let mut reports: Vec<TraceReport> = inner.slowest.iter().map(|t| t.report()).collect();
        reports.sort_by_key(|r| std::cmp::Reverse(r.total_micros));
        reports
    }

    /// Traces recorded (admitted) so far.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Requests not traced because sampling skipped them.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out.load(Ordering::Relaxed)
    }

    /// Admitted traces not yet finalized.
    pub fn open(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }

    /// The duration histogram of one request-path stage.
    pub fn stage_histogram(&self, span: SpanName) -> &LatencyHistogram {
        &self.stage_hist[span.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_merge_across_stampers_and_report_in_order() {
        let origin = Instant::now();
        let trace = RequestTrace::start("t1".into(), origin);
        let at = |ms: u64| origin + Duration::from_millis(ms);
        trace.begin_at(SpanName::Accept, at(0));
        trace.end_at(SpanName::Accept, at(1));
        trace.begin_at(SpanName::QueueWait, at(2));
        // Two workers stamp the same span: min start, max end win.
        trace.end_at(SpanName::QueueWait, at(5));
        trace.end_at(SpanName::QueueWait, at(4));
        trace.begin_at(SpanName::QueueWait, at(3));
        trace.set_outcome(TraceOutcome::Ok);
        trace.set_records(4);
        let report = trace.report();
        assert_eq!(report.outcome, "ok");
        assert_eq!(report.records, 4);
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].name, "accept");
        let qw = &report.spans[1];
        assert_eq!((qw.start_micros, qw.end_micros), (2_000, 5_000));
        assert_eq!(report.total_micros, 5_000);
        // A span that only began (no end) is not reported.
        trace.begin_at(SpanName::BatchWait, at(6));
        assert_eq!(trace.report().spans.len(), 2);
    }

    #[test]
    fn store_retains_recent_and_slowest_and_samples() {
        let store = TraceStore::new(TraceConfig { capacity: 4, slowest: 2, sample_every: 1 });
        let origin = Instant::now();
        for i in 0..8u64 {
            let trace = store.admit(None, origin).expect("sample_every=1 traces all");
            trace.begin_at(SpanName::Accept, origin);
            trace.end_at(SpanName::Accept, origin + Duration::from_millis(i));
            store.finish(&trace);
        }
        assert_eq!(store.recorded(), 8);
        assert_eq!(store.open(), 0);
        let slowest = store.slowest();
        assert_eq!(slowest.len(), 2);
        assert!(slowest[0].total_micros >= slowest[1].total_micros);
        assert_eq!(slowest[0].total_micros, 7_000);
        // The slowest trace outlives ring eviction (capacity 4 < 8).
        assert!(store.get(&slowest[0].id).is_some());
        assert_eq!(store.stage_histogram(SpanName::Accept).count(), 8);
        assert_eq!(store.stage_histogram(SpanName::Parse).count(), 0);
    }

    #[test]
    fn client_ids_validate_and_sampling_skips() {
        assert!(valid_trace_id("req-1.a_B"));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id("has space"));
        assert!(!valid_trace_id(&"x".repeat(65)));
        let store = TraceStore::new(TraceConfig { capacity: 8, slowest: 2, sample_every: 0 });
        // sample_every = 0: only explicit ids are traced.
        assert!(store.admit(None, Instant::now()).is_none());
        assert_eq!(store.sampled_out(), 1);
        let t = store.admit(Some("mine"), Instant::now()).expect("explicit id always traces");
        assert_eq!(t.id(), "mine");
        // An invalid header id falls back to sampling (here: off).
        assert!(store.admit(Some("bad id!"), Instant::now()).is_none());
    }

    #[test]
    fn generated_ids_are_distinct() {
        let store = TraceStore::new(TraceConfig::default());
        let a = store.admit(None, Instant::now()).unwrap();
        let b = store.admit(None, Instant::now()).unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id().len(), 16);
    }

    #[test]
    fn report_roundtrips_as_json() {
        let trace = RequestTrace::start("rt".into(), Instant::now());
        trace.begin(SpanName::Accept);
        trace.end(SpanName::Accept);
        trace.set_outcome(TraceOutcome::Error);
        let report = trace.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.outcome, "error");
    }
}

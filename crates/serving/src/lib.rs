//! # overton-serving
//!
//! The production serving runtime for the Overton reproduction — the
//! post-deployment half of the paper's loop, where the "deployable
//! production model" of §2.4 actually meets traffic:
//!
//! - **Worker pool with dynamic micro-batching** ([`WorkerPool`]): requests
//!   queue behind `std::thread` workers that drain whatever is waiting (up
//!   to `max_batch`) and run it through the batched forward path
//!   ([`overton_model::Server::predict_batch`]), amortizing per-record
//!   overhead under load without adding latency when idle.
//! - **Model-pair cascade** ([`CascadeEngine`]): the small (SLA) model
//!   answers everything; low-confidence responses escalate to the large
//!   (quality) model, with per-route counters (§2.4's large/small pairs as
//!   a runtime policy).
//! - **Canary deployment** ([`DeploymentManager`]): candidates from the
//!   [`overton_model::ModelRegistry`] shadow live traffic, are scored
//!   per-tag/per-slice with [`overton_monitor::QualityReport`], and are
//!   promoted (hot-swap behind the stable serving signature) or
//!   auto-rolled-back on any per-group regression.
//! - **Live telemetry** ([`Telemetry`]): QPS, latency quantiles
//!   (p50/p95/p99), shed counts, per-slice traffic shares and confidence
//!   drift against a training-time [`TrafficBaseline`] — the
//!   pre-gold-label monitoring signals of §1.
//! - **The socket tier** ([`net`]): `overton serve --listen` — a bounded
//!   hand-rolled HTTP/1.1 front end feeding the same pool, with
//!   load-shedding past a queue high-water mark, connection caps,
//!   per-request deadlines, and graceful drain.
//! - **Request tracing + scrape exposition** ([`trace`], [`prom`]): every
//!   socket request carries a trace id (`x-overton-trace`, echoed) and an
//!   eight-span timeline (accept → … → write) retained in a bounded store
//!   with slowest-K retention; `GET /metrics` renders counters, gauges,
//!   and per-stage/per-slice histograms as Prometheus text exposition.
//!
//! Drive it with `overton-nlp`'s `TrafficStream` (Poisson arrivals over
//! the synthetic query generator); see `tests/serving.rs` for the full loop
//! and `crates/bench`'s `serving_throughput` for the batching win.

#![warn(missing_docs)]

mod cascade;
mod deploy;
pub mod net;
mod pool;
pub mod prom;
mod score;
mod telemetry;
pub mod trace;

pub use cascade::{CascadeCounters, CascadeEngine, Route};
pub use deploy::{CanaryConfig, CanaryOutcome, DeployEvent, DeploymentManager};
pub use pool::{ServeReply, ServingConfig, Ticket, WorkerPool};
pub use prom::{validate_exposition, ConnGauges, MetricsExt, PromWriter};
pub use score::score_response;
pub use telemetry::{
    confidence_bin, latency_bucket, latency_bucket_upper, LatencyHistogram, ServeSample, Telemetry,
    TelemetrySnapshot, TrafficBaseline, CONFIDENCE_BINS, LATENCY_BUCKETS,
};
pub use trace::{
    RequestTrace, Span, SpanName, TraceConfig, TraceOutcome, TraceReport, TraceStore, REQUEST_SPANS,
};

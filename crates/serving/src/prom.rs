//! Prometheus text exposition for the serving tier.
//!
//! `GET /metrics` renders the pool's [`Telemetry`], the trace store's
//! per-stage histograms, and the listener's connection gauges in the
//! standard text format (`# HELP`/`# TYPE` headers, `name{label="v"}
//! value` samples, cumulative `_bucket`/`_sum`/`_count` histograms), so
//! any off-the-shelf scraper can consume Overton's serving signals
//! without a bespoke client. Histograms reuse the workspace bucket
//! schemes: latency buckets are [`crate::latency_bucket_upper`] bounds in
//! seconds, confidence buckets are the [`CONFIDENCE_BINS`] fixed-width
//! bin edges.
//!
//! [`validate_exposition`] is a strict line-grammar checker — the CI
//! smoke and the `--probe` self-check run every scraped line through it,
//! so a malformed metric fails the build rather than a dashboard.

use crate::telemetry::{
    latency_bucket_upper, LatencyHistogram, Telemetry, CONFIDENCE_BINS, LATENCY_BUCKETS,
};
use crate::trace::{SpanName, TraceStore};
use std::fmt::Write as _;
use std::sync::Arc;

/// An extension hook appending extra exposition text to `GET /metrics`
/// (the CLI wires `overton_obs::export` in through this).
pub type MetricsExt = Arc<dyn Fn(&mut String) + Send + Sync>;

/// Connection-level gauges from the listener.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnGauges {
    /// Currently open handler connections.
    pub active: u64,
    /// Connections accepted into a handler so far.
    pub accepted: u64,
    /// Connections refused at the door (over the connection cap).
    pub refused: u64,
}

/// An incremental writer for the Prometheus text format: header lines,
/// escaped label values, cumulative histogram series.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` and `# TYPE` header for a metric family.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Writes one sample line with the given labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.labels(labels);
        let _ = writeln!(self.out, " {}", format_value(value));
    }

    /// Writes one integer-valued sample line.
    pub fn count(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        self.labels(labels);
        let _ = writeln!(self.out, " {value}");
    }

    fn labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (name, value)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{name}=\"{}\"", escape_label(value));
        }
        self.out.push('}');
    }

    /// Writes a full histogram series — cumulative `_bucket` lines (with
    /// the closing `+Inf`), `_sum`, and `_count` — from per-bucket counts
    /// and their upper bounds.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: impl IntoIterator<Item = (f64, u64)>,
        sum: f64,
    ) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (upper, count) in buckets {
            cumulative += count;
            let upper = format_value(upper);
            let mut labels: Vec<(&str, &str)> = labels.to_vec();
            labels.push(("le", &upper));
            self.count(&bucket_name, &labels, cumulative);
        }
        let mut inf_labels: Vec<(&str, &str)> = labels.to_vec();
        inf_labels.push(("le", "+Inf"));
        self.count(&bucket_name, &inf_labels, cumulative);
        self.sample(&format!("{name}_sum"), labels, sum);
        self.count(&format!("{name}_count"), labels, cumulative);
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Appends a latency-scale histogram (log2-µs buckets rendered in
/// seconds) to the writer.
fn latency_histogram(
    w: &mut PromWriter,
    name: &str,
    labels: &[(&str, &str)],
    h: &LatencyHistogram,
) {
    let counts = h.bucket_counts();
    let buckets = (0..LATENCY_BUCKETS)
        .map(|i| (latency_bucket_upper(i).as_secs_f64(), counts[i]))
        .collect::<Vec<_>>();
    w.histogram(name, labels, buckets, h.sum_micros() as f64 / 1e6);
}

/// Appends a confidence histogram (fixed-width bins over `[0, 1]`; the
/// sum is approximated from bin midpoints, the bin scheme carrying the
/// real signal).
fn confidence_histogram(w: &mut PromWriter, name: &str, labels: &[(&str, &str)], counts: &[u64]) {
    let width = 1.0 / CONFIDENCE_BINS as f64;
    let buckets = counts.iter().enumerate().map(|(i, &c)| ((i + 1) as f64 * width, c));
    let sum: f64 =
        counts.iter().enumerate().map(|(i, &c)| (i as f64 + 0.5) * width * c as f64).sum();
    w.histogram(name, labels, buckets, sum);
}

/// Renders the serving tier's metrics as Prometheus text exposition.
///
/// `traces` adds per-stage duration histograms and trace-store counters;
/// `conns` adds the listener's connection gauges; `cascade` adds per-route
/// model-pair counters (small/large routing, quantized answers, escalation
/// rate). All are optional so the renderer also serves embedded
/// (non-socket, single-model) pools.
pub fn render_metrics(
    telemetry: &Telemetry,
    traces: Option<&TraceStore>,
    conns: Option<ConnGauges>,
    cascade: Option<crate::cascade::CascadeCounters>,
) -> String {
    let mut w = PromWriter::new();
    let snap = telemetry.snapshot();
    w.family("overton_requests_served_total", "counter", "Successfully served requests.");
    w.count("overton_requests_served_total", &[], snap.served);
    w.family(
        "overton_request_errors_total",
        "counter",
        "Requests that failed validation or decoding.",
    );
    w.count("overton_request_errors_total", &[], snap.errors);
    w.family(
        "overton_requests_shed_total",
        "counter",
        "Requests shed by admission control before reaching a worker.",
    );
    w.count("overton_requests_shed_total", &[], snap.shed);
    w.family(
        "overton_observer_dropped_total",
        "counter",
        "Observer samples dropped because the bounded channel was full.",
    );
    w.count("overton_observer_dropped_total", &[], snap.observer_dropped);
    w.family(
        "overton_request_latency_seconds",
        "histogram",
        "Queue plus inference latency per served request.",
    );
    latency_histogram(&mut w, "overton_request_latency_seconds", &[], telemetry.latency());
    w.family("overton_confidence", "histogram", "Response confidence over served traffic.");
    confidence_histogram(&mut w, "overton_confidence", &[], &telemetry.confidence_counts());
    w.family("overton_slice_requests_total", "counter", "Served requests predicted in each slice.");
    let slice_counts = telemetry.slice_counts();
    for (i, name) in telemetry.slice_names().iter().enumerate() {
        w.count("overton_slice_requests_total", &[("slice", name)], slice_counts[i]);
    }
    w.family("overton_slice_confidence", "histogram", "Response confidence per predicted slice.");
    for (i, name) in telemetry.slice_names().iter().enumerate() {
        if let Some(counts) = telemetry.slice_confidence_counts(i) {
            confidence_histogram(&mut w, "overton_slice_confidence", &[("slice", name)], &counts);
        }
    }
    if let Some(store) = traces {
        w.family(
            "overton_stage_duration_seconds",
            "histogram",
            "Wall time per request-path stage, from finalized traces.",
        );
        for span in SpanName::ALL {
            latency_histogram(
                &mut w,
                "overton_stage_duration_seconds",
                &[("stage", span.name())],
                store.stage_histogram(span),
            );
        }
        w.family("overton_traces_recorded_total", "counter", "Requests admitted into tracing.");
        w.count("overton_traces_recorded_total", &[], store.recorded());
        w.family(
            "overton_traces_sampled_out_total",
            "counter",
            "Requests not traced because sampling skipped them.",
        );
        w.count("overton_traces_sampled_out_total", &[], store.sampled_out());
        w.family("overton_traces_open", "gauge", "Admitted traces not yet finalized.");
        w.count("overton_traces_open", &[], store.open() as u64);
    }
    if let Some(conns) = conns {
        w.family("overton_connections_active", "gauge", "Currently open handler connections.");
        w.count("overton_connections_active", &[], conns.active);
        w.family(
            "overton_connections_accepted_total",
            "counter",
            "Connections accepted into a handler.",
        );
        w.count("overton_connections_accepted_total", &[], conns.accepted);
        w.family(
            "overton_connections_refused_total",
            "counter",
            "Connections refused over the connection cap.",
        );
        w.count("overton_connections_refused_total", &[], conns.refused);
    }
    if let Some(cascade) = cascade {
        w.family(
            "overton_cascade_requests_total",
            "counter",
            "Answered requests per cascade route (small = answered by the SLA model, \
             large = escalated on low confidence).",
        );
        w.count("overton_cascade_requests_total", &[("route", "small")], cascade.small);
        w.count("overton_cascade_requests_total", &[("route", "large")], cascade.escalated);
        w.family(
            "overton_cascade_quantized_answers_total",
            "counter",
            "Responses produced by the small model's i8 quantized inference path.",
        );
        w.count("overton_cascade_quantized_answers_total", &[], cascade.quantized);
        w.family(
            "overton_cascade_escalation_rate",
            "gauge",
            "Fraction of routed requests escalated to the large model since engine start.",
        );
        w.sample("overton_cascade_escalation_rate", &[], cascade.escalation_rate());
    }
    w.finish()
}

/// Validates that `text` is well-formed Prometheus text exposition: every
/// line is a `# HELP`/`# TYPE` header, a comment, or a sample matching
/// `name{label="value",...} value [timestamp]`. Returns the first
/// offending line on failure.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        validate_line(line).map_err(|why| format!("line {}: {why}: {line:?}", lineno + 1))?;
    }
    Ok(())
}

fn validate_line(line: &str) -> Result<(), &'static str> {
    if line.is_empty() {
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix('#') {
        let rest = rest.strip_prefix(' ').ok_or("comment without space after '#'")?;
        if let Some(header) = rest.strip_prefix("HELP ") {
            let (name, _help) = header.split_once(' ').ok_or("HELP without text")?;
            return valid_metric_name(name).then_some(()).ok_or("bad metric name in HELP");
        }
        if let Some(header) = rest.strip_prefix("TYPE ") {
            let (name, kind) = header.split_once(' ').ok_or("TYPE without kind")?;
            if !valid_metric_name(name) {
                return Err("bad metric name in TYPE");
            }
            return matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped")
                .then_some(())
                .ok_or("unknown TYPE kind");
        }
        // Bare comments are legal exposition.
        return Ok(());
    }
    // Sample: name[{labels}] value [timestamp]
    let name_end = line.find(['{', ' ']).ok_or("sample without value")?;
    if !valid_metric_name(&line[..name_end]) {
        return Err("bad metric name");
    }
    let rest = &line[name_end..];
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = find_label_close(body).ok_or("unterminated label set")?;
        validate_labels(&body[..close])?;
        body[close + 1..].strip_prefix(' ').ok_or("no space after label set")?
    } else {
        rest.strip_prefix(' ').ok_or("no space before value")?
    };
    let mut parts = rest.split(' ');
    let value = parts.next().ok_or("missing value")?;
    if !valid_sample_value(value) {
        return Err("unparseable sample value");
    }
    match parts.next() {
        None => Ok(()),
        Some(ts) if ts.parse::<i64>().is_ok() && parts.next().is_none() => Ok(()),
        Some(_) => Err("trailing garbage after value"),
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Finds the `}` closing a label set, skipping escaped quotes inside
/// label values.
fn find_label_close(body: &str) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match (in_string, escaped, c) {
            (true, true, _) => escaped = false,
            (true, false, '\\') => escaped = true,
            (true, false, '"') => in_string = false,
            (false, _, '"') => in_string = true,
            (false, _, '}') => return Some(i),
            _ => {}
        }
    }
    None
}

fn validate_labels(body: &str) -> Result<(), &'static str> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let name = &rest[..eq];
        if name.is_empty()
            || !name
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
        {
            return Err("bad label name");
        }
        rest = rest[eq + 1..].strip_prefix('"').ok_or("label value not quoted")?;
        // Walk to the closing unescaped quote.
        let mut escaped = false;
        let mut close = None;
        for (i, c) in rest.char_indices() {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let close = close.ok_or("unterminated label value")?;
        rest = &rest[close + 1..];
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.is_empty() {
            return Err("garbage between labels");
        }
    }
    Ok(())
}

fn valid_sample_value(value: &str) -> bool {
    matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use std::time::{Duration, Instant};

    #[test]
    fn writer_emits_valid_exposition_with_escaping() {
        let mut w = PromWriter::new();
        w.family("demo_total", "counter", "A demo counter.");
        w.count("demo_total", &[("slice", "has \"quotes\" and \\slashes")], 3);
        w.family("demo_seconds", "histogram", "A demo histogram.");
        w.histogram("demo_seconds", &[], [(0.1, 2u64), (1.0, 1)], 0.75);
        let text = w.finish();
        validate_exposition(&text).unwrap();
        assert!(text.contains("demo_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("demo_seconds_sum 0.75"), "{text}");
        assert!(text.contains("demo_seconds_count 3"), "{text}");
        assert!(text.contains("slice=\"has \\\"quotes\\\" and \\\\slashes\""), "{text}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "9leading_digit 1",
            "no_value",
            "name{unterminated=\"x} 1",
            "name{bad-label=\"x\"} 1",
            "name{l=\"v\"}1",
            "name 1 2 3",
            "name notanumber",
            "# TYPE name flavor",
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted: {bad}");
        }
        for good in [
            "name 1",
            "name{l=\"v\"} 1.5",
            "name{l=\"v\",m=\"w\"} +Inf",
            "name 3.2 1712345678",
            "# a bare comment",
            "",
        ] {
            assert!(validate_exposition(good).is_ok(), "rejected: {good}");
        }
    }

    #[test]
    fn render_covers_telemetry_traces_and_connections() {
        let telemetry = Telemetry::new(vec!["hard \"q\"".into()], None);
        telemetry.record_shed();
        let store = TraceStore::new(TraceConfig::default());
        let origin = Instant::now();
        let trace = store.admit(Some("render-test"), origin).unwrap();
        trace.begin_at(SpanName::Accept, origin);
        trace.end_at(SpanName::Accept, origin + Duration::from_micros(400));
        store.finish(&trace);
        let text = render_metrics(
            &telemetry,
            Some(&store),
            Some(ConnGauges { active: 2, accepted: 5, refused: 1 }),
            Some(crate::cascade::CascadeCounters { small: 6, escalated: 2, quantized: 8 }),
        );
        validate_exposition(&text).unwrap();
        for needle in [
            "overton_cascade_requests_total{route=\"small\"} 6",
            "overton_cascade_requests_total{route=\"large\"} 2",
            "overton_cascade_quantized_answers_total 8",
            "overton_cascade_escalation_rate 0.25",
            "overton_requests_shed_total 1",
            "overton_observer_dropped_total 0",
            "overton_request_latency_seconds_bucket",
            "overton_confidence_bucket{le=\"1\"}",
            "overton_stage_duration_seconds_bucket{stage=\"accept\",le=",
            "overton_stage_duration_seconds_count{stage=\"engine-forward\"} 0",
            "overton_traces_recorded_total 1",
            "overton_connections_active 2",
            "overton_connections_refused_total 1",
            "overton_slice_requests_total{slice=\"hard \\\"q\\\"\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}

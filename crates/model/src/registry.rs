//! A content-addressed on-disk model registry (the paper's "S3-like data
//! store that is accessible from the production infrastructure").
//!
//! Artifacts are stored under their content hash; a JSON index maps
//! human-readable names to hash ids with monotone version numbers, so
//! "fetch the latest `factoid-prod` model" is one call. This is what makes
//! retraining-and-redeploying nearly automatic.

use crate::serve::DeployableModel;
use overton_store::rowstore::fnv1a;
use overton_store::StoreError;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A content hash identifying one stored artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArtifactId(pub String);

/// One index entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactEntry {
    /// Content hash.
    pub id: ArtifactId,
    /// Human-readable model name.
    pub name: String,
    /// Monotone per-name version.
    pub version: u64,
    /// Serialized size in bytes.
    pub size: u64,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Index {
    entries: Vec<ArtifactEntry>,
}

/// A directory-backed registry.
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    fn load_index(&self) -> Result<Index, StoreError> {
        match std::fs::read(self.index_path()) {
            Ok(bytes) => Ok(serde_json::from_slice(&bytes)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Index::default()),
            Err(e) => Err(e.into()),
        }
    }

    fn save_index(&self, index: &Index) -> Result<(), StoreError> {
        std::fs::write(self.index_path(), serde_json::to_vec_pretty(index)?)?;
        Ok(())
    }

    /// Publishes an artifact under `name`, returning its content id.
    /// Publishing identical bytes twice is idempotent (same id, new
    /// version entry is skipped).
    pub fn publish(
        &self,
        artifact: &DeployableModel,
        name: &str,
    ) -> Result<ArtifactId, StoreError> {
        let bytes = artifact.to_bytes();
        let id = ArtifactId(format!("{:016x}", fnv1a(&bytes)));
        let blob_path = self.root.join(format!("{}.model.json", id.0));
        if !blob_path.exists() {
            std::fs::write(&blob_path, &bytes)?;
        }
        let mut index = self.load_index()?;
        let already = index.entries.iter().any(|e| e.id == id && e.name == name);
        if !already {
            let version = index
                .entries
                .iter()
                .filter(|e| e.name == name)
                .map(|e| e.version)
                .max()
                .unwrap_or(0)
                + 1;
            index.entries.push(ArtifactEntry {
                id: id.clone(),
                name: name.to_string(),
                version,
                size: bytes.len() as u64,
            });
            self.save_index(&index)?;
        }
        Ok(id)
    }

    /// Fetches an artifact by content id.
    pub fn fetch(&self, id: &ArtifactId) -> Result<DeployableModel, StoreError> {
        let blob_path = self.root.join(format!("{}.model.json", id.0));
        let bytes = std::fs::read(&blob_path)?;
        // Verify content integrity.
        let actual = format!("{:016x}", fnv1a(&bytes));
        if actual != id.0 {
            return Err(StoreError::Corrupt(format!(
                "artifact {} fails content verification",
                id.0
            )));
        }
        DeployableModel::from_bytes(&bytes)
    }

    /// All index entries, in publish order.
    pub fn list(&self) -> Result<Vec<ArtifactEntry>, StoreError> {
        Ok(self.load_index()?.entries)
    }

    /// The newest version id published under `name`.
    pub fn latest(&self, name: &str) -> Result<Option<ArtifactId>, StoreError> {
        Ok(self
            .load_index()?
            .entries
            .into_iter()
            .filter(|e| e.name == name)
            .max_by_key(|e| e.version)
            .map(|e| e.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::FeatureSpace;
    use crate::network::CompiledModel;
    use overton_nlp::{generate_workload, WorkloadConfig};
    use std::collections::BTreeMap;

    fn artifact(seed: u64) -> DeployableModel {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 20,
            n_dev: 5,
            n_test: 5,
            seed,
            ..Default::default()
        });
        let space = FeatureSpace::build(&ds);
        let model = CompiledModel::compile(
            ds.schema(),
            &space,
            &ModelConfig { seed, ..Default::default() },
            None,
        );
        DeployableModel::package(&model, &space, BTreeMap::new())
    }

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir =
            std::env::temp_dir().join(format!("overton-registry-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ModelRegistry::open(dir).unwrap()
    }

    #[test]
    fn publish_fetch_roundtrip() {
        let reg = temp_registry("roundtrip");
        let art = artifact(1);
        let id = reg.publish(&art, "factoid-prod").unwrap();
        let fetched = reg.fetch(&id).unwrap();
        assert_eq!(fetched.to_bytes(), art.to_bytes());
    }

    #[test]
    fn publish_is_idempotent() {
        let reg = temp_registry("idempotent");
        let art = artifact(2);
        let a = reg.publish(&art, "m").unwrap();
        let b = reg.publish(&art, "m").unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.list().unwrap().len(), 1);
    }

    #[test]
    fn versions_increment_per_name() {
        let reg = temp_registry("versions");
        reg.publish(&artifact(3), "m").unwrap();
        let second = reg.publish(&artifact(4), "m").unwrap();
        reg.publish(&artifact(5), "other").unwrap();
        let entries = reg.list().unwrap();
        let versions: Vec<u64> =
            entries.iter().filter(|e| e.name == "m").map(|e| e.version).collect();
        assert_eq!(versions, vec![1, 2]);
        assert_eq!(reg.latest("m").unwrap().unwrap(), second);
        assert!(reg.latest("missing").unwrap().is_none());
    }

    #[test]
    fn corruption_detected_on_fetch() {
        let reg = temp_registry("corrupt");
        let art = artifact(6);
        let id = reg.publish(&art, "m").unwrap();
        // Tamper with the blob.
        let path = std::env::temp_dir()
            .join(format!("overton-registry-corrupt-{}", std::process::id()))
            .join(format!("{}.model.json", id.0));
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len / 2] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        assert!(reg.fetch(&id).is_err());
    }

    #[test]
    fn fetch_unknown_id_errors() {
        let reg = temp_registry("unknown");
        assert!(reg.fetch(&ArtifactId("deadbeef".into())).is_err());
    }
}

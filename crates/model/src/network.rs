//! The compiled multitask network: schema in, differentiable model out.
//!
//! Compilation follows the schema exactly (Figure 2b): every sequence
//! payload gets an embedding + encoder stack; singleton payloads aggregate
//! the payloads they reference; set payloads embed their elements and attach
//! the span of the range payload they point into. Task heads are derived
//! from task types (multiclass → softmax CE, bitvector → per-bit BCE,
//! select → pointer softmax over set elements). The schema never names an
//! architecture — the encoder family, sizes and aggregation all come from a
//! [`ModelConfig`] chosen by search, which is what makes the schema
//! *model-independent*.
//!
//! Slice-based learning (Chen et al., NeurIPS'19; paper §2.2) is compiled
//! in when `config.slice_heads` is set: per slice, an **indicator head**
//! predicts membership from the shared representation and an **expert
//! transform** adds slice-specific capacity; an attention combination
//! re-weights the shared representation before the example-level heads read
//! it. (Per-expert prediction heads from the original paper are folded into
//! the expert transforms — see DESIGN.md.)

use crate::config::{AggregationKind, EmbeddingKind, EncoderKind, ModelConfig};
use crate::features::{CompiledExample, FeatureSpace};
use crate::pretrained::PretrainedEncoder;
use overton_store::{PayloadKind, Schema, TaskKind};
use overton_supervision::ProbLabel;
use overton_tensor::nn::{
    BiLstm, Conv1d, Dropout, Embedding, Linear, Lstm, MultiHeadSelfAttention,
};
use overton_tensor::{Graph, Matrix, NodeId, ParamStore};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A sequence encoder producing `[T, hidden]` from `[T, token_dim]`.
#[derive(Debug, Clone)]
pub(crate) enum Encoder {
    MeanBag(Linear),
    Cnn(Conv1d),
    Lstm(Lstm),
    BiLstm(BiLstm),
    Attention { input_proj: Linear, attention: MultiHeadSelfAttention },
}

impl Encoder {
    fn build(
        store: &mut ParamStore,
        name: &str,
        kind: EncoderKind,
        token_dim: usize,
        hidden: usize,
        rng: &mut SmallRng,
    ) -> Self {
        match kind {
            EncoderKind::MeanBag => Encoder::MeanBag(Linear::new(
                store,
                &format!("{name}.proj"),
                token_dim,
                hidden,
                rng,
            )),
            EncoderKind::Cnn => {
                Encoder::Cnn(Conv1d::new(store, &format!("{name}.conv"), token_dim, hidden, 3, rng))
            }
            EncoderKind::Lstm => {
                Encoder::Lstm(Lstm::new(store, &format!("{name}.lstm"), token_dim, hidden, rng))
            }
            EncoderKind::BiLstm => {
                assert!(hidden.is_multiple_of(2), "BiLstm needs an even hidden size, got {hidden}");
                Encoder::BiLstm(BiLstm::new(
                    store,
                    &format!("{name}.bilstm"),
                    token_dim,
                    hidden / 2,
                    rng,
                ))
            }
            EncoderKind::Attention => {
                let heads = [4usize, 2, 1].into_iter().find(|h| hidden.is_multiple_of(*h)).unwrap();
                Encoder::Attention {
                    input_proj: Linear::new(
                        store,
                        &format!("{name}.inproj"),
                        token_dim,
                        hidden,
                        rng,
                    ),
                    attention: MultiHeadSelfAttention::new(
                        store,
                        &format!("{name}.attn"),
                        hidden,
                        heads,
                        rng,
                    ),
                }
            }
        }
    }

    fn forward(&self, g: &mut Graph, ps: &ParamStore, embedded: NodeId) -> NodeId {
        match self {
            Encoder::MeanBag(proj) => {
                let h = proj.forward(g, ps, embedded);
                g.relu(h)
            }
            Encoder::Cnn(conv) => {
                let h = conv.forward(g, ps, embedded);
                g.relu(h)
            }
            Encoder::Lstm(lstm) => lstm.forward(g, ps, embedded),
            Encoder::BiLstm(bilstm) => bilstm.forward(g, ps, embedded),
            Encoder::Attention { input_proj, attention } => {
                let projected = input_proj.forward(g, ps, embedded);
                let activated = g.tanh(projected);
                attention.forward(g, ps, activated)
            }
        }
    }
}

/// A task head bound to a payload.
#[derive(Debug, Clone)]
pub(crate) enum Head {
    /// Multiclass/bitvector over a sequence payload: logits per row.
    PerElement { payload: String, linear: Linear, bce: bool },
    /// Multiclass/bitvector over a singleton payload: logits on the shared
    /// representation.
    Single { linear: Linear, bce: bool },
    /// Select over a set payload: pointer scores per element.
    Select { payload: String, combine: Linear, score: Linear },
}

/// Slice-based learning heads.
#[derive(Debug, Clone)]
pub(crate) struct SliceModule {
    /// One membership indicator per slice (`[1,2]` logits each).
    pub(crate) indicators: Vec<Linear>,
    /// One expert transform per slice.
    pub(crate) experts: Vec<Linear>,
}

/// The compiled model: parameters plus the layer graph blueprint.
pub struct CompiledModel {
    schema: Schema,
    config: ModelConfig,
    /// All learnable weights.
    pub params: ParamStore,
    pub(crate) token_embedding: Embedding,
    pub(crate) entity_embedding: Embedding,
    pub(crate) encoders: BTreeMap<String, Encoder>,
    /// Learned fallback representation for payloads with no content.
    pub(crate) set_proj: Linear,
    pub(crate) heads: BTreeMap<String, Head>,
    pub(crate) slices: Option<SliceModule>,
    dropout: Dropout,
    pub(crate) hidden: usize,
}

/// Everything a forward pass produces (node ids into the caller's graph).
pub struct ForwardPass {
    /// Per-task logits: `[T, K]` for sequence tasks, `[1, K]` for singleton
    /// tasks, `[1, k]` for select tasks (absent when the payload is empty).
    pub task_logits: BTreeMap<String, NodeId>,
    /// Per-slice indicator logits (`[1, 2]` each).
    pub indicator_logits: Vec<NodeId>,
}

/// A decoded prediction for one task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutput {
    /// Singleton multiclass: winning class and the full distribution.
    Multiclass {
        /// Argmax class index.
        class: usize,
        /// Softmax distribution.
        dist: Vec<f32>,
    },
    /// Sequence multiclass: winning class per element.
    MulticlassSeq {
        /// Argmax class per sequence element.
        classes: Vec<usize>,
    },
    /// Singleton bitvector: thresholded bits and probabilities.
    Bits {
        /// `probs[i] > 0.5`.
        bits: Vec<bool>,
        /// Sigmoid probabilities.
        probs: Vec<f32>,
    },
    /// Sequence bitvector: thresholded bits per element.
    BitsSeq {
        /// Bits per sequence element.
        rows: Vec<Vec<bool>>,
    },
    /// Select: chosen element index and distribution over elements.
    Select {
        /// Argmax element.
        index: usize,
        /// Softmax distribution over set elements.
        dist: Vec<f32>,
    },
}

/// Decoded model output for one example.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Per-task outputs (a task is absent if its payload was empty).
    pub tasks: BTreeMap<String, TaskOutput>,
    /// Predicted slice-membership probabilities (empty without slice heads).
    pub slice_probs: Vec<f32>,
}

impl CompiledModel {
    /// Compiles a schema into a model. `pretrained` initializes the token
    /// embedding table (and is the "with-BERT" path of Figure 4b).
    pub fn compile(
        schema: &Schema,
        space: &FeatureSpace,
        config: &ModelConfig,
        pretrained: Option<&PretrainedEncoder>,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut params = ParamStore::new();
        let hidden = config.hidden_dim;

        let mut token_embedding = Embedding::new(
            &mut params,
            "tokens.embedding",
            space.token_vocab.len(),
            config.token_dim,
            &mut rng,
        );
        if let Some(pre) = pretrained {
            assert_eq!(
                config.embedding,
                EmbeddingKind::Pretrained,
                "pretrained artifact supplied but config.embedding is Learned"
            );
            token_embedding = pre.init_embedding(&mut params, &space.token_vocab, config.token_dim);
        }
        // A `Pretrained` config without an artifact is allowed: the serving
        // loader compiles the skeleton this way and then overwrites all
        // parameter values from the stored artifact.
        let entity_embedding = Embedding::new(
            &mut params,
            "entities.embedding",
            space.entity_vocab.len(),
            config.entity_dim,
            &mut rng,
        );

        // One encoder per sequence payload.
        let mut encoders = BTreeMap::new();
        for (name, def) in &schema.payloads {
            if matches!(def.kind, PayloadKind::Sequence { .. }) {
                encoders.insert(
                    name.clone(),
                    Encoder::build(
                        &mut params,
                        &format!("payload.{name}"),
                        config.encoder,
                        config.token_dim,
                        hidden,
                        &mut rng,
                    ),
                );
            }
        }

        // Set-element projection: entity embedding ++ span summary -> hidden.
        let set_proj =
            Linear::new(&mut params, "set.proj", config.entity_dim + hidden, hidden, &mut rng);

        // Task heads.
        let mut heads = BTreeMap::new();
        for (task, def) in &schema.tasks {
            let payload_kind = &schema.payloads[&def.payload].kind;
            let head = match (&def.kind, payload_kind) {
                (TaskKind::Multiclass { classes }, PayloadKind::Sequence { .. }) => {
                    Head::PerElement {
                        payload: def.payload.clone(),
                        linear: Linear::new(
                            &mut params,
                            &format!("head.{task}"),
                            hidden,
                            classes.len(),
                            &mut rng,
                        ),
                        bce: false,
                    }
                }
                (TaskKind::Bitvector { labels }, PayloadKind::Sequence { .. }) => {
                    Head::PerElement {
                        payload: def.payload.clone(),
                        linear: Linear::new(
                            &mut params,
                            &format!("head.{task}"),
                            hidden,
                            labels.len(),
                            &mut rng,
                        ),
                        bce: true,
                    }
                }
                (TaskKind::Multiclass { classes }, _) => Head::Single {
                    linear: Linear::new(
                        &mut params,
                        &format!("head.{task}"),
                        hidden,
                        classes.len(),
                        &mut rng,
                    ),
                    bce: false,
                },
                (TaskKind::Bitvector { labels }, _) => Head::Single {
                    linear: Linear::new(
                        &mut params,
                        &format!("head.{task}"),
                        hidden,
                        labels.len(),
                        &mut rng,
                    ),
                    bce: true,
                },
                (TaskKind::Select, _) => Head::Select {
                    payload: def.payload.clone(),
                    combine: Linear::new(
                        &mut params,
                        &format!("head.{task}.combine"),
                        2 * hidden,
                        hidden,
                        &mut rng,
                    ),
                    score: Linear::new(
                        &mut params,
                        &format!("head.{task}.score"),
                        hidden,
                        1,
                        &mut rng,
                    ),
                },
            };
            heads.insert(task.clone(), head);
        }

        // Slice heads.
        let slices = (config.slice_heads && !space.slice_names.is_empty()).then(|| SliceModule {
            indicators: space
                .slice_names
                .iter()
                .map(|s| {
                    Linear::new(&mut params, &format!("slice.{s}.indicator"), hidden, 2, &mut rng)
                })
                .collect(),
            experts: space
                .slice_names
                .iter()
                .map(|s| {
                    Linear::new(&mut params, &format!("slice.{s}.expert"), hidden, hidden, &mut rng)
                })
                .collect(),
        });

        Self {
            schema: schema.clone(),
            config: config.clone(),
            params,
            token_embedding,
            entity_embedding,
            encoders,
            set_proj,
            heads,
            slices,
            dropout: Dropout::new(config.dropout),
            hidden,
        }
    }

    /// The schema this model was compiled from.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.num_weights()
    }

    /// Whether slice heads were compiled in.
    pub fn has_slice_heads(&self) -> bool {
        self.slices.is_some()
    }

    /// Runs the network over one example, emitting logits for every task
    /// whose payload has content.
    pub fn forward(
        &self,
        g: &mut Graph,
        example: &CompiledExample,
        train: bool,
        rng: &mut SmallRng,
    ) -> ForwardPass {
        let ps = &self.params;

        // 1. Encode every sequence payload.
        let mut seq_enc: BTreeMap<&str, NodeId> = BTreeMap::new();
        for (name, encoder) in &self.encoders {
            let ids: Vec<usize> = match example.sequences.get(name) {
                Some(ids) if !ids.is_empty() => ids.clone(),
                _ => vec![overton_nlp::PAD],
            };
            let embedded = self.token_embedding.forward(g, ps, &ids);
            let encoded = encoder.forward(g, ps, embedded);
            let encoded = self.dropout.forward(g, encoded, train, rng);
            seq_enc.insert(name.as_str(), encoded);
        }

        // 2. Singleton payloads aggregate their base payloads.
        let mut single_repr: BTreeMap<&str, NodeId> = BTreeMap::new();
        for name in self.schema.payload_topo_order() {
            let def = &self.schema.payloads[&name];
            if !matches!(def.kind, PayloadKind::Singleton) {
                continue;
            }
            let mut parts: Vec<NodeId> = Vec::new();
            for base in &def.base {
                if let Some(&enc) = seq_enc.get(base.as_str()) {
                    parts.push(enc);
                } else if let Some(repr) = single_repr.get(base.as_str()) {
                    parts.push(*repr);
                }
            }
            let repr = if parts.is_empty() {
                g.constant(Matrix::zeros(1, self.hidden))
            } else {
                let stacked = g.concat_rows(&parts);
                match self.config.aggregation {
                    AggregationKind::Mean => g.mean_rows(stacked),
                    AggregationKind::Max => g.max_rows(stacked),
                }
            };
            let key: &str =
                self.schema.payloads.keys().find(|k| **k == name).expect("payload exists").as_str();
            single_repr.insert(key, repr);
        }

        // 3. Shared example-level representation: mean of singleton reprs
        //    (or of aggregated sequence encodings when none exist).
        let shared = if single_repr.is_empty() {
            let pooled: Vec<NodeId> = seq_enc.values().map(|&enc| g.mean_rows(enc)).collect();
            if pooled.is_empty() {
                g.constant(Matrix::zeros(1, self.hidden))
            } else {
                let stacked = g.concat_rows(&pooled);
                g.mean_rows(stacked)
            }
        } else {
            let reprs: Vec<NodeId> = single_repr.values().copied().collect();
            let stacked = g.concat_rows(&reprs);
            g.mean_rows(stacked)
        };

        // 4. Slice-based re-weighting of the shared representation.
        let mut indicator_logits = Vec::new();
        let shared = if let Some(slices) = &self.slices {
            let mut weight_logits: Vec<NodeId> = vec![g.constant(Matrix::scalar(0.0))];
            let mut expert_reprs: Vec<NodeId> = vec![shared];
            for (indicator, expert) in slices.indicators.iter().zip(&slices.experts) {
                let logits = indicator.forward(g, ps, shared);
                indicator_logits.push(logits);
                // Membership confidence enters the attention as the logit
                // margin in favour of membership.
                let member = g.slice_cols(logits, 1, 2);
                let non_member = g.slice_cols(logits, 0, 1);
                let margin = g.sub(member, non_member);
                weight_logits.push(margin);
                let r = expert.forward(g, ps, shared);
                expert_reprs.push(g.relu(r));
            }
            let logits_row = g.concat_cols(&weight_logits);
            let attn = g.softmax_rows(logits_row); // [1, S+1]
            let mut combined: Option<NodeId> = None;
            for (i, &repr) in expert_reprs.iter().enumerate() {
                let w = g.slice_cols(attn, i, i + 1); // [1,1]
                let scaled = g.mul_row_scalar(repr, w);
                combined = Some(match combined {
                    None => scaled,
                    Some(acc) => g.add(acc, scaled),
                });
            }
            combined.expect("at least the base repr")
        } else {
            shared
        };

        // 5. Set payloads: per-element representations.
        let mut set_repr: BTreeMap<&str, (NodeId, usize)> = BTreeMap::new();
        for (name, def) in &self.schema.payloads {
            if !matches!(def.kind, PayloadKind::Set) {
                continue;
            }
            let Some(elements) = example.sets.get(name) else { continue };
            if elements.is_empty() {
                continue;
            }
            let range_enc = def.range.as_deref().and_then(|r| seq_enc.get(r).copied());
            let mut rows = Vec::with_capacity(elements.len());
            for &(entity_id, (lo, hi)) in elements {
                let emb = self.entity_embedding.forward(g, ps, &[entity_id]);
                let span_summary = match range_enc {
                    Some(enc) => {
                        let t_len = g.value(enc).rows();
                        let lo = lo.min(t_len.saturating_sub(1));
                        let hi = hi.clamp(lo + 1, t_len);
                        let span_rows: Vec<usize> = (lo..hi).collect();
                        let picked = g.select_rows(enc, &span_rows);
                        g.mean_rows(picked)
                    }
                    None => g.constant(Matrix::zeros(1, self.hidden)),
                };
                let cat = g.concat_cols(&[emb, span_summary]);
                let projected = self.set_proj.forward(g, ps, cat);
                rows.push(g.tanh(projected));
            }
            let stacked = g.concat_rows(&rows);
            set_repr.insert(name.as_str(), (stacked, elements.len()));
        }

        // 6. Task heads.
        let mut task_logits = BTreeMap::new();
        for (task, head) in &self.heads {
            match head {
                Head::PerElement { payload, linear, .. } => {
                    if let Some(&enc) = seq_enc.get(payload.as_str()) {
                        // Skip placeholder-only sequences (payload absent).
                        if example.sequences.get(payload).is_some_and(|ids| !ids.is_empty()) {
                            task_logits.insert(task.clone(), linear.forward(g, ps, enc));
                        }
                    }
                }
                Head::Single { linear, .. } => {
                    task_logits.insert(task.clone(), linear.forward(g, ps, shared));
                }
                Head::Select { payload, combine, score } => {
                    let Some(&(elements, k)) = set_repr.get(payload.as_str()) else { continue };
                    // Broadcast the shared repr to k rows, score each pair.
                    let context_rows = g.select_rows(shared, &vec![0; k]);
                    let paired = g.concat_cols(&[context_rows, elements]);
                    let hidden = combine.forward(g, ps, paired);
                    let activated = g.tanh(hidden);
                    let scores = score.forward(g, ps, activated); // [k,1]
                    task_logits.insert(task.clone(), g.transpose(scores)); // [1,k]
                }
            }
        }

        ForwardPass { task_logits, indicator_logits }
    }

    /// Builds the total training loss for one example: task losses against
    /// probabilistic targets plus (optionally) slice-indicator losses.
    /// Returns `None` when the example supervises nothing.
    pub fn loss(
        &self,
        g: &mut Graph,
        pass: &ForwardPass,
        example: &CompiledExample,
        indicator_loss_weight: f32,
    ) -> Option<NodeId> {
        let mut terms: Vec<NodeId> = Vec::new();
        for (task, target) in &example.targets {
            let Some(&logits) = pass.task_logits.get(task) else { continue };
            let Some(head) = self.heads.get(task) else { continue };
            let term = match (head, target) {
                (Head::PerElement { bce: false, .. }, ProbLabel::SeqDist(rows)) => {
                    let (t, k) = g.value(logits).shape();
                    if rows.len() != t {
                        continue;
                    }
                    let mut targets = Matrix::zeros(t, k);
                    let mut weights = vec![0.0f32; t];
                    for (i, row) in rows.iter().enumerate() {
                        if row.len() == k && row.iter().sum::<f32>() > 0.0 {
                            targets.row_mut(i).copy_from_slice(row);
                            weights[i] = 1.0;
                        }
                    }
                    if weights.iter().all(|&w| w == 0.0) {
                        continue;
                    }
                    g.cross_entropy(logits, &targets, &weights)
                }
                (Head::PerElement { bce: true, .. }, ProbLabel::SeqBits(rows)) => {
                    let (t, b) = g.value(logits).shape();
                    if rows.len() != t {
                        continue;
                    }
                    let mut targets = Matrix::zeros(t, b);
                    for (i, row) in rows.iter().enumerate() {
                        if row.len() == b {
                            targets.row_mut(i).copy_from_slice(row);
                        }
                    }
                    let mask = Matrix::ones(t, b);
                    g.bce_with_logits(logits, &targets, &mask)
                }
                (Head::Single { bce: false, .. }, ProbLabel::Dist(dist)) => {
                    let k = g.value(logits).cols();
                    if dist.len() != k {
                        continue;
                    }
                    let targets = Matrix::from_rows(std::slice::from_ref(dist));
                    g.cross_entropy(logits, &targets, &[1.0])
                }
                (Head::Single { bce: true, .. }, ProbLabel::Bits(bits)) => {
                    let b = g.value(logits).cols();
                    if bits.len() != b {
                        continue;
                    }
                    let targets = Matrix::from_rows(std::slice::from_ref(bits));
                    let mask = Matrix::ones(1, b);
                    g.bce_with_logits(logits, &targets, &mask)
                }
                (Head::Select { .. }, ProbLabel::Dist(dist)) => {
                    let k = g.value(logits).cols();
                    if dist.len() != k {
                        continue;
                    }
                    let targets = Matrix::from_rows(std::slice::from_ref(dist));
                    g.cross_entropy(logits, &targets, &[1.0])
                }
                _ => continue,
            };
            terms.push(term);
        }
        // Indicator supervision comes from slice tags, which are known on
        // every training record.
        if indicator_loss_weight > 0.0 {
            for (s, &logits) in pass.indicator_logits.iter().enumerate() {
                let member = example.slice_membership.get(s).copied().unwrap_or(false);
                let mut target = Matrix::zeros(1, 2);
                target[(0, usize::from(member))] = 1.0;
                let ce = g.cross_entropy(logits, &target, &[1.0]);
                terms.push(g.scale(ce, indicator_loss_weight));
            }
        }
        let mut total: Option<NodeId> = None;
        for term in terms {
            total = Some(match total {
                None => term,
                Some(acc) => g.add(acc, term),
            });
        }
        total
    }

    /// Runs inference and decodes every task output.
    pub fn predict(&self, example: &CompiledExample) -> Prediction {
        let mut g = Graph::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let pass = self.forward(&mut g, example, false, &mut rng);
        self.decode(&g, &pass)
    }

    /// Runs inference over a batch of examples through one shared graph.
    ///
    /// This is the serving hot loop: [`Graph::param`] copies each weight
    /// matrix into the tape, so per-example graphs re-copy the entire model
    /// (embedding tables included) for every record. The batched path uses a
    /// param-cached graph ([`Graph::with_param_cache`]) so weights are
    /// brought in once per *batch*, amortizing the per-example overhead.
    /// Outputs are identical to calling [`CompiledModel::predict`] per
    /// example.
    pub fn predict_batch(&self, examples: &[CompiledExample]) -> Vec<Prediction> {
        let mut g = Graph::with_param_cache();
        let mut rng = SmallRng::seed_from_u64(0);
        examples
            .iter()
            .map(|example| {
                let pass = self.forward(&mut g, example, false, &mut rng);
                self.decode(&g, &pass)
            })
            .collect()
    }

    /// Decodes one forward pass into per-task outputs and slice
    /// probabilities.
    fn decode(&self, g: &Graph, pass: &ForwardPass) -> Prediction {
        let mut tasks = BTreeMap::new();
        for (task, &logits) in &pass.task_logits {
            let head = &self.heads[task];
            let values = g.value(logits).clone();
            let output = match head {
                Head::PerElement { bce: false, .. } => TaskOutput::MulticlassSeq {
                    classes: (0..values.rows()).map(|r| values.row_argmax(r)).collect(),
                },
                Head::PerElement { bce: true, .. } => TaskOutput::BitsSeq {
                    rows: (0..values.rows())
                        .map(|r| values.row(r).iter().map(|&x| x > 0.0).collect())
                        .collect(),
                },
                Head::Single { bce: false, .. } => {
                    let mut dist = values.row(0).to_vec();
                    overton_tensor::softmax_in_place(&mut dist);
                    TaskOutput::Multiclass { class: values.row_argmax(0), dist }
                }
                Head::Single { bce: true, .. } => {
                    let probs: Vec<f32> =
                        values.row(0).iter().map(|&x| overton_tensor::stable_sigmoid(x)).collect();
                    TaskOutput::Bits { bits: probs.iter().map(|&p| p > 0.5).collect(), probs }
                }
                Head::Select { .. } => {
                    let mut dist = values.row(0).to_vec();
                    overton_tensor::softmax_in_place(&mut dist);
                    TaskOutput::Select { index: values.row_argmax(0), dist }
                }
            };
            tasks.insert(task.clone(), output);
        }
        let slice_probs = pass
            .indicator_logits
            .iter()
            .map(|&l| {
                let row = g.value(l).row(0);
                let margin = row[1] - row[0];
                overton_tensor::stable_sigmoid(margin)
            })
            .collect();
        Prediction { tasks, slice_probs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{gold_to_prob, FeatureSpace};
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_store::Dataset;

    fn setup() -> (Dataset, FeatureSpace) {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 60,
            n_dev: 15,
            n_test: 15,
            seed: 11,
            slice_rate: 0.3,
            ..Default::default()
        });
        let space = FeatureSpace::build(&ds);
        (ds, space)
    }

    fn compile(ds: &Dataset, space: &FeatureSpace, encoder: EncoderKind) -> CompiledModel {
        let config = ModelConfig { encoder, ..Default::default() };
        CompiledModel::compile(ds.schema(), space, &config, None)
    }

    #[test]
    fn forward_produces_all_task_logits() {
        let (ds, space) = setup();
        let model = compile(&ds, &space, EncoderKind::Cnn);
        let ex = CompiledExample::from_record(&ds.records()[0], 0, &space, ds.schema());
        let mut g = Graph::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let pass = model.forward(&mut g, &ex, false, &mut rng);
        for task in ["Intent", "POS", "EntityType", "IntentArg"] {
            assert!(pass.task_logits.contains_key(task), "missing logits for {task}");
        }
        let t = ex.sequences["tokens"].len();
        assert_eq!(g.value(pass.task_logits["POS"]).shape(), (t, 8));
        assert_eq!(g.value(pass.task_logits["Intent"]).shape().0, 1);
        assert_eq!(g.value(pass.task_logits["IntentArg"]).cols(), ex.sets["entities"].len());
        assert_eq!(pass.indicator_logits.len(), space.slice_names.len());
    }

    #[test]
    fn every_encoder_kind_compiles_and_runs() {
        let (ds, space) = setup();
        for kind in [
            EncoderKind::MeanBag,
            EncoderKind::Cnn,
            EncoderKind::Lstm,
            EncoderKind::BiLstm,
            EncoderKind::Attention,
        ] {
            let model = compile(&ds, &space, kind);
            let ex = CompiledExample::from_record(&ds.records()[0], 0, &space, ds.schema());
            let pred = model.predict(&ex);
            assert!(pred.tasks.contains_key("Intent"), "{kind:?} lost the Intent head");
        }
    }

    #[test]
    fn loss_builds_and_backprops() {
        let (ds, space) = setup();
        let model = compile(&ds, &space, EncoderKind::Cnn);
        let i = ds.test_indices()[0];
        let record = &ds.records()[i];
        let mut ex = CompiledExample::from_record(record, i, &space, ds.schema());
        for task in ["Intent", "POS", "EntityType", "IntentArg"] {
            if let Some(p) = gold_to_prob(ds.schema(), record, task) {
                ex.targets.insert(task.to_string(), p);
            }
        }
        let mut g = Graph::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let pass = model.forward(&mut g, &ex, true, &mut rng);
        let loss = model.loss(&mut g, &pass, &ex, 0.3).expect("has targets");
        assert!(g.value(loss).scalar_value() > 0.0);
        g.backward(loss);
        let mut params = model.params.clone();
        g.flush_grads(&mut params);
        assert!(params.grad_norm() > 0.0, "gradients must flow");
    }

    #[test]
    fn loss_none_without_targets() {
        let (ds, space) = setup();
        let config = ModelConfig { slice_heads: false, ..Default::default() };
        let model = CompiledModel::compile(ds.schema(), &space, &config, None);
        let ex = CompiledExample::from_record(&ds.records()[0], 0, &space, ds.schema());
        let mut g = Graph::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let pass = model.forward(&mut g, &ex, true, &mut rng);
        assert!(model.loss(&mut g, &pass, &ex, 0.0).is_none());
    }

    #[test]
    fn predictions_decode_all_tasks() {
        let (ds, space) = setup();
        let model = compile(&ds, &space, EncoderKind::MeanBag);
        let ex = CompiledExample::from_record(&ds.records()[0], 0, &space, ds.schema());
        let pred = model.predict(&ex);
        assert!(matches!(pred.tasks["Intent"], TaskOutput::Multiclass { .. }));
        assert!(matches!(pred.tasks["POS"], TaskOutput::MulticlassSeq { .. }));
        assert!(matches!(pred.tasks["EntityType"], TaskOutput::BitsSeq { .. }));
        assert!(matches!(pred.tasks["IntentArg"], TaskOutput::Select { .. }));
        assert_eq!(pred.slice_probs.len(), space.slice_names.len());
        if let TaskOutput::Multiclass { dist, .. } = &pred.tasks["Intent"] {
            let s: f32 = dist.iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn predict_batch_matches_per_example_predict() {
        let (ds, space) = setup();
        let model = compile(&ds, &space, EncoderKind::Cnn);
        let examples: Vec<CompiledExample> = ds
            .test_indices()
            .iter()
            .map(|&i| CompiledExample::from_record(&ds.records()[i], i, &space, ds.schema()))
            .collect();
        let batched = model.predict_batch(&examples);
        assert_eq!(batched.len(), examples.len());
        for (ex, pred) in examples.iter().zip(&batched) {
            assert_eq!(*pred, model.predict(ex), "batched path diverged");
        }
    }

    #[test]
    fn slice_heads_can_be_disabled() {
        let (ds, space) = setup();
        let config = ModelConfig { slice_heads: false, ..Default::default() };
        let model = CompiledModel::compile(ds.schema(), &space, &config, None);
        let ex = CompiledExample::from_record(&ds.records()[0], 0, &space, ds.schema());
        let pred = model.predict(&ex);
        assert!(pred.slice_probs.is_empty());
    }

    #[test]
    fn same_seed_same_weights() {
        let (ds, space) = setup();
        let a = compile(&ds, &space, EncoderKind::Cnn);
        let b = compile(&ds, &space, EncoderKind::Cnn);
        assert_eq!(a.num_weights(), b.num_weights());
        let ex = CompiledExample::from_record(&ds.records()[3], 3, &space, ds.schema());
        assert_eq!(a.predict(&ex), b.predict(&ex));
    }

    #[test]
    fn empty_entity_set_drops_select_task_only() {
        let (ds, space) = setup();
        let model = compile(&ds, &space, EncoderKind::Cnn);
        let mut ex = CompiledExample::from_record(&ds.records()[0], 0, &space, ds.schema());
        ex.sets.get_mut("entities").unwrap().clear();
        let pred = model.predict(&ex);
        assert!(!pred.tasks.contains_key("IntentArg"));
        assert!(pred.tasks.contains_key("Intent"));
    }
}

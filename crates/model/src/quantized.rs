//! Post-training-quantized inference for the cascade's small model.
//!
//! The paper's model pairs (§2.4) exist because "the small model must meet
//! SLA requirements". This module converts a trained [`CompiledModel`] into
//! a [`QuantizedModel`]: every affine weight matrix is stored as i8 codes
//! with per-output-channel scales ([`overton_tensor::quant`]), and the
//! forward pass runs **tape-free** — plain matrix arithmetic with no
//! autodiff graph, no per-node value storage, and no parameter copies into
//! a tape. Embedding tables, biases and activations stay f32; only the
//! matmul weights (the bulk of the parameters and the flops) are
//! quantized, with i32 accumulation inside each dot product.
//!
//! Outputs approximate the f32 model (quantization is lossy by design);
//! the cascade's confidence threshold and the quality-guard tests bound
//! the damage, and escalation still re-runs the full-precision large
//! model.

use crate::features::CompiledExample;
use crate::network::{CompiledModel, Encoder, Head, Prediction, SliceModule, TaskOutput};
use overton_store::{PayloadKind, Schema};
use overton_tensor::nn::{Linear, Lstm};
use overton_tensor::quant::QuantizedLinear;
use overton_tensor::{Matrix, ParamStore};
use std::collections::BTreeMap;

/// A quantized affine layer converted from a [`Linear`]'s parameters.
fn quantize_linear(store: &ParamStore, linear: &Linear) -> QuantizedLinear {
    QuantizedLinear::new(store.value(linear.weight_id()), linear.bias_id().map(|b| store.value(b)))
}

/// One direction of a quantized LSTM. The gate bias is folded into the
/// recurrent projection's bias (the recurrence adds both to the same
/// pre-activation row every step).
struct QuantLstm {
    wx: QuantizedLinear,
    wh: QuantizedLinear,
    hidden: usize,
}

impl QuantLstm {
    fn from_lstm(store: &ParamStore, lstm: &Lstm) -> Self {
        Self {
            wx: QuantizedLinear::new(store.value(lstm.wx_id()), None),
            wh: QuantizedLinear::new(store.value(lstm.wh_id()), Some(store.value(lstm.bias_id()))),
            hidden: lstm.hidden(),
        }
    }

    /// Runs the recurrence over `T x in_dim`, returning `T x hidden`.
    fn forward(&self, xs: &Matrix) -> Matrix {
        let t_len = xs.rows();
        assert!(t_len > 0, "LSTM over an empty sequence");
        let h = self.hidden;
        let xw_all = self.wx.forward(xs);
        let mut h_prev = Matrix::zeros(1, h);
        let mut c_prev = vec![0.0f32; h];
        let mut out = Matrix::zeros(t_len, h);
        for t in 0..t_len {
            // pre = x_t W_x + h_{t-1} W_h + b, gate order [i, f, c, o].
            let mut pre = self.wh.forward(&h_prev);
            for (p, &xw) in pre.as_mut_slice().iter_mut().zip(xw_all.row(t)) {
                *p += xw;
            }
            let pre = pre.as_slice();
            let mut h_t = Matrix::zeros(1, h);
            for j in 0..h {
                let i_gate = overton_tensor::stable_sigmoid(pre[j]);
                let f_gate = overton_tensor::stable_sigmoid(pre[h + j]);
                let c_cand = pre[2 * h + j].tanh();
                let o_gate = overton_tensor::stable_sigmoid(pre[3 * h + j]);
                let c = f_gate * c_prev[j] + i_gate * c_cand;
                c_prev[j] = c;
                h_t[(0, j)] = o_gate * c.tanh();
            }
            out.row_mut(t).copy_from_slice(h_t.row(0));
            h_prev = h_t;
        }
        out
    }
}

/// A quantized sequence encoder mirroring [`Encoder`].
enum QuantEncoder {
    MeanBag(QuantizedLinear),
    Cnn {
        conv: QuantizedLinear,
        kernel: usize,
    },
    Lstm(QuantLstm),
    BiLstm {
        fwd: QuantLstm,
        bwd: QuantLstm,
    },
    Attention {
        input_proj: QuantizedLinear,
        wq: QuantizedLinear,
        wk: QuantizedLinear,
        wv: QuantizedLinear,
        wo: QuantizedLinear,
        heads: usize,
        dim: usize,
    },
}

impl QuantEncoder {
    fn from_encoder(store: &ParamStore, encoder: &Encoder) -> Self {
        match encoder {
            Encoder::MeanBag(proj) => QuantEncoder::MeanBag(quantize_linear(store, proj)),
            Encoder::Cnn(conv) => QuantEncoder::Cnn {
                conv: QuantizedLinear::new(
                    store.value(conv.weight_id()),
                    Some(store.value(conv.bias_id())),
                ),
                kernel: conv.kernel(),
            },
            Encoder::Lstm(lstm) => QuantEncoder::Lstm(QuantLstm::from_lstm(store, lstm)),
            Encoder::BiLstm(bi) => QuantEncoder::BiLstm {
                fwd: QuantLstm::from_lstm(store, bi.fwd()),
                bwd: QuantLstm::from_lstm(store, bi.bwd()),
            },
            Encoder::Attention { input_proj, attention } => QuantEncoder::Attention {
                input_proj: quantize_linear(store, input_proj),
                wq: quantize_linear(store, attention.wq()),
                wk: quantize_linear(store, attention.wk()),
                wv: quantize_linear(store, attention.wv()),
                wo: quantize_linear(store, attention.wo()),
                heads: attention.heads(),
                dim: attention.dim(),
            },
        }
    }

    fn forward(&self, embedded: &Matrix) -> Matrix {
        match self {
            QuantEncoder::MeanBag(proj) => relu(proj.forward(embedded)),
            QuantEncoder::Cnn { conv, kernel } => {
                relu(conv.forward(&im2row(embedded, *kernel, kernel / 2)))
            }
            QuantEncoder::Lstm(lstm) => lstm.forward(embedded),
            QuantEncoder::BiLstm { fwd, bwd } => {
                let f = fwd.forward(embedded);
                let b_rev = bwd.forward(&reverse_rows(embedded));
                f.hstack(&reverse_rows(&b_rev))
            }
            QuantEncoder::Attention { input_proj, wq, wk, wv, wo, heads, dim } => {
                let x = tanh(input_proj.forward(embedded));
                let q = wq.forward(&x);
                let k = wk.forward(&x);
                let v = wv.forward(&x);
                let head_dim = dim / heads;
                let scale = 1.0 / (head_dim as f32).sqrt();
                let mut concat: Option<Matrix> = None;
                for h in 0..*heads {
                    let (lo, hi) = (h * head_dim, (h + 1) * head_dim);
                    let qh = q.slice_cols(lo, hi);
                    let kh = k.slice_cols(lo, hi);
                    let vh = v.slice_cols(lo, hi);
                    let mut scores = qh.matmul_transpose_b(&kh);
                    scores.scale_inplace(scale);
                    for r in 0..scores.rows() {
                        overton_tensor::softmax_in_place(scores.row_mut(r));
                    }
                    let out = scores.matmul(&vh);
                    concat = Some(match concat {
                        None => out,
                        Some(acc) => acc.hstack(&out),
                    });
                }
                wo.forward(&concat.expect("at least one head"))
            }
        }
    }
}

/// A quantized task head mirroring [`Head`].
enum QuantHead {
    PerElement { payload: String, linear: QuantizedLinear, bce: bool },
    Single { linear: QuantizedLinear, bce: bool },
    Select { payload: String, combine: QuantizedLinear, score: QuantizedLinear },
}

/// Quantized slice-based-learning heads mirroring [`SliceModule`].
struct QuantSlices {
    indicators: Vec<QuantizedLinear>,
    experts: Vec<QuantizedLinear>,
}

/// A [`CompiledModel`] converted for i8 inference: same architecture, same
/// decode, quantized affine weights, tape-free forward.
pub struct QuantizedModel {
    schema: Schema,
    aggregation_max: bool,
    token_table: Matrix,
    entity_table: Matrix,
    encoders: BTreeMap<String, QuantEncoder>,
    set_proj: QuantizedLinear,
    heads: BTreeMap<String, QuantHead>,
    slices: Option<QuantSlices>,
    hidden: usize,
}

impl QuantizedModel {
    /// Converts a trained model. The source model is unchanged; the
    /// conversion clones the embedding tables and quantizes every affine
    /// weight matrix to i8 codes with per-output-channel scales.
    pub fn from_model(model: &CompiledModel) -> Self {
        let store = &model.params;
        let encoders = model
            .encoders
            .iter()
            .map(|(name, enc)| (name.clone(), QuantEncoder::from_encoder(store, enc)))
            .collect();
        let heads = model
            .heads
            .iter()
            .map(|(task, head)| {
                let q = match head {
                    Head::PerElement { payload, linear, bce } => QuantHead::PerElement {
                        payload: payload.clone(),
                        linear: quantize_linear(store, linear),
                        bce: *bce,
                    },
                    Head::Single { linear, bce } => {
                        QuantHead::Single { linear: quantize_linear(store, linear), bce: *bce }
                    }
                    Head::Select { payload, combine, score } => QuantHead::Select {
                        payload: payload.clone(),
                        combine: quantize_linear(store, combine),
                        score: quantize_linear(store, score),
                    },
                };
                (task.clone(), q)
            })
            .collect();
        let slices = model.slices.as_ref().map(|SliceModule { indicators, experts }| QuantSlices {
            indicators: indicators.iter().map(|l| quantize_linear(store, l)).collect(),
            experts: experts.iter().map(|l| quantize_linear(store, l)).collect(),
        });
        Self {
            schema: model.schema().clone(),
            aggregation_max: matches!(
                model.config().aggregation,
                crate::config::AggregationKind::Max
            ),
            token_table: store.value(model.token_embedding.table()).clone(),
            entity_table: store.value(model.entity_embedding.table()).clone(),
            encoders,
            set_proj: quantize_linear(store, &model.set_proj),
            heads,
            slices,
            hidden: model.hidden,
        }
    }

    /// Tape-free quantized inference, mirroring [`CompiledModel::predict`]
    /// step for step (with dropout disabled, as in any inference pass).
    pub fn predict(&self, example: &CompiledExample) -> Prediction {
        // 1. Encode every sequence payload.
        let mut seq_enc: BTreeMap<&str, Matrix> = BTreeMap::new();
        for (name, encoder) in &self.encoders {
            let embedded = match example.sequences.get(name) {
                Some(ids) if !ids.is_empty() => self.token_table.select_rows(ids),
                _ => self.token_table.select_rows(&[overton_nlp::PAD]),
            };
            seq_enc.insert(name.as_str(), encoder.forward(&embedded));
        }

        // 2. Singleton payloads aggregate their base payloads.
        let mut single_repr: BTreeMap<&str, Matrix> = BTreeMap::new();
        for name in self.schema.payload_topo_order() {
            let def = &self.schema.payloads[&name];
            if !matches!(def.kind, PayloadKind::Singleton) {
                continue;
            }
            let mut parts: Vec<&Matrix> = Vec::new();
            for base in &def.base {
                if let Some(enc) = seq_enc.get(base.as_str()) {
                    parts.push(enc);
                } else if let Some(repr) = single_repr.get(base.as_str()) {
                    parts.push(repr);
                }
            }
            let repr = if parts.is_empty() {
                Matrix::zeros(1, self.hidden)
            } else {
                let mut stacked = parts[0].clone();
                for p in &parts[1..] {
                    stacked = stacked.vstack(p);
                }
                if self.aggregation_max {
                    max_rows(&stacked)
                } else {
                    mean_rows(&stacked)
                }
            };
            let key: &str =
                self.schema.payloads.keys().find(|k| **k == name).expect("payload exists").as_str();
            single_repr.insert(key, repr);
        }

        // 3. Shared example-level representation.
        let shared = if single_repr.is_empty() {
            let pooled: Vec<Matrix> = seq_enc.values().map(mean_rows).collect();
            match pooled.split_first() {
                None => Matrix::zeros(1, self.hidden),
                Some((first, rest)) => {
                    let mut stacked = first.clone();
                    for p in rest {
                        stacked = stacked.vstack(p);
                    }
                    mean_rows(&stacked)
                }
            }
        } else {
            let mut iter = single_repr.values();
            let mut stacked = iter.next().expect("non-empty").clone();
            for p in iter {
                stacked = stacked.vstack(p);
            }
            mean_rows(&stacked)
        };

        // 4. Slice-based re-weighting of the shared representation.
        let mut indicator_rows: Vec<Matrix> = Vec::new();
        let shared = if let Some(slices) = &self.slices {
            let mut weight_logits = vec![0.0f32];
            let mut expert_reprs: Vec<Matrix> = vec![shared.clone()];
            for (indicator, expert) in slices.indicators.iter().zip(&slices.experts) {
                let logits = indicator.forward(&shared);
                weight_logits.push(logits[(0, 1)] - logits[(0, 0)]);
                indicator_rows.push(logits);
                expert_reprs.push(relu(expert.forward(&shared)));
            }
            overton_tensor::softmax_in_place(&mut weight_logits);
            let mut combined = Matrix::zeros(1, self.hidden);
            for (w, repr) in weight_logits.iter().zip(&expert_reprs) {
                for (o, &x) in combined.as_mut_slice().iter_mut().zip(repr.as_slice()) {
                    *o += w * x;
                }
            }
            combined
        } else {
            shared
        };

        // 5. Set payloads: per-element representations.
        let mut set_repr: BTreeMap<&str, Matrix> = BTreeMap::new();
        for (name, def) in &self.schema.payloads {
            if !matches!(def.kind, PayloadKind::Set) {
                continue;
            }
            let Some(elements) = example.sets.get(name) else { continue };
            if elements.is_empty() {
                continue;
            }
            let range_enc = def.range.as_deref().and_then(|r| seq_enc.get(r));
            let mut stacked: Option<Matrix> = None;
            for &(entity_id, (lo, hi)) in elements {
                let emb = self.entity_table.select_rows(&[entity_id]);
                let span_summary = match range_enc {
                    Some(enc) => {
                        let t_len = enc.rows();
                        let lo = lo.min(t_len.saturating_sub(1));
                        let hi = hi.clamp(lo + 1, t_len);
                        let span_rows: Vec<usize> = (lo..hi).collect();
                        mean_rows(&enc.select_rows(&span_rows))
                    }
                    None => Matrix::zeros(1, self.hidden),
                };
                let row = tanh(self.set_proj.forward(&emb.hstack(&span_summary)));
                stacked = Some(match stacked {
                    None => row,
                    Some(acc) => acc.vstack(&row),
                });
            }
            set_repr.insert(name.as_str(), stacked.expect("non-empty set"));
        }

        // 6. Task heads.
        let mut task_values: BTreeMap<String, Matrix> = BTreeMap::new();
        for (task, head) in &self.heads {
            match head {
                QuantHead::PerElement { payload, linear, .. } => {
                    if let Some(enc) = seq_enc.get(payload.as_str()) {
                        if example.sequences.get(payload).is_some_and(|ids| !ids.is_empty()) {
                            task_values.insert(task.clone(), linear.forward(enc));
                        }
                    }
                }
                QuantHead::Single { linear, .. } => {
                    task_values.insert(task.clone(), linear.forward(&shared));
                }
                QuantHead::Select { payload, combine, score } => {
                    let Some(elements) = set_repr.get(payload.as_str()) else { continue };
                    let k = elements.rows();
                    let context_rows = shared.select_rows(&vec![0; k]);
                    let paired = context_rows.hstack(elements);
                    let activated = tanh(combine.forward(&paired));
                    let scores = score.forward(&activated); // [k, 1]
                    task_values.insert(task.clone(), scores.transpose()); // [1, k]
                }
            }
        }

        self.decode(&task_values, &indicator_rows)
    }

    /// Decodes raw head outputs exactly as the f32 model does.
    fn decode(
        &self,
        task_values: &BTreeMap<String, Matrix>,
        indicator_rows: &[Matrix],
    ) -> Prediction {
        let mut tasks = BTreeMap::new();
        for (task, values) in task_values {
            let output = match &self.heads[task] {
                QuantHead::PerElement { bce: false, .. } => TaskOutput::MulticlassSeq {
                    classes: (0..values.rows()).map(|r| values.row_argmax(r)).collect(),
                },
                QuantHead::PerElement { bce: true, .. } => TaskOutput::BitsSeq {
                    rows: (0..values.rows())
                        .map(|r| values.row(r).iter().map(|&x| x > 0.0).collect())
                        .collect(),
                },
                QuantHead::Single { bce: false, .. } => {
                    let mut dist = values.row(0).to_vec();
                    overton_tensor::softmax_in_place(&mut dist);
                    TaskOutput::Multiclass { class: values.row_argmax(0), dist }
                }
                QuantHead::Single { bce: true, .. } => {
                    let probs: Vec<f32> =
                        values.row(0).iter().map(|&x| overton_tensor::stable_sigmoid(x)).collect();
                    TaskOutput::Bits { bits: probs.iter().map(|&p| p > 0.5).collect(), probs }
                }
                QuantHead::Select { .. } => {
                    let mut dist = values.row(0).to_vec();
                    overton_tensor::softmax_in_place(&mut dist);
                    TaskOutput::Select { index: values.row_argmax(0), dist }
                }
            };
            tasks.insert(task.clone(), output);
        }
        let slice_probs = indicator_rows
            .iter()
            .map(|row| overton_tensor::stable_sigmoid(row[(0, 1)] - row[(0, 0)]))
            .collect();
        Prediction { tasks, slice_probs }
    }
}

fn relu(mut m: Matrix) -> Matrix {
    m.map_inplace(|x| x.max(0.0));
    m
}

fn tanh(mut m: Matrix) -> Matrix {
    m.map_inplace(f32::tanh);
    m
}

fn mean_rows(m: &Matrix) -> Matrix {
    assert!(m.rows() > 0, "mean_rows over an empty matrix");
    let inv = 1.0 / m.rows() as f32;
    let mut out = Matrix::zeros(1, m.cols());
    for r in 0..m.rows() {
        for (o, &x) in out.row_mut(0).iter_mut().zip(m.row(r)) {
            *o += x * inv;
        }
    }
    out
}

fn max_rows(m: &Matrix) -> Matrix {
    assert!(m.rows() > 0, "max_rows over an empty matrix");
    let mut out = Matrix::zeros(1, m.cols());
    for j in 0..m.cols() {
        let mut best = f32::NEG_INFINITY;
        for r in 0..m.rows() {
            best = best.max(m[(r, j)]);
        }
        out[(0, j)] = best;
    }
    out
}

fn reverse_rows(m: &Matrix) -> Matrix {
    let rev: Vec<usize> = (0..m.rows()).rev().collect();
    m.select_rows(&rev)
}

/// Sliding-window unfold matching [`overton_tensor::Graph::im2row`].
fn im2row(m: &Matrix, k: usize, pad: usize) -> Matrix {
    let (t_len, d) = m.shape();
    let mut out = Matrix::zeros(t_len, k * d);
    for t in 0..t_len {
        for o in 0..k {
            let src = t as isize + o as isize - pad as isize;
            if src >= 0 && (src as usize) < t_len {
                out.row_mut(t)[o * d..(o + 1) * d].copy_from_slice(m.row(src as usize));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncoderKind, ModelConfig};
    use crate::features::FeatureSpace;
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_store::Dataset;

    fn setup() -> (Dataset, FeatureSpace) {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 60,
            n_dev: 15,
            n_test: 30,
            seed: 11,
            slice_rate: 0.3,
            ..Default::default()
        });
        let space = FeatureSpace::build(&ds);
        (ds, space)
    }

    fn examples(ds: &Dataset, space: &FeatureSpace) -> Vec<CompiledExample> {
        ds.test_indices()
            .iter()
            .map(|&i| CompiledExample::from_record(&ds.records()[i], i, space, ds.schema()))
            .collect()
    }

    /// Fraction of test examples where the quantized model's argmax answer
    /// agrees with the f32 model's, averaged over distribution-producing
    /// tasks.
    fn agreement(model: &CompiledModel, q: &QuantizedModel, exs: &[CompiledExample]) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for ex in exs {
            let full = model.predict(ex);
            let quant = q.predict(ex);
            for (task, output) in &full.tasks {
                let Some(q_output) = quant.tasks.get(task) else { continue };
                let matched = match (output, q_output) {
                    (
                        TaskOutput::Multiclass { class: a, .. },
                        TaskOutput::Multiclass { class: b, .. },
                    )
                    | (TaskOutput::Select { index: a, .. }, TaskOutput::Select { index: b, .. }) => {
                        a == b
                    }
                    (
                        TaskOutput::MulticlassSeq { classes: a },
                        TaskOutput::MulticlassSeq { classes: b },
                    ) => a == b,
                    (TaskOutput::Bits { bits: a, .. }, TaskOutput::Bits { bits: b, .. }) => a == b,
                    (TaskOutput::BitsSeq { rows: a }, TaskOutput::BitsSeq { rows: b }) => a == b,
                    _ => false,
                };
                total += 1;
                same += usize::from(matched);
            }
        }
        assert!(total > 0, "no comparable task outputs");
        same as f64 / total as f64
    }

    #[test]
    fn every_encoder_kind_survives_quantization() {
        let (ds, space) = setup();
        let exs = examples(&ds, &space);
        for kind in [
            EncoderKind::MeanBag,
            EncoderKind::Cnn,
            EncoderKind::Lstm,
            EncoderKind::BiLstm,
            EncoderKind::Attention,
        ] {
            let config = ModelConfig { encoder: kind, ..Default::default() };
            let model = CompiledModel::compile(ds.schema(), &space, &config, None);
            let q = QuantizedModel::from_model(&model);
            // Untrained weights are small and near-uniform — the hardest
            // regime for argmax agreement — so only demand structure here:
            // every task decoded, same shapes, finite values.
            for ex in &exs {
                let full = model.predict(ex);
                let quant = q.predict(ex);
                assert_eq!(
                    full.tasks.keys().collect::<Vec<_>>(),
                    quant.tasks.keys().collect::<Vec<_>>(),
                    "{kind:?} changed the task set"
                );
                assert_eq!(full.slice_probs.len(), quant.slice_probs.len());
                assert!(quant.slice_probs.iter().all(|p| p.is_finite()));
            }
        }
    }

    #[test]
    fn quantized_predictions_track_f32_after_training() {
        use crate::features::gold_to_prob;
        let (ds, space) = setup();
        let train: Vec<CompiledExample> = ds
            .train_indices()
            .iter()
            .map(|&i| {
                let record = &ds.records()[i];
                let mut ex = CompiledExample::from_record(record, i, &space, ds.schema());
                for task in ds.schema().tasks.keys() {
                    if let Some(p) = gold_to_prob(ds.schema(), record, task) {
                        ex.targets.insert(task.clone(), p);
                    }
                }
                ex
            })
            .collect();
        let mut model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        crate::trainer::train_model(
            &mut model,
            &train,
            &[],
            &crate::config::TrainConfig { epochs: 4, early_stop_patience: 0, ..Default::default() },
        );
        let q = QuantizedModel::from_model(&model);
        let score = agreement(&model, &q, &examples(&ds, &space));
        assert!(score >= 0.9, "quantized/f32 agreement too low: {score:.3}");
    }
}

//! Deployable model artifacts and the serving runtime.
//!
//! Overton "was built to construct a deployable production model" (§2.4):
//! training ends in a self-contained artifact — schema, serving signature,
//! feature space, architecture config and weights — that production loads
//! without any modeling code. Because the signature depends only on the
//! schema, retrained models (even with different searched architectures)
//! are drop-in replacements: *model independence* at serving time.

use crate::config::ModelConfig;
use crate::features::{CompiledExample, FeatureSpace};
use crate::network::{CompiledModel, Prediction, TaskOutput};
use overton_store::{Record, Schema, ServingSignature, StoreError, TaskKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A serialized, production-ready model.
#[derive(Clone, Serialize, Deserialize)]
pub struct DeployableModel {
    /// The schema the model was compiled from.
    pub schema: Schema,
    /// The architecture-independent serving contract.
    pub signature: ServingSignature,
    /// The searched architecture.
    pub config: ModelConfig,
    /// Vocabularies and slice space.
    pub space: FeatureSpace,
    /// Trained weights.
    pub params: overton_tensor::ParamStore,
    /// Free-form metadata (name, training data lineage, etc.).
    pub metadata: BTreeMap<String, String>,
}

impl DeployableModel {
    /// Packages a trained model for deployment.
    pub fn package(
        model: &CompiledModel,
        space: &FeatureSpace,
        metadata: BTreeMap<String, String>,
    ) -> Self {
        Self {
            schema: model.schema().clone(),
            signature: model.schema().serving_signature(),
            config: model.config().clone(),
            space: space.clone(),
            params: model.params.clone(),
            metadata,
        }
    }

    /// Serializes to bytes (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("artifact serialization cannot fail")
    }

    /// Deserializes from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Ok(serde_json::from_slice(bytes)?)
    }

    /// Reconstructs the runnable model (compile the skeleton, then load the
    /// stored weights).
    pub fn instantiate(&self) -> CompiledModel {
        let mut model = CompiledModel::compile(&self.schema, &self.space, &self.config, None);
        model.params.copy_values_from(&self.params);
        model
    }
}

/// One served task output, decoded to label names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServedOutput {
    /// Singleton multiclass: class name + distribution over class names.
    Multiclass {
        /// Winning class name.
        class: String,
        /// `(class, probability)` pairs.
        dist: Vec<(String, f32)>,
    },
    /// Sequence multiclass: one class name per element.
    MulticlassSeq {
        /// Class name per element.
        classes: Vec<String>,
    },
    /// Singleton bitvector: names of the set bits.
    Bits {
        /// Set bits.
        set: Vec<String>,
    },
    /// Sequence bitvector: set-bit names per element.
    BitsSeq {
        /// Set bits per element.
        rows: Vec<Vec<String>>,
    },
    /// Select: chosen element index and its external id.
    Select {
        /// Index into the record's set payload.
        index: usize,
        /// The chosen element's id.
        id: String,
    },
}

/// The response for one record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingResponse {
    /// Per-task outputs, keyed by task name.
    pub tasks: BTreeMap<String, ServedOutput>,
    /// Predicted slice memberships (name, probability).
    pub slices: Vec<(String, f32)>,
    /// Response confidence: the minimum top-probability across the tasks
    /// that produce a distribution (multiclass and select heads); `1.0`
    /// when no such task fired. The model-pair cascade (§2.4) escalates
    /// low-confidence responses from the small model to the large one.
    pub confidence: f32,
}

/// A loaded model ready to answer queries.
pub struct Server {
    model: CompiledModel,
    quantized: Option<crate::QuantizedModel>,
    space: FeatureSpace,
    signature: ServingSignature,
}

impl Server {
    /// Loads an artifact into a runnable server.
    pub fn load(artifact: &DeployableModel) -> Self {
        Self {
            model: artifact.instantiate(),
            quantized: None,
            space: artifact.space.clone(),
            signature: artifact.signature.clone(),
        }
    }

    /// Converts the loaded weights to the i8 inference path
    /// ([`crate::QuantizedModel`]). Subsequent [`Server::predict`] and
    /// [`Server::predict_batch`] calls run tape-free quantized forwards;
    /// the f32 weights are retained (for schema metadata and possible
    /// re-deployment) but no longer drive inference.
    pub fn quantize(mut self) -> Self {
        self.quantized = Some(crate::QuantizedModel::from_model(&self.model));
        self
    }

    /// Whether inference runs on the quantized path.
    pub fn is_quantized(&self) -> bool {
        self.quantized.is_some()
    }

    /// The serving signature (stable across retrains of the same schema).
    pub fn signature(&self) -> &ServingSignature {
        &self.signature
    }

    /// The schema the loaded model was compiled from.
    pub fn schema(&self) -> &Schema {
        self.model.schema()
    }

    /// The feature space (vocabularies and slice names) of the loaded model.
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.space
    }

    /// Validates a record against the schema and predicts all tasks.
    pub fn predict(&self, record: &Record) -> Result<ServingResponse, StoreError> {
        record.validate(self.model.schema())?;
        let example = CompiledExample::from_record(record, 0, &self.space, self.model.schema());
        let prediction = match &self.quantized {
            Some(q) => q.predict(&example),
            None => self.model.predict(&example),
        };
        self.decode_response(record, &prediction)
    }

    /// Validates and predicts a batch of records through the batched
    /// forward path ([`CompiledModel::predict_batch`]), returning one result
    /// per record in input order. Invalid records fail individually without
    /// poisoning the rest of the batch; weights are brought into the
    /// inference graph once per batch rather than once per record.
    pub fn predict_batch(&self, records: &[Record]) -> Vec<Result<ServingResponse, StoreError>> {
        let schema = self.model.schema();
        let mut out: Vec<Option<Result<ServingResponse, StoreError>>> =
            records.iter().map(|r| r.validate(schema).err().map(Err)).collect();
        let valid: Vec<usize> = (0..records.len()).filter(|&i| out[i].is_none()).collect();
        let examples: Vec<CompiledExample> = valid
            .iter()
            .map(|&i| CompiledExample::from_record(&records[i], i, &self.space, schema))
            .collect();
        let predictions = match &self.quantized {
            Some(q) => examples.iter().map(|ex| q.predict(ex)).collect(),
            None => self.model.predict_batch(&examples),
        };
        for (&i, prediction) in valid.iter().zip(&predictions) {
            out[i] = Some(self.decode_response(&records[i], prediction));
        }
        out.into_iter().map(|r| r.expect("every slot filled")).collect()
    }

    /// Decodes a raw prediction into label-named outputs. A task whose
    /// output shape disagrees with the schema's task kind is an error (a
    /// desynchronized artifact must not silently drop tasks from the
    /// response).
    fn decode_response(
        &self,
        record: &Record,
        prediction: &Prediction,
    ) -> Result<ServingResponse, StoreError> {
        let schema = self.model.schema();
        let mut tasks = BTreeMap::new();
        let mut confidence = 1.0f32;
        for (task, output) in &prediction.tasks {
            let kind = &schema.tasks[task].kind;
            let served = match (output, kind) {
                (TaskOutput::Multiclass { class, dist }, TaskKind::Multiclass { classes }) => {
                    confidence = confidence.min(dist.get(*class).copied().unwrap_or(0.0));
                    ServedOutput::Multiclass {
                        class: classes[*class].clone(),
                        dist: classes.iter().cloned().zip(dist.iter().copied()).collect(),
                    }
                }
                (
                    TaskOutput::MulticlassSeq { classes: preds },
                    TaskKind::Multiclass { classes },
                ) => ServedOutput::MulticlassSeq {
                    classes: preds.iter().map(|&c| classes[c].clone()).collect(),
                },
                (TaskOutput::Bits { bits, .. }, TaskKind::Bitvector { labels }) => {
                    ServedOutput::Bits {
                        set: labels
                            .iter()
                            .zip(bits)
                            .filter(|(_, &b)| b)
                            .map(|(l, _)| l.clone())
                            .collect(),
                    }
                }
                (TaskOutput::BitsSeq { rows }, TaskKind::Bitvector { labels }) => {
                    ServedOutput::BitsSeq {
                        rows: rows
                            .iter()
                            .map(|row| {
                                labels
                                    .iter()
                                    .zip(row)
                                    .filter(|(_, &b)| b)
                                    .map(|(l, _)| l.clone())
                                    .collect()
                            })
                            .collect(),
                    }
                }
                (TaskOutput::Select { index, dist }, TaskKind::Select) => {
                    confidence = confidence.min(dist.get(*index).copied().unwrap_or(0.0));
                    let id = match record.payloads.get(&schema.tasks[task].payload) {
                        Some(overton_store::PayloadValue::Set(els)) => {
                            els.get(*index).map(|e| e.id.clone()).unwrap_or_default()
                        }
                        _ => String::new(),
                    };
                    ServedOutput::Select { index: *index, id }
                }
                _ => {
                    return Err(StoreError::Validation(format!(
                        "task '{task}': model output does not match the schema's task kind \
                         (artifact and schema are out of sync)"
                    )));
                }
            };
            tasks.insert(task.clone(), served);
        }
        let slices = self
            .space
            .slice_names
            .iter()
            .cloned()
            .zip(prediction.slice_probs.iter().copied())
            .collect();
        Ok(ServingResponse { tasks, slices, confidence })
    }
}

/// A synchronized large/small model pair trained on the same data (§2.4:
/// "the large model is often used to populate caches and do error analysis,
/// while the small model must meet SLA requirements").
#[derive(Clone, Serialize, Deserialize)]
pub struct ModelPair {
    /// The quality/analysis model.
    pub large: DeployableModel,
    /// The latency-constrained serving model.
    pub small: DeployableModel,
}

impl ModelPair {
    /// Both halves must share schema, signature and feature space — i.e. be
    /// drop-in interchangeable.
    pub fn synchronized(&self) -> bool {
        self.large.schema == self.small.schema
            && self.large.signature == self.small.signature
            && self.large.space.slice_names == self.small.space.slice_names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncoderKind, ModelConfig};
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_store::Dataset;

    fn setup() -> (Dataset, FeatureSpace, CompiledModel) {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 40,
            n_dev: 10,
            n_test: 10,
            seed: 51,
            ..Default::default()
        });
        let space = FeatureSpace::build(&ds);
        let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        (ds, space, model)
    }

    #[test]
    fn package_load_roundtrip_preserves_predictions() {
        let (ds, space, model) = setup();
        let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
        let bytes = artifact.to_bytes();
        let loaded = DeployableModel::from_bytes(&bytes).unwrap();
        let server = Server::load(&loaded);
        let record = &ds.records()[ds.test_indices()[0]];
        let response = server.predict(record).unwrap();
        // Same record through the original model must agree.
        let example = CompiledExample::from_record(record, 0, &space, ds.schema());
        let direct = model.predict(&example);
        if let (
            Some(ServedOutput::Multiclass { class, .. }),
            Some(TaskOutput::Multiclass { class: idx, .. }),
        ) = (response.tasks.get("Intent"), direct.tasks.get("Intent"))
        {
            let classes = match &ds.schema().tasks["Intent"].kind {
                TaskKind::Multiclass { classes } => classes,
                _ => unreachable!(),
            };
            assert_eq!(*class, classes[*idx]);
        } else {
            panic!("Intent output missing");
        }
    }

    #[test]
    fn serving_response_uses_label_names() {
        let (ds, space, model) = setup();
        let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
        let server = Server::load(&artifact);
        let record = &ds.records()[ds.test_indices()[1]];
        let response = server.predict(record).unwrap();
        match &response.tasks["POS"] {
            ServedOutput::MulticlassSeq { classes } => {
                assert!(!classes.is_empty());
                assert!(classes.iter().all(|c| overton_nlp::POS_TAGS.contains(&c.as_str())));
            }
            other => panic!("unexpected POS output {other:?}"),
        }
        match &response.tasks["IntentArg"] {
            ServedOutput::Select { id, .. } => assert!(!id.is_empty()),
            other => panic!("unexpected IntentArg output {other:?}"),
        }
        assert!(!response.slices.is_empty());
    }

    #[test]
    fn invalid_record_rejected() {
        let (_, space, model) = setup();
        let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
        let server = Server::load(&artifact);
        let bad = Record::new().with_label(
            "Intent",
            "w",
            overton_store::TaskLabel::MulticlassOne("NotAClass".into()),
        );
        assert!(server.predict(&bad).is_err());
    }

    #[test]
    fn mismatched_task_output_is_an_error_not_a_dropped_task() {
        let (ds, space, model) = setup();
        let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
        let server = Server::load(&artifact);
        let record = &ds.records()[ds.test_indices()[0]];
        // A desynchronized artifact: the model emitted bit probabilities for
        // the multiclass "Intent" task. The old behaviour silently dropped
        // the task from the response; it must be a StoreError instead.
        let mut prediction =
            model.predict(&CompiledExample::from_record(record, 0, &space, ds.schema()));
        prediction
            .tasks
            .insert("Intent".into(), TaskOutput::Bits { bits: vec![true], probs: vec![0.9] });
        let err = server.decode_response(record, &prediction).unwrap_err();
        assert!(
            matches!(&err, StoreError::Validation(msg) if msg.contains("Intent")),
            "unexpected error {err}"
        );
    }

    #[test]
    fn predict_batch_matches_predict_and_isolates_invalid_records() {
        let (ds, space, model) = setup();
        let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
        let server = Server::load(&artifact);
        let mut records: Vec<Record> =
            ds.test_indices().iter().map(|&i| ds.records()[i].clone()).collect();
        // Poison the middle of the batch with an invalid record.
        let bad = Record::new().with_label(
            "Intent",
            "w",
            overton_store::TaskLabel::MulticlassOne("NotAClass".into()),
        );
        records.insert(records.len() / 2, bad);
        let results = server.predict_batch(&records);
        assert_eq!(results.len(), records.len());
        for (record, result) in records.iter().zip(&results) {
            match result {
                Ok(response) => {
                    assert_eq!(*response, server.predict(record).unwrap());
                    assert!((0.0..=1.0).contains(&response.confidence));
                }
                Err(_) => assert!(record.validate(ds.schema()).is_err()),
            }
        }
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
    }

    #[test]
    fn signature_stable_across_architectures() {
        let (ds, space, _) = setup();
        let a = CompiledModel::compile(
            ds.schema(),
            &space,
            &ModelConfig { encoder: EncoderKind::MeanBag, ..Default::default() },
            None,
        );
        let b = CompiledModel::compile(
            ds.schema(),
            &space,
            &ModelConfig { encoder: EncoderKind::Lstm, hidden_dim: 64, ..Default::default() },
            None,
        );
        let pa = DeployableModel::package(&a, &space, BTreeMap::new());
        let pb = DeployableModel::package(&b, &space, BTreeMap::new());
        assert_eq!(pa.signature, pb.signature, "model independence violated");
    }

    #[test]
    fn model_pair_synchronization() {
        let (ds, space, model) = setup();
        let small_cfg = ModelConfig { hidden_dim: 16, token_dim: 16, ..Default::default() };
        let small = CompiledModel::compile(ds.schema(), &space, &small_cfg, None);
        let pair = ModelPair {
            large: DeployableModel::package(&model, &space, BTreeMap::new()),
            small: DeployableModel::package(&small, &space, BTreeMap::new()),
        };
        assert!(pair.synchronized());
        assert!(pair.small.params.num_weights() < pair.large.params.num_weights());
    }
}

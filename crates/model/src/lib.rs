//! # overton-model
//!
//! The model side of Overton: a **compiler** from schemas to multitask deep
//! models (payload encoders + task heads, Figure 2b), **slice-based
//! learning** capacity (Chen et al. NeurIPS'19), a **trainer** consuming
//! probabilistic labels, coarse **architecture search** over the tuning
//! spec, masked-LM **pretraining** ("BERT-sim", Figure 4b), and the
//! **deployment** path: packaged artifacts, a serving runtime with a stable
//! signature, large/small model pairs, and a content-addressed registry.

#![warn(missing_docs)]

mod compiler;
mod config;
mod distill;
mod evaluate;
mod features;
mod network;
mod pretrained;
mod quantized;
mod registry;
mod search;
mod serve;
mod trainer;

pub use compiler::{prepare, prepare_store, prepare_store_with_space, PreparedData};
pub use config::{
    AggregationKind, EmbeddingKind, EncoderKind, ModelConfig, TrainConfig, TuningSpec,
};
pub use distill::{distill, soften_targets};
pub use evaluate::{evaluate, evaluate_store, Evaluation};
pub use features::{gold_to_prob, CompiledExample, FeatureSpace};
pub use network::{CompiledModel, ForwardPass, Prediction, TaskOutput};
pub use pretrained::{pretrain, PretrainConfig, PretrainedEncoder};
pub use quantized::QuantizedModel;
pub use registry::{ArtifactEntry, ArtifactId, ModelRegistry};
pub use search::{search, SearchConfig, TrialResult};
pub use serve::{DeployableModel, ModelPair, ServedOutput, Server, ServingResponse};
pub use trainer::{dev_agreement, train_model, TrainReport};

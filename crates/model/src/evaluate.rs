//! Evaluation against gold labels, with per-tag and per-slice reports.
//!
//! This produces the fine-grained quality reports that are an Overton
//! engineer's main interface: overall metrics plus one row per tag and per
//! slice, for every task (paper §2.2, "Overton reports the accuracy
//! conditioned on an example being in the slice").

use crate::features::{CompiledExample, FeatureSpace};
use crate::network::{CompiledModel, Prediction, TaskOutput};
use overton_monitor::{multiclass_metrics, Metrics, MetricsAccumulator, QualityReport};
use overton_store::{Dataset, ShardedStore, TaskKind, TaskLabel};
use std::collections::BTreeMap;

/// Evaluation output: one report per task plus the raw predictions.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Per-task quality reports (rows: `overall`, tags, slices).
    pub reports: BTreeMap<String, QualityReport>,
    /// `(record index, prediction)` pairs in evaluation order.
    pub predictions: Vec<(usize, Prediction)>,
}

impl Evaluation {
    /// Overall accuracy for a task (0 when absent).
    pub fn accuracy(&self, task: &str) -> f64 {
        self.reports.get(task).and_then(|r| r.overall()).map_or(0.0, |m| m.accuracy)
    }

    /// Accuracy for a task on one slice (None when the row is absent).
    pub fn slice_accuracy(&self, task: &str, slice: &str) -> Option<f64> {
        self.reports.get(task)?.group(&format!("slice:{slice}")).map(|m| m.accuracy)
    }

    /// Full metrics for a task on one slice — unlike
    /// [`slice_accuracy`](Self::slice_accuracy) this keeps the scored
    /// example count, which is what significance tests and confidence
    /// intervals need.
    pub fn slice_metrics(&self, task: &str, slice: &str) -> Option<Metrics> {
        self.reports.get(task)?.group(&format!("slice:{slice}")).copied()
    }
}

/// Scored pairs for one task on one record.
enum Scored {
    /// (pred class, gold class) pairs with a fixed class count.
    Multiclass(Vec<(usize, usize)>, usize),
    /// (pred bits, gold bits) rows.
    Bits(Vec<(Vec<bool>, Vec<bool>)>),
    /// Select: single correctness.
    Correct(bool),
}

/// Evaluates `model` on the given record indices of `dataset`, scoring
/// against gold labels (records without gold for a task are skipped for
/// that task).
pub fn evaluate(
    model: &CompiledModel,
    dataset: &Dataset,
    indices: &[usize],
    space: &FeatureSpace,
) -> Evaluation {
    let schema = dataset.schema();
    let mut predictions = Vec::with_capacity(indices.len());
    // Per task, per group: accumulated scored pairs.
    let mut grouped: BTreeMap<String, BTreeMap<String, Vec<Scored>>> = BTreeMap::new();

    for &i in indices {
        let record = &dataset.records()[i];
        let example = CompiledExample::from_record(record, i, space, schema);
        let prediction = model.predict(&example);
        for (task, def) in &schema.tasks {
            let Some(output) = prediction.tasks.get(task) else { continue };
            let Some(gold) = record.gold(task) else { continue };
            let Some(scored) = score_one(def.kind.clone(), output, gold) else { continue };
            let groups = record_groups(record);
            let per_task = grouped.entry(task.clone()).or_default();
            for group in groups {
                per_task.entry(group).or_default().push(clone_scored(&scored));
            }
            per_task.entry("overall".into()).or_default().push(scored);
        }
        predictions.push((i, prediction));
    }

    let mut reports = BTreeMap::new();
    for (task, groups) in grouped {
        let mut report = QualityReport::new(&task);
        // `overall` first, then the rest sorted.
        if let Some(scored) = groups.get("overall") {
            report.push("overall", reduce(scored));
        }
        for (group, scored) in &groups {
            if group != "overall" {
                report.push(group, reduce(scored));
            }
        }
        reports.insert(task, report);
    }
    Evaluation { reports, predictions }
}

/// Evaluates `model` on the given **sorted** global rows of a sealed
/// store, shard-parallel: every shard decodes its rows, runs the forward
/// pass, and scores into mergeable per-group
/// [`MetricsAccumulator`] partials; the partials reduce in shard order, so
/// the reports (and the prediction order) are identical to the sequential
/// [`evaluate`] over the equivalent dataset.
pub fn evaluate_store(
    model: &CompiledModel,
    store: &ShardedStore,
    rows: &[u32],
    space: &FeatureSpace,
) -> overton_store::Result<Evaluation> {
    type Grouped = BTreeMap<String, BTreeMap<String, MetricsAccumulator>>;
    let schema = store.schema();
    let partials = store.par_scan_rows(rows, |scan| {
        let mut grouped: Grouped = BTreeMap::new();
        let mut predictions = Vec::with_capacity(scan.len());
        for (i, record) in scan.records() {
            let record = record?;
            let example = CompiledExample::from_record(&record, i, space, schema);
            let prediction = model.predict(&example);
            for (task, def) in &schema.tasks {
                let Some(output) = prediction.tasks.get(task) else { continue };
                let Some(gold) = record.gold(task) else { continue };
                let Some(scored) = score_one(def.kind.clone(), output, gold) else { continue };
                let per_task = grouped.entry(task.clone()).or_default();
                for group in record_groups(&record) {
                    accumulate(per_task, group, &scored);
                }
                accumulate(per_task, "overall".to_string(), &scored);
            }
            predictions.push((i, prediction));
        }
        Ok((grouped, predictions))
    })?;

    let mut grouped: Grouped = BTreeMap::new();
    let mut predictions = Vec::new();
    for (shard_grouped, shard_predictions) in partials {
        for (task, groups) in shard_grouped {
            let per_task = grouped.entry(task).or_default();
            for (group, acc) in groups {
                match per_task.get_mut(&group) {
                    Some(existing) => existing.merge(&acc),
                    None => {
                        per_task.insert(group, acc);
                    }
                }
            }
        }
        predictions.extend(shard_predictions);
    }

    let mut reports = BTreeMap::new();
    for (task, groups) in grouped {
        let mut report = QualityReport::new(&task);
        if let Some(acc) = groups.get("overall") {
            report.push("overall", acc.finalize());
        }
        for (group, acc) in &groups {
            if group != "overall" {
                report.push(group, acc.finalize());
            }
        }
        reports.insert(task, report);
    }
    Ok(Evaluation { reports, predictions })
}

/// Feeds one scored example into the right per-group accumulator,
/// creating it with the matching shape on first touch.
fn accumulate(per_task: &mut BTreeMap<String, MetricsAccumulator>, group: String, scored: &Scored) {
    let acc = per_task.entry(group).or_insert_with(|| match scored {
        Scored::Multiclass(_, k) => MetricsAccumulator::multiclass(*k),
        Scored::Bits(_) => MetricsAccumulator::bits(),
        Scored::Correct(_) => MetricsAccumulator::binary(),
    });
    match scored {
        Scored::Multiclass(pairs, _) => acc.record_multiclass(pairs),
        Scored::Bits(rows) => acc.record_bits(rows),
        Scored::Correct(c) => acc.record_binary(*c),
    }
}

fn record_groups(record: &overton_store::Record) -> Vec<String> {
    record.tags.iter().cloned().collect()
}

fn clone_scored(s: &Scored) -> Scored {
    match s {
        Scored::Multiclass(pairs, k) => Scored::Multiclass(pairs.clone(), *k),
        Scored::Bits(rows) => Scored::Bits(rows.clone()),
        Scored::Correct(c) => Scored::Correct(*c),
    }
}

fn score_one(kind: TaskKind, output: &TaskOutput, gold: &TaskLabel) -> Option<Scored> {
    match (kind, output, gold) {
        (
            TaskKind::Multiclass { classes },
            TaskOutput::Multiclass { class, .. },
            TaskLabel::MulticlassOne(g),
        ) => {
            let gold_idx = classes.iter().position(|c| c == g)?;
            Some(Scored::Multiclass(vec![(*class, gold_idx)], classes.len()))
        }
        (
            TaskKind::Multiclass { classes },
            TaskOutput::MulticlassSeq { classes: preds },
            TaskLabel::MulticlassSeq(golds),
        ) => {
            if preds.len() != golds.len() {
                return None;
            }
            let pairs: Option<Vec<(usize, usize)>> = preds
                .iter()
                .zip(golds)
                .map(|(p, g)| classes.iter().position(|c| c == g).map(|gi| (*p, gi)))
                .collect();
            Some(Scored::Multiclass(pairs?, classes.len()))
        }
        (
            TaskKind::Bitvector { labels },
            TaskOutput::Bits { bits, .. },
            TaskLabel::BitvectorOne(gold_bits),
        ) => {
            let gold_row: Vec<bool> =
                labels.iter().map(|l| gold_bits.iter().any(|b| b == l)).collect();
            Some(Scored::Bits(vec![(bits.clone(), gold_row)]))
        }
        (
            TaskKind::Bitvector { labels },
            TaskOutput::BitsSeq { rows },
            TaskLabel::BitvectorSeq(gold_rows),
        ) => {
            if rows.len() != gold_rows.len() {
                return None;
            }
            let pairs = rows
                .iter()
                .zip(gold_rows)
                .map(|(p, g)| {
                    let gold_row: Vec<bool> =
                        labels.iter().map(|l| g.iter().any(|b| b == l)).collect();
                    (p.clone(), gold_row)
                })
                .collect();
            Some(Scored::Bits(pairs))
        }
        (TaskKind::Select, TaskOutput::Select { index, .. }, TaskLabel::Select(gold_idx)) => {
            Some(Scored::Correct(index == gold_idx))
        }
        _ => None,
    }
}

fn reduce(scored: &[Scored]) -> Metrics {
    // All entries of one task share a variant; reduce accordingly.
    match scored.first() {
        None => Metrics::empty(),
        Some(Scored::Multiclass(_, k)) => {
            let k = *k;
            let mut preds = Vec::new();
            let mut golds = Vec::new();
            for s in scored {
                if let Scored::Multiclass(pairs, _) = s {
                    for (p, g) in pairs {
                        preds.push(*p);
                        golds.push(*g);
                    }
                }
            }
            let mut m = multiclass_metrics(k, &preds, &golds);
            m.count = scored.len();
            m
        }
        Some(Scored::Bits(_)) => {
            let mut preds = Vec::new();
            let mut golds = Vec::new();
            for s in scored {
                if let Scored::Bits(rows) = s {
                    for (p, g) in rows {
                        preds.push(p.clone());
                        golds.push(g.clone());
                    }
                }
            }
            let mut m = overton_monitor::bitvector_metrics(&preds, &golds);
            m.count = scored.len();
            m
        }
        Some(Scored::Correct(_)) => {
            let correct = scored.iter().filter(|s| matches!(s, Scored::Correct(true))).count();
            let accuracy = correct as f64 / scored.len() as f64;
            Metrics { count: scored.len(), accuracy, macro_f1: accuracy, micro_f1: accuracy }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::network::CompiledModel;
    use overton_nlp::{generate_workload, WorkloadConfig};

    fn setup() -> (Dataset, FeatureSpace, CompiledModel) {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 50,
            n_dev: 20,
            n_test: 60,
            seed: 31,
            slice_rate: 0.25,
            ..Default::default()
        });
        let space = FeatureSpace::build(&ds);
        let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        (ds, space, model)
    }

    #[test]
    fn untrained_model_produces_reports_for_all_tasks() {
        let (ds, space, model) = setup();
        let eval = evaluate(&model, &ds, &ds.test_indices(), &space);
        for task in ["Intent", "POS", "EntityType", "IntentArg"] {
            let report = &eval.reports[task];
            let overall = report.overall().expect("overall row");
            assert!(overall.count > 0);
            assert!((0.0..=1.0).contains(&overall.accuracy));
        }
        assert_eq!(eval.predictions.len(), ds.test_indices().len());
    }

    #[test]
    fn slice_rows_appear() {
        let (ds, space, model) = setup();
        let eval = evaluate(&model, &ds, &ds.test_indices(), &space);
        let report = &eval.reports["IntentArg"];
        assert!(
            report.group("slice:complex-disambiguation").is_some(),
            "rows: {:?}",
            report.rows.iter().map(|r| &r.group).collect::<Vec<_>>()
        );
        assert!(eval.slice_accuracy("IntentArg", "complex-disambiguation").is_some());
    }

    #[test]
    fn train_tag_rows_appear_when_training_records_evaluated() {
        let (ds, space, model) = setup();
        // Train records lack gold labels, so evaluating them adds nothing.
        let eval = evaluate(&model, &ds, &ds.train_indices(), &space);
        assert!(eval.reports.is_empty() || eval.accuracy("Intent") == 0.0);
    }

    #[test]
    fn store_evaluation_matches_sequential() {
        let (ds, space, model) = setup();
        let sequential = evaluate(&model, &ds, &ds.test_indices(), &space);
        for shards in [1, 4] {
            let store = ds.seal_shards(shards).with_scan_workers(2);
            let rows: Vec<u32> = store.index().test_rows().to_vec();
            let sharded = evaluate_store(&model, &store, &rows, &space).unwrap();
            assert_eq!(sharded.reports, sequential.reports, "{shards} shards");
            let seq_order: Vec<usize> = sequential.predictions.iter().map(|(i, _)| *i).collect();
            let par_order: Vec<usize> = sharded.predictions.iter().map(|(i, _)| *i).collect();
            assert_eq!(seq_order, par_order);
        }
    }

    #[test]
    fn accuracy_accessor_defaults_to_zero() {
        let (ds, space, model) = setup();
        let eval = evaluate(&model, &ds, &ds.test_indices(), &space);
        assert_eq!(eval.accuracy("NoSuchTask"), 0.0);
    }
}

//! Feature extraction: turning schema-conformant records into model inputs.

use overton_nlp::Vocab;
use overton_store::{
    Dataset, PayloadKind, PayloadValue, PayloadView, Record, Schema, ShardedStore, TaskKind,
    TaskLabel,
};
use overton_supervision::ProbLabel;
use std::collections::BTreeMap;

/// Vocabularies and slice space shared by a model and its serving copy.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FeatureSpace {
    /// Token vocabulary (from sequence payload contents).
    pub token_vocab: Vocab,
    /// Entity-id vocabulary (from set payload element ids).
    pub entity_vocab: Vocab,
    /// Slice names, in stable order; indicator head `i` predicts membership
    /// of `slice_names[i]`.
    pub slice_names: Vec<String>,
}

impl FeatureSpace {
    /// Builds the feature space from a dataset (typically train + dev).
    pub fn build(dataset: &Dataset) -> Self {
        let mut tokens: Vec<String> = Vec::new();
        let mut entity_vocab = Vocab::reserved();
        for record in dataset.records() {
            for value in record.payloads.values() {
                match value {
                    PayloadValue::Sequence(ts) => tokens.extend(ts.iter().cloned()),
                    PayloadValue::Singleton(_) => {}
                    PayloadValue::Set(els) => {
                        for el in els {
                            entity_vocab.intern(&el.id);
                        }
                    }
                }
            }
        }
        let token_vocab = Vocab::build(tokens.iter().map(String::as_str), 1);
        Self { token_vocab, entity_vocab, slice_names: dataset.slice_names() }
    }

    /// Builds the feature space from a sealed store: every shard collects
    /// its token/entity occurrences in parallel from zero-copy views, the
    /// per-shard lists concatenate in shard order (so the vocabularies are
    /// bit-for-bit those of [`FeatureSpace::build`] on the equivalent
    /// dataset), and slice names come from the seal-time index.
    pub fn build_from_store(store: &ShardedStore) -> overton_store::Result<Self> {
        let partials = store.par_scan(|scan| {
            let mut tokens: Vec<String> = Vec::new();
            let mut entities: Vec<String> = Vec::new();
            for (_, view) in scan.views() {
                let view = view?;
                for (_, value) in &view.payloads {
                    match value {
                        PayloadView::Sequence(ts) => {
                            tokens.extend(ts.iter().map(|t| (*t).to_string()))
                        }
                        PayloadView::Singleton(_) => {}
                        PayloadView::Set(els) => {
                            entities.extend(els.iter().map(|(id, _)| (*id).to_string()))
                        }
                    }
                }
            }
            Ok((tokens, entities))
        })?;
        let mut tokens: Vec<String> = Vec::new();
        let mut entity_vocab = Vocab::reserved();
        for (shard_tokens, shard_entities) in partials {
            tokens.extend(shard_tokens);
            for id in &shard_entities {
                entity_vocab.intern(id);
            }
        }
        let token_vocab = Vocab::build(tokens.iter().map(String::as_str), 1);
        Ok(Self { token_vocab, entity_vocab, slice_names: store.index().slice_names() })
    }

    /// Index of a slice name.
    pub fn slice_index(&self, name: &str) -> Option<usize> {
        self.slice_names.iter().position(|s| s == name)
    }

    /// Encodes a batch of records into model-ready examples (no targets).
    ///
    /// The counterpart of
    /// [`CompiledModel::predict_batch`](crate::CompiledModel::predict_batch)
    /// on the input side: serving
    /// drains a queue of records and encodes them together before one
    /// batched forward pass. `record_index` is the position within the
    /// batch.
    pub fn encode_batch(&self, records: &[Record], schema: &Schema) -> Vec<CompiledExample> {
        records
            .iter()
            .enumerate()
            .map(|(i, r)| CompiledExample::from_record(r, i, self, schema))
            .collect()
    }
}

/// Encoded set payload elements: `(entity id, span)` per element.
pub type EncodedSet = Vec<(usize, (usize, usize))>;

/// One model-ready example: encoded payloads plus (optionally) training
/// targets per task and slice membership.
#[derive(Debug, Clone)]
pub struct CompiledExample {
    /// Index of the source record in its dataset.
    pub record_index: usize,
    /// Token ids per sequence payload.
    pub sequences: BTreeMap<String, Vec<usize>>,
    /// Set payloads, encoded.
    pub sets: BTreeMap<String, EncodedSet>,
    /// Probabilistic training targets per task (absent = no supervision).
    pub targets: BTreeMap<String, ProbLabel>,
    /// Slice membership aligned with [`FeatureSpace::slice_names`].
    pub slice_membership: Vec<bool>,
}

impl CompiledExample {
    /// Encodes a record's payloads (no targets).
    pub fn from_record(
        record: &Record,
        index: usize,
        space: &FeatureSpace,
        schema: &Schema,
    ) -> Self {
        let mut sequences = BTreeMap::new();
        let mut sets = BTreeMap::new();
        for (name, def) in &schema.payloads {
            match (&def.kind, record.payloads.get(name)) {
                (PayloadKind::Sequence { max_length }, Some(PayloadValue::Sequence(ts))) => {
                    let ids: Vec<usize> =
                        ts.iter().take(*max_length).map(|t| space.token_vocab.id(t)).collect();
                    sequences.insert(name.clone(), ids);
                }
                (PayloadKind::Set, Some(PayloadValue::Set(els))) => {
                    let encoded: Vec<(usize, (usize, usize))> =
                        els.iter().map(|el| (space.entity_vocab.id(&el.id), el.span)).collect();
                    sets.insert(name.clone(), encoded);
                }
                _ => {}
            }
        }
        let slice_membership = space.slice_names.iter().map(|s| record.in_slice(s)).collect();
        Self { record_index: index, sequences, sets, targets: BTreeMap::new(), slice_membership }
    }

    /// Attaches a probabilistic target for a task.
    pub fn with_target(mut self, task: &str, label: ProbLabel) -> Self {
        self.targets.insert(task.to_string(), label);
        self
    }
}

/// Converts a gold [`TaskLabel`] into a one-hot/binary [`ProbLabel`] (used
/// to build dev/test targets and evaluation references).
pub fn gold_to_prob(schema: &Schema, record: &Record, task: &str) -> Option<ProbLabel> {
    let label = record.gold(task)?;
    let task_def = schema.tasks.get(task)?;
    match (&task_def.kind, label) {
        (TaskKind::Multiclass { classes }, TaskLabel::MulticlassOne(c)) => {
            let idx = classes.iter().position(|x| x == c)?;
            Some(ProbLabel::one_hot(idx, classes.len()))
        }
        (TaskKind::Multiclass { classes }, TaskLabel::MulticlassSeq(cs)) => {
            let rows: Option<Vec<Vec<f32>>> = cs
                .iter()
                .map(|c| {
                    classes.iter().position(|x| x == c).map(|idx| {
                        let mut row = vec![0.0; classes.len()];
                        row[idx] = 1.0;
                        row
                    })
                })
                .collect();
            Some(ProbLabel::SeqDist(rows?))
        }
        (TaskKind::Bitvector { labels }, TaskLabel::BitvectorOne(bits)) => {
            let row: Vec<f32> =
                labels.iter().map(|l| f32::from(bits.iter().any(|b| b == l))).collect();
            Some(ProbLabel::Bits(row))
        }
        (TaskKind::Bitvector { labels }, TaskLabel::BitvectorSeq(rows)) => {
            let out: Vec<Vec<f32>> = rows
                .iter()
                .map(|bits| labels.iter().map(|l| f32::from(bits.iter().any(|b| b == l))).collect())
                .collect();
            Some(ProbLabel::SeqBits(out))
        }
        (TaskKind::Select, TaskLabel::Select(idx)) => {
            let k = match record.payloads.get(&task_def.payload) {
                Some(PayloadValue::Set(els)) => els.len(),
                _ => return None,
            };
            (*idx < k).then(|| ProbLabel::one_hot(*idx, k))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_store::GOLD_SOURCE;

    fn tiny() -> Dataset {
        generate_workload(&WorkloadConfig {
            n_train: 50,
            n_dev: 10,
            n_test: 10,
            seed: 5,
            slice_rate: 0.3,
            ..Default::default()
        })
    }

    #[test]
    fn feature_space_covers_data() {
        let ds = tiny();
        let space = FeatureSpace::build(&ds);
        assert!(space.token_vocab.len() > 20);
        assert!(space.entity_vocab.len() > 10);
        assert!(space.slice_names.contains(&"complex-disambiguation".to_string()));
    }

    #[test]
    fn example_encoding_shapes() {
        let ds = tiny();
        let space = FeatureSpace::build(&ds);
        let ex = CompiledExample::from_record(&ds.records()[0], 0, &space, ds.schema());
        let tokens = &ex.sequences["tokens"];
        assert!(!tokens.is_empty() && tokens.len() <= 16);
        assert!(!ex.sets["entities"].is_empty());
        assert_eq!(ex.slice_membership.len(), space.slice_names.len());
    }

    #[test]
    fn gold_to_prob_multiclass_one() {
        let ds = tiny();
        let i = ds.test_indices()[0];
        let record = &ds.records()[i];
        let prob = gold_to_prob(ds.schema(), record, "Intent").unwrap();
        assert!(prob.is_valid());
        let gold_name = match record.gold("Intent").unwrap() {
            TaskLabel::MulticlassOne(c) => c.clone(),
            other => panic!("{other:?}"),
        };
        let classes = match &ds.schema().tasks["Intent"].kind {
            TaskKind::Multiclass { classes } => classes.clone(),
            _ => unreachable!(),
        };
        assert_eq!(classes[prob.argmax().unwrap()], gold_name);
    }

    #[test]
    fn gold_to_prob_sequence_and_bits() {
        let ds = tiny();
        let i = ds.test_indices()[0];
        let record = &ds.records()[i];
        let pos = gold_to_prob(ds.schema(), record, "POS").unwrap();
        assert!(matches!(pos, ProbLabel::SeqDist(_)));
        assert!(pos.is_valid());
        let types = gold_to_prob(ds.schema(), record, "EntityType").unwrap();
        assert!(matches!(types, ProbLabel::SeqBits(_)));
        let arg = gold_to_prob(ds.schema(), record, "IntentArg").unwrap();
        assert!(matches!(arg, ProbLabel::Dist(_)));
    }

    #[test]
    fn gold_to_prob_absent_when_no_gold() {
        let ds = tiny();
        let i = ds.train_indices()[0]; // default config: no train gold
        assert!(gold_to_prob(ds.schema(), &ds.records()[i], "Intent").is_none());
    }

    #[test]
    fn unknown_gold_class_yields_none() {
        let ds = tiny();
        let mut record = ds.records()[ds.test_indices()[0]].clone();
        record
            .tasks
            .get_mut("Intent")
            .unwrap()
            .insert(GOLD_SOURCE.to_string(), TaskLabel::MulticlassOne("NotARealIntent".into()));
        assert!(gold_to_prob(ds.schema(), &record, "Intent").is_none());
    }
}

//! Knowledge distillation: keeping a small SLA model synchronized with a
//! large analysis model.
//!
//! Paper §2.4: "Teams use multiple models to train a 'large' and a 'small'
//! model on the same data. The large model is often used to populate caches
//! and do error analysis, while the small model must meet SLA requirements.
//! Overton makes it easy to keep these two models synchronized." Beyond
//! training both on the same data, the strongest synchronization is
//! distillation: the small model trains on the large model's soft outputs,
//! which also transfers label-model-cleaned knowledge to unlabeled data.

use crate::config::TrainConfig;
use crate::features::CompiledExample;
use crate::network::{CompiledModel, TaskOutput};
use crate::trainer::{train_model, TrainReport};
use overton_supervision::ProbLabel;

/// Replaces each example's targets with the teacher's soft predictions.
/// Examples keep their original targets for tasks the teacher cannot score
/// (empty payloads).
pub fn soften_targets(
    teacher: &CompiledModel,
    examples: &[CompiledExample],
) -> Vec<CompiledExample> {
    examples
        .iter()
        .map(|example| {
            let mut out = example.clone();
            let prediction = teacher.predict(example);
            for (task, output) in prediction.tasks {
                let soft = match output {
                    TaskOutput::Multiclass { dist, .. } | TaskOutput::Select { dist, .. } => {
                        ProbLabel::Dist(dist)
                    }
                    TaskOutput::MulticlassSeq { .. } => {
                        // Row distributions are not exposed by the decoded
                        // output; sequence tasks keep their hard targets.
                        continue;
                    }
                    TaskOutput::Bits { probs, .. } => ProbLabel::Bits(probs),
                    TaskOutput::BitsSeq { .. } => continue,
                };
                out.targets.insert(task, soft);
            }
            out
        })
        .collect()
}

/// Trains `student` on the teacher's soft predictions over `examples`
/// (labeled or not), with dev-based early stopping.
pub fn distill(
    teacher: &CompiledModel,
    student: &mut CompiledModel,
    examples: &[CompiledExample],
    dev: &[CompiledExample],
    config: &TrainConfig,
) -> TrainReport {
    let softened = soften_targets(teacher, examples);
    train_model(student, &softened, dev, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::prepare;
    use crate::config::ModelConfig;
    use crate::trainer::dev_agreement;
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_supervision::CombineMethod;

    #[test]
    fn distilled_student_approaches_teacher() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 400,
            n_dev: 80,
            n_test: 80,
            seed: 71,
            ..Default::default()
        });
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        // Teacher: default size, trained normally.
        let mut teacher =
            CompiledModel::compile(ds.schema(), &prepared.space, &ModelConfig::default(), None);
        train_model(
            &mut teacher,
            &prepared.train,
            &prepared.dev,
            &TrainConfig { epochs: 5, early_stop_patience: 0, ..Default::default() },
        );
        let teacher_score = dev_agreement(&teacher, &prepared.dev);

        // Student: much smaller, distilled from the teacher.
        let small = ModelConfig { token_dim: 16, hidden_dim: 16, ..Default::default() };
        let mut student = CompiledModel::compile(ds.schema(), &prepared.space, &small, None);
        distill(
            &teacher,
            &mut student,
            &prepared.train,
            &prepared.dev,
            &TrainConfig { epochs: 5, early_stop_patience: 0, ..Default::default() },
        );
        let student_score = dev_agreement(&student, &prepared.dev);
        assert!(
            student_score > teacher_score - 0.12,
            "student {student_score:.3} too far below teacher {teacher_score:.3}"
        );
        assert!(student.num_weights() < teacher.num_weights() / 2);
    }

    #[test]
    fn soften_targets_produces_valid_distributions() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 30,
            n_dev: 10,
            n_test: 10,
            seed: 72,
            ..Default::default()
        });
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        let teacher =
            CompiledModel::compile(ds.schema(), &prepared.space, &ModelConfig::default(), None);
        let softened = soften_targets(&teacher, &prepared.train);
        assert_eq!(softened.len(), prepared.train.len());
        for ex in &softened {
            if let Some(label) = ex.targets.get("Intent") {
                assert!(label.is_valid(), "{label:?}");
            }
            if let Some(label) = ex.targets.get("IntentArg") {
                assert!(label.is_valid(), "{label:?}");
            }
        }
    }
}

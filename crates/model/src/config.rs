//! Model and training configuration, and the tuning spec.
//!
//! The paper's key contract: none of this appears in the schema. The
//! engineer never chooses an encoder or a hidden size — Overton searches the
//! coarse-grained space described by a [`TuningSpec`] (Figure 2a, "Model
//! Tuning"; §4 "the search used in Overton is a coarser-grained search than
//! what is typically done in NAS ... limited large blocks, e.g., should we
//! use an LSTM or CNN").

use serde::{Deserialize, Serialize};

/// Sequence encoder families the compiler can pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// No mixing across positions (bag of embeddings through an MLP).
    MeanBag,
    /// Same-length 1-D convolution (kernel 3).
    Cnn,
    /// Unidirectional LSTM.
    Lstm,
    /// Bidirectional LSTM.
    BiLstm,
    /// Single-layer multi-head self-attention.
    Attention,
}

/// Where token embeddings come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmbeddingKind {
    /// Learned from scratch with the task.
    Learned,
    /// Initialized from a pretrained masked-LM artifact and fine-tuned
    /// (the "with-BERT" configuration of Figure 4b).
    Pretrained,
}

/// How a singleton payload aggregates its base sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationKind {
    /// Column-wise mean over positions.
    Mean,
    /// Column-wise max over positions.
    Max,
}

/// A fully-specified model architecture (the output of search).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Token embedding width.
    pub token_dim: usize,
    /// Entity embedding width.
    pub entity_dim: usize,
    /// Shared hidden width all payload representations project into.
    pub hidden_dim: usize,
    /// Sequence encoder family.
    pub encoder: EncoderKind,
    /// Token embedding source.
    pub embedding: EmbeddingKind,
    /// Singleton aggregation.
    pub aggregation: AggregationKind,
    /// Dropout probability on payload representations.
    pub dropout: f32,
    /// Whether slice-based learning heads are attached.
    pub slice_heads: bool,
    /// Parameter-initialization seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            token_dim: 32,
            entity_dim: 24,
            hidden_dim: 48,
            encoder: EncoderKind::Cnn,
            embedding: EmbeddingKind::Learned,
            aggregation: AggregationKind::Mean,
            dropout: 0.1,
            slice_heads: true,
            seed: 0,
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the training data.
    pub epochs: usize,
    /// Examples per optimizer step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Global gradient-norm clip.
    pub clip_norm: f32,
    /// Stop after this many epochs without dev improvement (0 = never).
    pub early_stop_patience: usize,
    /// Weight of slice-indicator losses relative to task losses.
    pub indicator_loss_weight: f32,
    /// Task-loss multiplier for examples inside any declared slice (only
    /// applied when the model was compiled with slice heads). This is the
    /// loss-side half of slice-based learning: declared slices get both
    /// extra capacity and extra training focus.
    pub slice_loss_boost: f32,
    /// Shuffling/dropout seed.
    pub seed: u64,
    /// Threads sharing each optimizer window's gradient computation
    /// (`0` or `1` = single-threaded). Any value produces bit-identical
    /// weights: per-example gradients are merged in example order, so
    /// workers change wall-time only, never the trajectory. Defaults low
    /// because training often runs alongside serving.
    #[serde(default)]
    pub grad_workers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 16,
            learning_rate: 5e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
            early_stop_patience: 3,
            indicator_loss_weight: 0.3,
            slice_loss_boost: 2.0,
            seed: 0,
            grad_workers: 1,
        }
    }
}

/// The coarse search space (one axis per architectural choice).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningSpec {
    /// Candidate token/hidden size pairs.
    pub sizes: Vec<(usize, usize)>,
    /// Candidate encoders.
    pub encoders: Vec<EncoderKind>,
    /// Candidate embedding sources.
    pub embeddings: Vec<EmbeddingKind>,
    /// Candidate aggregations.
    pub aggregations: Vec<AggregationKind>,
}

impl Default for TuningSpec {
    fn default() -> Self {
        Self {
            sizes: vec![(24, 32), (32, 48), (48, 64)],
            encoders: vec![
                EncoderKind::MeanBag,
                EncoderKind::Cnn,
                EncoderKind::Lstm,
                EncoderKind::Attention,
            ],
            embeddings: vec![EmbeddingKind::Learned],
            aggregations: vec![AggregationKind::Mean, AggregationKind::Max],
        }
    }
}

impl TuningSpec {
    /// Total number of configurations in the cross-product.
    pub fn cardinality(&self) -> usize {
        self.sizes.len() * self.encoders.len() * self.embeddings.len() * self.aggregations.len()
    }

    /// Materializes every configuration (base settings from `base`).
    pub fn enumerate(&self, base: &ModelConfig) -> Vec<ModelConfig> {
        let mut out = Vec::with_capacity(self.cardinality());
        for &(token_dim, hidden_dim) in &self.sizes {
            for &encoder in &self.encoders {
                for &embedding in &self.embeddings {
                    for &aggregation in &self.aggregations {
                        out.push(ModelConfig {
                            token_dim,
                            hidden_dim,
                            encoder,
                            embedding,
                            aggregation,
                            ..base.clone()
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ModelConfig::default();
        assert!(c.hidden_dim > 0 && c.token_dim > 0);
        assert!((0.0..1.0).contains(&c.dropout));
    }

    #[test]
    fn spec_cardinality_matches_enumeration() {
        let spec = TuningSpec::default();
        let configs = spec.enumerate(&ModelConfig::default());
        assert_eq!(configs.len(), spec.cardinality());
        assert_eq!(configs.len(), 3 * 4 * 2);
    }

    #[test]
    fn enumeration_preserves_base_fields() {
        let base = ModelConfig { dropout: 0.25, slice_heads: false, ..Default::default() };
        let configs = TuningSpec::default().enumerate(&base);
        assert!(configs.iter().all(|c| c.dropout == 0.25 && !c.slice_heads));
    }

    #[test]
    fn serde_roundtrip() {
        let c = ModelConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

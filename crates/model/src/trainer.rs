//! Minibatch training with early stopping on a dev split.

use crate::config::TrainConfig;
use crate::features::CompiledExample;
use crate::network::CompiledModel;
use overton_tensor::optim::{Adam, Optimizer};
use overton_tensor::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Summary of a training run. Serializable: the `Run` API persists it as
/// the train stage's artifact under the run directory.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainReport {
    /// Epochs actually run (early stopping may cut this short).
    pub epochs_run: usize,
    /// Best dev score seen (mean per-task agreement with dev targets).
    pub best_dev_score: f64,
    /// Per-epoch `(mean train loss, dev score)`.
    pub history: Vec<(f64, f64)>,
}

/// Trains `model` in place. Dev examples must carry targets (typically gold
/// one-hots); the parameters from the best dev epoch are restored at the
/// end.
pub fn train_model(
    model: &mut CompiledModel,
    train: &[CompiledExample],
    dev: &[CompiledExample],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!train.is_empty(), "no training examples");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.learning_rate).with_weight_decay(config.weight_decay);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best_dev = f64::NEG_INFINITY;
    let mut best_params = model.params.clone();
    let mut since_best = 0usize;
    let mut history = Vec::with_capacity(config.epochs);
    let mut epochs_run = 0;

    for _epoch in 0..config.epochs {
        epochs_run += 1;
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut epoch_loss = 0.0f64;
        let mut batch_count = 0usize;
        let mut in_batch = 0usize;
        for &idx in &order {
            let example = &train[idx];
            let mut g = Graph::new();
            let pass = model.forward(&mut g, example, true, &mut rng);
            let Some(mut loss) = model.loss(&mut g, &pass, example, config.indicator_loss_weight)
            else {
                continue;
            };
            // Declared slices get extra training focus (the loss-side half
            // of slice-based learning).
            if model.has_slice_heads()
                && config.slice_loss_boost != 1.0
                && example.slice_membership.iter().any(|&m| m)
            {
                loss = g.scale(loss, config.slice_loss_boost);
            }
            epoch_loss += f64::from(g.value(loss).scalar_value());
            g.backward(loss);
            g.flush_grads(&mut model.params);
            in_batch += 1;
            if in_batch >= config.batch_size {
                model.params.clip_grad_norm(config.clip_norm);
                opt.step(&mut model.params);
                model.params.zero_grads();
                batch_count += in_batch;
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            model.params.clip_grad_norm(config.clip_norm);
            opt.step(&mut model.params);
            model.params.zero_grads();
            batch_count += in_batch;
        }
        let mean_loss = if batch_count == 0 { 0.0 } else { epoch_loss / batch_count as f64 };
        let dev_score = if dev.is_empty() { -mean_loss } else { dev_agreement(model, dev) };
        history.push((mean_loss, dev_score));
        if dev_score > best_dev {
            best_dev = dev_score;
            best_params = model.params.clone();
            since_best = 0;
        } else {
            since_best += 1;
            if config.early_stop_patience > 0 && since_best >= config.early_stop_patience {
                break;
            }
        }
    }
    model.params = best_params;
    TrainReport { epochs_run, best_dev_score: best_dev, history }
}

/// Mean per-task agreement of model predictions with example targets
/// (used as the dev-selection score and by the hyperparameter search).
pub fn dev_agreement(model: &CompiledModel, examples: &[CompiledExample]) -> f64 {
    use crate::network::TaskOutput;
    use overton_supervision::ProbLabel;
    let mut total = 0.0f64;
    let mut n = 0usize;
    for example in examples {
        let prediction = model.predict(example);
        for (task, target) in &example.targets {
            let Some(output) = prediction.tasks.get(task) else { continue };
            let score = match (output, target) {
                (TaskOutput::Multiclass { class, .. }, ProbLabel::Dist(d))
                | (TaskOutput::Select { index: class, .. }, ProbLabel::Dist(d)) => {
                    let gold = argmax(d);
                    f64::from(*class == gold)
                }
                (TaskOutput::MulticlassSeq { classes }, ProbLabel::SeqDist(rows)) => {
                    if classes.len() != rows.len() || rows.is_empty() {
                        continue;
                    }
                    let correct =
                        classes.iter().zip(rows).filter(|(c, row)| **c == argmax(row)).count();
                    correct as f64 / rows.len() as f64
                }
                (TaskOutput::Bits { bits, .. }, ProbLabel::Bits(target_bits)) => {
                    let target: Vec<bool> = target_bits.iter().map(|&p| p > 0.5).collect();
                    bit_agreement(std::slice::from_ref(bits), std::slice::from_ref(&target))
                }
                (TaskOutput::BitsSeq { rows }, ProbLabel::SeqBits(target_rows)) => {
                    let target: Vec<Vec<bool>> =
                        target_rows.iter().map(|r| r.iter().map(|&p| p > 0.5).collect()).collect();
                    bit_agreement(rows, &target)
                }
                _ => continue,
            };
            total += score;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

fn bit_agreement<B: AsRef<[bool]>>(pred: &[B], gold: &[Vec<bool>]) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (p, g) in pred.iter().zip(gold) {
        for (a, b) in p.as_ref().iter().zip(g) {
            total += 1;
            if a == b {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::{gold_to_prob, FeatureSpace};
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_store::Dataset;

    fn workload() -> Dataset {
        generate_workload(&WorkloadConfig {
            n_train: 150,
            n_dev: 40,
            n_test: 40,
            seed: 23,
            gold_train_fraction: 1.0, // direct gold training for this test
            ..Default::default()
        })
    }

    fn gold_examples(
        ds: &Dataset,
        indices: &[usize],
        space: &FeatureSpace,
    ) -> Vec<CompiledExample> {
        indices
            .iter()
            .map(|&i| {
                let record = &ds.records()[i];
                let mut ex = CompiledExample::from_record(record, i, space, ds.schema());
                for task in ds.schema().tasks.keys() {
                    if let Some(p) = gold_to_prob(ds.schema(), record, task) {
                        ex.targets.insert(task.clone(), p);
                    }
                }
                ex
            })
            .collect()
    }

    #[test]
    fn training_improves_dev_agreement() {
        let ds = workload();
        let space = FeatureSpace::build(&ds);
        let train = gold_examples(&ds, &ds.train_indices(), &space);
        let dev = gold_examples(&ds, &ds.dev_indices(), &space);
        let mut model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let before = dev_agreement(&model, &dev);
        let report = train_model(
            &mut model,
            &train,
            &dev,
            &TrainConfig { epochs: 6, early_stop_patience: 0, ..Default::default() },
        );
        let after = dev_agreement(&model, &dev);
        assert!(
            after > before + 0.1,
            "dev agreement must improve: before {before:.3}, after {after:.3}"
        );
        assert_eq!(report.history.len(), report.epochs_run);
        assert!(report.best_dev_score >= after - 1e-9);
    }

    #[test]
    fn early_stopping_restores_best_params() {
        let ds = workload();
        let space = FeatureSpace::build(&ds);
        let train = gold_examples(&ds, &ds.train_indices()[..60], &space);
        let dev = gold_examples(&ds, &ds.dev_indices(), &space);
        let mut model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let report = train_model(
            &mut model,
            &train,
            &dev,
            &TrainConfig { epochs: 12, early_stop_patience: 2, ..Default::default() },
        );
        // Restored params must reproduce the reported best dev score.
        let final_score = dev_agreement(&model, &dev);
        assert!(
            (final_score - report.best_dev_score).abs() < 1e-9,
            "restored {final_score} vs reported best {}",
            report.best_dev_score
        );
    }

    #[test]
    #[should_panic(expected = "no training examples")]
    fn empty_training_set_rejected() {
        let ds = workload();
        let space = FeatureSpace::build(&ds);
        let mut model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let _ = train_model(&mut model, &[], &[], &TrainConfig::default());
    }
}

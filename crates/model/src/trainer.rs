//! Minibatch training with early stopping on a dev split.
//!
//! # Determinism contract
//!
//! Gradient computation is data-parallel ([`TrainConfig::grad_workers`])
//! but the trajectory is worker-count-invariant: final weights are
//! bit-identical whether a window's gradients were computed by 1 thread
//! or 8. Three properties make that hold:
//!
//! 1. Every example draws a private dropout seed from the main RNG *in
//!    shuffle order*, before dispatch — the main RNG stream never
//!    depends on scheduling.
//! 2. Windows are aligned to optimizer steps: forwards never mutate
//!    parameters, and a window never extends past the example that
//!    completes a minibatch, so every forward sees exactly the
//!    parameters the serial loop would have shown it.
//! 3. Per-example gradient partials are merged into the store in
//!    example order (and in tape order within an example), so the f32
//!    accumulation order — and thus every rounding — is fixed.

use crate::config::TrainConfig;
use crate::features::CompiledExample;
use crate::network::CompiledModel;
use overton_tensor::optim::{Adam, Optimizer};
use overton_tensor::{Graph, Matrix, ParamId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Summary of a training run. Serializable: the `Run` API persists it as
/// the train stage's artifact under the run directory.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainReport {
    /// Epochs actually run (early stopping may cut this short).
    pub epochs_run: usize,
    /// Best dev score seen (mean per-task agreement with dev targets).
    pub best_dev_score: f64,
    /// Per-epoch `(mean train loss, dev score)`.
    pub history: Vec<(f64, f64)>,
}

/// Trains `model` in place. Dev examples must carry targets (typically gold
/// one-hots); the parameters from the best dev epoch are restored at the
/// end.
pub fn train_model(
    model: &mut CompiledModel,
    train: &[CompiledExample],
    dev: &[CompiledExample],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!train.is_empty(), "no training examples");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut opt = Adam::new(config.learning_rate).with_weight_decay(config.weight_decay);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best_dev = f64::NEG_INFINITY;
    let mut best_params = model.params.clone();
    let mut since_best = 0usize;
    let mut history = Vec::with_capacity(config.epochs);
    let mut epochs_run = 0;

    for _epoch in 0..config.epochs {
        epochs_run += 1;
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut epoch_loss = 0.0f64;
        let mut batch_count = 0usize;
        let mut in_batch = 0usize;
        let mut cursor = 0usize;
        while cursor < order.len() {
            // Step-aligned window: take exactly as many examples as the
            // current minibatch still needs. Some may contribute no loss,
            // in which case the next window tops the batch up — a step
            // can therefore only ever land on a window boundary, exactly
            // where the serial loop would have stepped.
            let needed = config.batch_size.saturating_sub(in_batch).max(1);
            let take = needed.min(order.len() - cursor);
            let window = &order[cursor..cursor + take];
            cursor += take;
            // Per-example dropout seeds come off the main RNG in shuffle
            // order, so the stream is identical for any worker count.
            let seeds: Vec<u64> = window.iter().map(|_| rng.gen()).collect();
            for result in window_gradients(model, train, window, &seeds, config) {
                let Some(partial) = result else { continue };
                epoch_loss += f64::from(partial.loss);
                for (pid, grad) in &partial.grads {
                    model.params.grad_mut(*pid).add_assign(grad);
                }
                in_batch += 1;
            }
            if in_batch >= config.batch_size {
                model.params.clip_grad_norm(config.clip_norm);
                opt.step(&mut model.params);
                model.params.zero_grads();
                batch_count += in_batch;
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            model.params.clip_grad_norm(config.clip_norm);
            opt.step(&mut model.params);
            model.params.zero_grads();
            batch_count += in_batch;
        }
        let mean_loss = if batch_count == 0 { 0.0 } else { epoch_loss / batch_count as f64 };
        let dev_score = if dev.is_empty() { -mean_loss } else { dev_agreement(model, dev) };
        history.push((mean_loss, dev_score));
        if dev_score > best_dev {
            best_dev = dev_score;
            best_params = model.params.clone();
            since_best = 0;
        } else {
            since_best += 1;
            if config.early_stop_patience > 0 && since_best >= config.early_stop_patience {
                break;
            }
        }
    }
    model.params = best_params;
    TrainReport { epochs_run, best_dev_score: best_dev, history }
}

/// One example's contribution to the current minibatch: its scalar loss
/// and its parameter-gradient partials in tape order.
struct ExampleGrad {
    loss: f32,
    grads: Vec<(ParamId, Matrix)>,
}

/// Forward + backward for a single example on its own tape, using a
/// private RNG so dropout draws are independent of which worker runs it.
/// Returns `None` when the example contributes no loss (no usable
/// targets), mirroring the serial loop's `continue`.
fn example_gradient(
    model: &CompiledModel,
    example: &CompiledExample,
    seed: u64,
    config: &TrainConfig,
) -> Option<ExampleGrad> {
    let mut ex_rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let pass = model.forward(&mut g, example, true, &mut ex_rng);
    let mut loss = model.loss(&mut g, &pass, example, config.indicator_loss_weight)?;
    // Declared slices get extra training focus (the loss-side half of
    // slice-based learning).
    if model.has_slice_heads()
        && config.slice_loss_boost != 1.0
        && example.slice_membership.iter().any(|&m| m)
    {
        loss = g.scale(loss, config.slice_loss_boost);
    }
    let loss_value = g.value(loss).scalar_value();
    g.backward(loss);
    Some(ExampleGrad { loss: loss_value, grads: g.take_param_grads() })
}

/// Computes the window's per-example gradients, fanned out over
/// `config.grad_workers` scoped threads. Results come back indexed by
/// window position, so the caller merges them in example order no matter
/// which worker produced which — this is what keeps the trajectory
/// bit-identical across worker counts.
fn window_gradients(
    model: &CompiledModel,
    train: &[CompiledExample],
    window: &[usize],
    seeds: &[u64],
    config: &TrainConfig,
) -> Vec<Option<ExampleGrad>> {
    let workers = config.grad_workers.min(window.len());
    if workers <= 1 {
        return window
            .iter()
            .zip(seeds)
            .map(|(&idx, &seed)| example_gradient(model, &train[idx], seed, config))
            .collect();
    }
    let slots: Vec<Mutex<Option<Option<ExampleGrad>>>> =
        window.iter().map(|_| Mutex::new(None)).collect();
    let queue = Mutex::new((0..window.len()).rev().collect::<Vec<usize>>());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(at) = queue.lock().expect("window queue").pop() else { break };
                let result = example_gradient(model, &train[window[at]], seeds[at], config);
                *slots[at].lock().expect("gradient slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("gradient slot").expect("worker filled slot"))
        .collect()
}

/// Mean per-task agreement of model predictions with example targets
/// (used as the dev-selection score and by the hyperparameter search).
pub fn dev_agreement(model: &CompiledModel, examples: &[CompiledExample]) -> f64 {
    use crate::network::TaskOutput;
    use overton_supervision::ProbLabel;
    let mut total = 0.0f64;
    let mut n = 0usize;
    for example in examples {
        let prediction = model.predict(example);
        for (task, target) in &example.targets {
            let Some(output) = prediction.tasks.get(task) else { continue };
            let score = match (output, target) {
                (TaskOutput::Multiclass { class, .. }, ProbLabel::Dist(d))
                | (TaskOutput::Select { index: class, .. }, ProbLabel::Dist(d)) => {
                    let gold = argmax(d);
                    f64::from(*class == gold)
                }
                (TaskOutput::MulticlassSeq { classes }, ProbLabel::SeqDist(rows)) => {
                    if classes.len() != rows.len() || rows.is_empty() {
                        continue;
                    }
                    let correct =
                        classes.iter().zip(rows).filter(|(c, row)| **c == argmax(row)).count();
                    correct as f64 / rows.len() as f64
                }
                (TaskOutput::Bits { bits, .. }, ProbLabel::Bits(target_bits)) => {
                    let target: Vec<bool> = target_bits.iter().map(|&p| p > 0.5).collect();
                    bit_agreement(std::slice::from_ref(bits), std::slice::from_ref(&target))
                }
                (TaskOutput::BitsSeq { rows }, ProbLabel::SeqBits(target_rows)) => {
                    let target: Vec<Vec<bool>> =
                        target_rows.iter().map(|r| r.iter().map(|&p| p > 0.5).collect()).collect();
                    bit_agreement(rows, &target)
                }
                _ => continue,
            };
            total += score;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

fn bit_agreement<B: AsRef<[bool]>>(pred: &[B], gold: &[Vec<bool>]) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (p, g) in pred.iter().zip(gold) {
        for (a, b) in p.as_ref().iter().zip(g) {
            total += 1;
            if a == b {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::{gold_to_prob, FeatureSpace};
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_store::Dataset;

    fn workload() -> Dataset {
        generate_workload(&WorkloadConfig {
            n_train: 150,
            n_dev: 40,
            n_test: 40,
            seed: 23,
            gold_train_fraction: 1.0, // direct gold training for this test
            ..Default::default()
        })
    }

    fn gold_examples(
        ds: &Dataset,
        indices: &[usize],
        space: &FeatureSpace,
    ) -> Vec<CompiledExample> {
        indices
            .iter()
            .map(|&i| {
                let record = &ds.records()[i];
                let mut ex = CompiledExample::from_record(record, i, space, ds.schema());
                for task in ds.schema().tasks.keys() {
                    if let Some(p) = gold_to_prob(ds.schema(), record, task) {
                        ex.targets.insert(task.clone(), p);
                    }
                }
                ex
            })
            .collect()
    }

    #[test]
    fn training_improves_dev_agreement() {
        let ds = workload();
        let space = FeatureSpace::build(&ds);
        let train = gold_examples(&ds, &ds.train_indices(), &space);
        let dev = gold_examples(&ds, &ds.dev_indices(), &space);
        let mut model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let before = dev_agreement(&model, &dev);
        let report = train_model(
            &mut model,
            &train,
            &dev,
            &TrainConfig { epochs: 6, early_stop_patience: 0, ..Default::default() },
        );
        let after = dev_agreement(&model, &dev);
        assert!(
            after > before + 0.1,
            "dev agreement must improve: before {before:.3}, after {after:.3}"
        );
        assert_eq!(report.history.len(), report.epochs_run);
        assert!(report.best_dev_score >= after - 1e-9);
    }

    #[test]
    fn early_stopping_restores_best_params() {
        let ds = workload();
        let space = FeatureSpace::build(&ds);
        let train = gold_examples(&ds, &ds.train_indices()[..60], &space);
        let dev = gold_examples(&ds, &ds.dev_indices(), &space);
        let mut model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let report = train_model(
            &mut model,
            &train,
            &dev,
            &TrainConfig { epochs: 12, early_stop_patience: 2, ..Default::default() },
        );
        // Restored params must reproduce the reported best dev score.
        let final_score = dev_agreement(&model, &dev);
        assert!(
            (final_score - report.best_dev_score).abs() < 1e-9,
            "restored {final_score} vs reported best {}",
            report.best_dev_score
        );
    }

    #[test]
    fn grad_workers_do_not_change_the_trajectory() {
        let ds = workload();
        let space = FeatureSpace::build(&ds);
        let train = gold_examples(&ds, &ds.train_indices()[..48], &space);
        let dev = gold_examples(&ds, &ds.dev_indices(), &space);
        // batch_size 7 does not divide 48, so windows hit both the
        // full-batch and trailing-partial step paths.
        let config = |workers: usize| TrainConfig {
            epochs: 2,
            batch_size: 7,
            early_stop_patience: 0,
            grad_workers: workers,
            ..Default::default()
        };
        let mut reference: Option<(CompiledModel, TrainReport)> = None;
        for workers in [1usize, 2, 4] {
            let mut model =
                CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
            let report = train_model(&mut model, &train, &dev, &config(workers));
            match &reference {
                None => reference = Some((model, report)),
                Some((ref_model, ref_report)) => {
                    assert_eq!(
                        report, *ref_report,
                        "training report diverged at {workers} workers"
                    );
                    for id in ref_model.params.ids() {
                        assert_eq!(
                            model.params.value(id),
                            ref_model.params.value(id),
                            "param {:?} diverged at {workers} workers",
                            ref_model.params.name(id)
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no training examples")]
    fn empty_training_set_rejected() {
        let ds = workload();
        let space = FeatureSpace::build(&ds);
        let mut model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
        let _ = train_model(&mut model, &[], &[], &TrainConfig::default());
    }
}

//! High-level build step: dataset → combined supervision → model-ready
//! examples.
//!
//! This is the "Combine Supervision" box of Figure 1 wired to feature
//! extraction: every task's sources are resolved by the configured
//! combiner; training records get probabilistic targets (gold labels, when
//! an annotator provided them, take precedence); dev records get gold
//! one-hot targets for model selection.

use crate::features::{gold_to_prob, CompiledExample, FeatureSpace};
use overton_store::Dataset;
use overton_supervision::{combine_task, CombineError, CombineMethod, SourceDiagnostics};
use std::collections::BTreeMap;

/// Everything needed to train: the feature space, train/dev examples, and
/// per-task source diagnostics (estimated accuracies, coverage).
#[derive(Debug, Clone)]
pub struct PreparedData {
    /// Shared vocabularies and slice space.
    pub space: FeatureSpace,
    /// Training examples with probabilistic targets.
    pub train: Vec<CompiledExample>,
    /// Dev examples with gold targets.
    pub dev: Vec<CompiledExample>,
    /// Per-task combiner diagnostics.
    pub diagnostics: BTreeMap<String, Vec<SourceDiagnostics>>,
}

/// Combines supervision for every task and materializes train/dev examples.
pub fn prepare(dataset: &Dataset, method: &CombineMethod) -> Result<PreparedData, CombineError> {
    let schema = dataset.schema();
    let space = FeatureSpace::build(dataset);

    // Combine every task across the dataset.
    let mut combined = BTreeMap::new();
    let mut diagnostics = BTreeMap::new();
    for task in schema.tasks.keys() {
        match combine_task(dataset, task, method) {
            Ok(result) => {
                diagnostics.insert(task.clone(), result.sources.clone());
                combined.insert(task.clone(), result);
            }
            Err(CombineError::UnknownSource { .. }) => {
                // A single-source ablation may name a source that exists for
                // some tasks only; tasks without it are left unsupervised.
            }
            Err(e) => return Err(e),
        }
    }

    let mut train = Vec::with_capacity(dataset.train_indices().len());
    for i in dataset.train_indices() {
        let record = &dataset.records()[i];
        let mut example = CompiledExample::from_record(record, i, &space, schema);
        for task in schema.tasks.keys() {
            // Annotator gold (when present on a training record) overrides
            // the weak combination.
            if let Some(gold) = gold_to_prob(schema, record, task) {
                example.targets.insert(task.clone(), gold);
                continue;
            }
            if let Some(result) = combined.get(task) {
                if let Some(label) = &result.labels[i] {
                    example.targets.insert(task.clone(), label.clone());
                }
            }
        }
        train.push(example);
    }

    let mut dev = Vec::with_capacity(dataset.dev_indices().len());
    for i in dataset.dev_indices() {
        let record = &dataset.records()[i];
        let mut example = CompiledExample::from_record(record, i, &space, schema);
        for task in schema.tasks.keys() {
            if let Some(gold) = gold_to_prob(schema, record, task) {
                example.targets.insert(task.clone(), gold);
            }
        }
        dev.push(example);
    }

    Ok(PreparedData { space, train, dev, diagnostics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_nlp::{generate_workload, WorkloadConfig};

    fn workload(gold_fraction: f64) -> Dataset {
        generate_workload(&WorkloadConfig {
            n_train: 80,
            n_dev: 20,
            n_test: 20,
            seed: 77,
            gold_train_fraction: gold_fraction,
            ..Default::default()
        })
    }

    #[test]
    fn prepare_attaches_targets() {
        let ds = workload(0.0);
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        assert_eq!(prepared.train.len(), 80);
        assert_eq!(prepared.dev.len(), 20);
        // Most training examples should have an Intent target (weak coverage
        // is high).
        let with_intent =
            prepared.train.iter().filter(|e| e.targets.contains_key("Intent")).count();
        assert!(with_intent > 60, "{with_intent} examples have Intent targets");
        // Dev examples carry gold targets for every task.
        for ex in &prepared.dev {
            assert_eq!(ex.targets.len(), 4, "dev targets: {:?}", ex.targets.keys());
        }
        // Diagnostics exist for all four tasks.
        assert_eq!(prepared.diagnostics.len(), 4);
    }

    #[test]
    fn gold_overrides_weak_on_train() {
        let ds = workload(1.0);
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        // With full gold coverage every Intent target is one-hot.
        for ex in &prepared.train {
            if let Some(overton_supervision::ProbLabel::Dist(d)) = ex.targets.get("Intent") {
                let max = d.iter().copied().fold(0.0f32, f32::max);
                assert!((max - 1.0).abs() < 1e-6, "expected one-hot, got {d:?}");
            }
        }
    }

    #[test]
    fn label_model_diagnostics_have_accuracies() {
        let ds = workload(0.0);
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        let intent = &prepared.diagnostics["Intent"];
        assert!(intent.iter().all(|d| d.estimated_accuracy.is_some()));
    }
}

//! High-level build step: dataset → combined supervision → model-ready
//! examples.
//!
//! This is the "Combine Supervision" box of Figure 1 wired to feature
//! extraction: every task's sources are resolved by the configured
//! combiner; training records get probabilistic targets (gold labels, when
//! an annotator provided them, take precedence); dev records get gold
//! one-hot targets for model selection.

use crate::features::{gold_to_prob, CompiledExample, FeatureSpace};
use overton_store::{Dataset, ShardedStore};
use overton_supervision::{combine_all, CombineError, CombineMethod, SourceDiagnostics};
use std::collections::BTreeMap;

/// Everything needed to train: the feature space, train/dev examples, and
/// per-task source diagnostics (estimated accuracies, coverage).
#[derive(Debug, Clone)]
pub struct PreparedData {
    /// Shared vocabularies and slice space.
    pub space: FeatureSpace,
    /// Training examples with probabilistic targets.
    pub train: Vec<CompiledExample>,
    /// Dev examples with gold targets.
    pub dev: Vec<CompiledExample>,
    /// Per-task combiner diagnostics.
    pub diagnostics: BTreeMap<String, Vec<SourceDiagnostics>>,
}

/// Combines supervision for every task and materializes train/dev
/// examples. Seals the dataset and delegates to [`prepare_store`]; the
/// sealed sharded store is the pipeline's working form — callers that
/// already hold one should use [`prepare_store`] directly and skip the
/// re-encode.
pub fn prepare(dataset: &Dataset, method: &CombineMethod) -> Result<PreparedData, CombineError> {
    prepare_store(&dataset.seal(), method)
}

/// Combines supervision and materializes train/dev examples from a sealed
/// [`ShardedStore`]: one shard-parallel scan combines every task
/// ([`combine_all`]), another builds the feature space, and the train/dev
/// splits (resolved from the seal-time index, not a tag scan) encode
/// per shard in parallel. Targets follow the eager rules exactly:
/// annotator gold overrides the weak combination on training records; dev
/// records carry gold only.
pub fn prepare_store(
    store: &ShardedStore,
    method: &CombineMethod,
) -> Result<PreparedData, CombineError> {
    let space = FeatureSpace::build_from_store(store)?;
    prepare_store_with_space(store, method, space)
}

/// [`prepare_store`] with a caller-supplied [`FeatureSpace`] instead of
/// one rebuilt from the rows. This is the incremental-retrain path: a
/// warm-started run must encode new data in the *previous* run's space so
/// the persisted weights keep their meaning (vocabularies map unseen
/// tokens to `<unk>`, so fresh delta rows encode safely; slice membership
/// is limited to the slices the space already names).
pub fn prepare_store_with_space(
    store: &ShardedStore,
    method: &CombineMethod,
    space: FeatureSpace,
) -> Result<PreparedData, CombineError> {
    let schema = store.schema();
    let combined = combine_all(store, method)?;
    let diagnostics: BTreeMap<String, Vec<SourceDiagnostics>> =
        combined.iter().map(|(task, result)| (task.clone(), result.sources.clone())).collect();

    let encode_split =
        |rows: &[u32], with_weak: bool| -> Result<Vec<CompiledExample>, CombineError> {
            let partials = store
                .par_scan_rows(rows, |scan| {
                    let mut out = Vec::with_capacity(scan.len());
                    for (i, record) in scan.records() {
                        let record = record?;
                        let mut example = CompiledExample::from_record(&record, i, &space, schema);
                        for task in schema.tasks.keys() {
                            // Annotator gold (when present) overrides the weak
                            // combination.
                            if let Some(gold) = gold_to_prob(schema, &record, task) {
                                example.targets.insert(task.clone(), gold);
                                continue;
                            }
                            if !with_weak {
                                continue;
                            }
                            if let Some(result) = combined.get(task) {
                                if let Some(label) = &result.labels[i] {
                                    example.targets.insert(task.clone(), label.clone());
                                }
                            }
                        }
                        out.push(example);
                    }
                    Ok(out)
                })
                .map_err(CombineError::Store)?;
            Ok(partials.into_iter().flatten().collect())
        };

    let train = encode_split(store.index().train_rows(), true)?;
    let dev = encode_split(store.index().dev_rows(), false)?;
    Ok(PreparedData { space, train, dev, diagnostics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_nlp::{generate_workload, WorkloadConfig};

    fn workload(gold_fraction: f64) -> Dataset {
        generate_workload(&WorkloadConfig {
            n_train: 80,
            n_dev: 20,
            n_test: 20,
            seed: 77,
            gold_train_fraction: gold_fraction,
            ..Default::default()
        })
    }

    #[test]
    fn prepare_attaches_targets() {
        let ds = workload(0.0);
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        assert_eq!(prepared.train.len(), 80);
        assert_eq!(prepared.dev.len(), 20);
        // Most training examples should have an Intent target (weak coverage
        // is high).
        let with_intent =
            prepared.train.iter().filter(|e| e.targets.contains_key("Intent")).count();
        assert!(with_intent > 60, "{with_intent} examples have Intent targets");
        // Dev examples carry gold targets for every task.
        for ex in &prepared.dev {
            assert_eq!(ex.targets.len(), 4, "dev targets: {:?}", ex.targets.keys());
        }
        // Diagnostics exist for all four tasks.
        assert_eq!(prepared.diagnostics.len(), 4);
    }

    #[test]
    fn gold_overrides_weak_on_train() {
        let ds = workload(1.0);
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        // With full gold coverage every Intent target is one-hot.
        for ex in &prepared.train {
            if let Some(overton_supervision::ProbLabel::Dist(d)) = ex.targets.get("Intent") {
                let max = d.iter().copied().fold(0.0f32, f32::max);
                assert!((max - 1.0).abs() < 1e-6, "expected one-hot, got {d:?}");
            }
        }
    }

    #[test]
    fn prepare_store_matches_prepare() {
        let ds = workload(0.3);
        let eager = prepare(&ds, &CombineMethod::default()).unwrap();
        let store = ds.seal_shards(3).with_scan_workers(2);
        let sharded = prepare_store(&store, &CombineMethod::default()).unwrap();
        assert_eq!(sharded.space.token_vocab.len(), eager.space.token_vocab.len());
        assert_eq!(sharded.space.entity_vocab.len(), eager.space.entity_vocab.len());
        assert_eq!(sharded.space.slice_names, eager.space.slice_names);
        assert_eq!(sharded.train.len(), eager.train.len());
        assert_eq!(sharded.dev.len(), eager.dev.len());
        for (a, b) in sharded.train.iter().zip(&eager.train) {
            assert_eq!(a.record_index, b.record_index);
            assert_eq!(a.sequences, b.sequences);
            assert_eq!(a.targets.keys().collect::<Vec<_>>(), b.targets.keys().collect::<Vec<_>>());
        }
        assert_eq!(sharded.diagnostics.len(), eager.diagnostics.len());
    }

    #[test]
    fn prepare_with_previous_space_encodes_new_rows_via_unk() {
        // Incremental retrain: encode a bigger store in the space built
        // from a smaller one. Same-space prepare must be identical to the
        // plain path; unseen tokens must map to <unk> without error.
        let old = workload(0.3);
        let old_store = old.seal_shards(2);
        let old_space = FeatureSpace::build_from_store(&old_store).unwrap();

        let same = prepare_store(&old_store, &CombineMethod::default()).unwrap();
        let reused =
            prepare_store_with_space(&old_store, &CombineMethod::default(), old_space.clone())
                .unwrap();
        assert_eq!(same.train.len(), reused.train.len());
        for (a, b) in same.train.iter().zip(&reused.train) {
            assert_eq!(a.sequences, b.sequences);
            assert_eq!(a.sets, b.sets);
        }

        let newer = generate_workload(&WorkloadConfig {
            n_train: 120,
            n_dev: 20,
            n_test: 20,
            seed: 991, // different seed: fresh token material
            ..Default::default()
        });
        let new_store = newer.seal_shards(2);
        let prepared =
            prepare_store_with_space(&new_store, &CombineMethod::default(), old_space.clone())
                .unwrap();
        assert_eq!(prepared.train.len(), 120);
        assert_eq!(prepared.space.token_vocab.len(), old_space.token_vocab.len());
        // Every encoded id is in the old vocab's range.
        for ex in &prepared.train {
            for ids in ex.sequences.values() {
                assert!(ids.iter().all(|&id| id < old_space.token_vocab.len()));
            }
        }
    }

    #[test]
    fn label_model_diagnostics_have_accuracies() {
        let ds = workload(0.0);
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        let intent = &prepared.diagnostics["Intent"];
        assert!(intent.iter().all(|d| d.estimated_accuracy.is_some()));
    }
}

//! Masked-token pretraining — the "BERT-sim" substrate for Figure 4b.
//!
//! The paper contrasts production models built on plain word embeddings
//! against ones fine-tuned from "BERT-Large". We reproduce the contrast
//! honestly at small scale: a contextual encoder is pretrained here with a
//! masked-token objective on an in-domain corpus, and its embedding table
//! initializes the compiled model's token embeddings (`EmbeddingKind::
//! Pretrained`). Everything else about training stays identical, so any
//! quality difference is attributable to pretraining.

use overton_nlp::{Vocab, MASK, PAD};
use overton_tensor::nn::{Conv1d, Embedding, Linear};
use overton_tensor::optim::{Adam, Optimizer};
use overton_tensor::{Graph, Matrix, ParamStore};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`pretrain`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Embedding (and encoder) width.
    pub dim: usize,
    /// Fraction of positions masked per sentence.
    pub mask_prob: f64,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self { dim: 32, mask_prob: 0.15, epochs: 3, learning_rate: 5e-3, seed: 0 }
    }
}

/// A pretrained embedding artifact ("drop in new pretrained embeddings as
/// they arrive: they are simply loaded as payloads", §2.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PretrainedEncoder {
    /// Vocabulary the table is indexed by.
    pub vocab: Vocab,
    /// `[vocab, dim]` embedding table.
    pub table: Matrix,
    /// Final masked-token training loss (diagnostic).
    pub final_loss: f32,
}

impl PretrainedEncoder {
    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Builds an [`Embedding`] for `target_vocab`, copying pretrained rows
    /// for shared tokens and randomly initializing the rest.
    ///
    /// # Panics
    /// Panics if `token_dim` differs from the artifact's width.
    pub fn init_embedding(
        &self,
        params: &mut ParamStore,
        target_vocab: &Vocab,
        token_dim: usize,
    ) -> Embedding {
        assert_eq!(token_dim, self.dim(), "config.token_dim must match the pretrained width");
        let mut rng = SmallRng::seed_from_u64(7);
        let mut table = overton_tensor::init::normal(target_vocab.len(), token_dim, 0.1, &mut rng);
        let mut copied = 0usize;
        for id in 0..target_vocab.len() {
            let Some(token) = target_vocab.token(id) else { continue };
            let pre_id = self.vocab.id(token);
            if pre_id != overton_nlp::UNK || token == "<unk>" {
                table.row_mut(id).copy_from_slice(self.table.row(pre_id));
                copied += 1;
            }
        }
        debug_assert!(copied > 0, "no vocabulary overlap with pretrained table");
        Embedding::from_pretrained(params, "tokens.embedding", table)
    }
}

/// Pretrains a contextual encoder with a masked-token objective and returns
/// the embedding artifact.
pub fn pretrain(corpus: &[Vec<String>], config: &PretrainConfig) -> PretrainedEncoder {
    assert!(!corpus.is_empty(), "pretraining corpus is empty");
    let vocab = Vocab::build(corpus.iter().flat_map(|s| s.iter().map(String::as_str)), 1);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut params = ParamStore::new();
    let embedding = Embedding::new(&mut params, "mlm.embedding", vocab.len(), config.dim, &mut rng);
    let encoder = Conv1d::new(&mut params, "mlm.encoder", config.dim, config.dim, 3, &mut rng);
    let head = Linear::new(&mut params, "mlm.head", config.dim, vocab.len(), &mut rng);
    let mut opt = Adam::new(config.learning_rate);

    let encoded: Vec<Vec<usize>> = corpus.iter().map(|s| vocab.encode(s)).collect();
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    let mut final_loss = 0.0f32;
    for _ in 0..config.epochs {
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for &si in &order {
            let ids = &encoded[si];
            if ids.len() < 2 {
                continue;
            }
            // Mask positions; ensure at least one mask.
            let mut masked = ids.clone();
            let mut mask_positions = Vec::new();
            for (t, slot) in masked.iter_mut().enumerate() {
                if *slot != PAD && rng.gen_bool(config.mask_prob) {
                    mask_positions.push(t);
                    *slot = MASK;
                }
            }
            if mask_positions.is_empty() {
                let t = rng.gen_range(0..ids.len());
                mask_positions.push(t);
                masked[t] = MASK;
            }
            let mut g = Graph::new();
            let emb = embedding.forward(&mut g, &params, &masked);
            let enc = encoder.forward(&mut g, &params, emb);
            let act = g.relu(enc);
            let logits = head.forward(&mut g, &params, act);
            let (t_len, v) = g.value(logits).shape();
            let mut targets = Matrix::zeros(t_len, v);
            let mut weights = vec![0.0f32; t_len];
            for &t in &mask_positions {
                targets[(t, ids[t])] = 1.0;
                weights[t] = 1.0;
            }
            let loss = g.cross_entropy(logits, &targets, &weights);
            epoch_loss += f64::from(g.value(loss).scalar_value());
            batches += 1;
            g.backward(loss);
            g.flush_grads(&mut params);
            params.clip_grad_norm(5.0);
            opt.step(&mut params);
            params.zero_grads();
        }
        final_loss = (epoch_loss / batches.max(1) as f64) as f32;
    }
    PretrainedEncoder { table: params.value(embedding.table()).clone(), vocab, final_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_nlp::{pretraining_corpus, KnowledgeBase};

    fn small_corpus() -> Vec<Vec<String>> {
        pretraining_corpus(&KnowledgeBase::standard(), 150, 3)
    }

    #[test]
    fn pretraining_reduces_loss() {
        let corpus = small_corpus();
        let one = pretrain(&corpus, &PretrainConfig { epochs: 1, ..Default::default() });
        let many = pretrain(&corpus, &PretrainConfig { epochs: 6, ..Default::default() });
        assert!(
            many.final_loss < one.final_loss,
            "6 epochs ({}) should beat 1 epoch ({})",
            many.final_loss,
            one.final_loss
        );
    }

    #[test]
    fn artifact_has_vocab_and_table() {
        let art = pretrain(&small_corpus(), &PretrainConfig { epochs: 1, ..Default::default() });
        assert_eq!(art.table.rows(), art.vocab.len());
        assert_eq!(art.dim(), 32);
    }

    #[test]
    fn init_embedding_copies_shared_rows() {
        let art = pretrain(&small_corpus(), &PretrainConfig { epochs: 1, ..Default::default() });
        // Target vocab shares tokens with the corpus.
        let target = Vocab::build(["how", "tall", "zzz-novel-token"].iter().copied(), 1);
        let mut params = ParamStore::new();
        let emb = art.init_embedding(&mut params, &target, 32);
        let table = params.value(emb.table());
        let how_target = target.id("how");
        let how_pre = art.vocab.id("how");
        assert_ne!(how_pre, overton_nlp::UNK, "'how' must be in the corpus");
        assert_eq!(table.row(how_target), art.table.row(how_pre));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn dim_mismatch_rejected() {
        let art = pretrain(&small_corpus(), &PretrainConfig { epochs: 1, ..Default::default() });
        let target = Vocab::build(["x"].iter().copied(), 1);
        let mut params = ParamStore::new();
        let _ = art.init_embedding(&mut params, &target, 64);
    }

    #[test]
    fn serde_roundtrip() {
        let art = pretrain(&small_corpus(), &PretrainConfig { epochs: 1, ..Default::default() });
        let json = serde_json::to_string(&art).unwrap();
        let back: PretrainedEncoder = serde_json::from_str(&json).unwrap();
        assert_eq!(back.table, art.table);
        assert_eq!(back.vocab, art.vocab);
    }
}

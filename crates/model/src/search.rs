//! Coarse-grained architecture and hyperparameter search.
//!
//! "Overton searches over relatively limited large blocks, e.g., should we
//! use an LSTM or CNN, not at a fine-grained level of connections" (§4).
//! Trials run in parallel on scoped threads; each trains a short-budget
//! model and is scored by dev agreement; the winner is retrained to
//! convergence by the caller.

use crate::config::{EmbeddingKind, ModelConfig, TrainConfig, TuningSpec};
use crate::features::{CompiledExample, FeatureSpace};
use crate::network::CompiledModel;
use crate::pretrained::PretrainedEncoder;
use crate::trainer::{dev_agreement, train_model};
use overton_store::Schema;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Search budget and parallelism.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SearchConfig {
    /// Maximum trials (the spec's cross-product is subsampled when larger).
    pub trials: usize,
    /// Worker threads.
    pub threads: usize,
    /// Subsampling seed.
    pub seed: u64,
    /// Per-trial training budget (keep short; winners are retrained).
    pub train: TrainConfig,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            trials: 6,
            threads: 4,
            seed: 0,
            train: TrainConfig { epochs: 3, early_stop_patience: 0, ..Default::default() },
        }
    }
}

/// One trial's outcome.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrialResult {
    /// The configuration tried.
    pub config: ModelConfig,
    /// Dev agreement achieved after the short training budget.
    pub dev_score: f64,
}

/// Runs the search and returns the winning configuration plus all trials
/// (sorted best-first).
///
/// # Panics
/// Panics if the spec contains `Pretrained` embeddings but no artifact is
/// supplied, or if there are no dev examples to score on.
#[allow(clippy::too_many_arguments)] // mirrors the pipeline stages 1:1
pub fn search(
    schema: &Schema,
    space: &FeatureSpace,
    train: &[CompiledExample],
    dev: &[CompiledExample],
    spec: &TuningSpec,
    base: &ModelConfig,
    pretrained: Option<&PretrainedEncoder>,
    config: &SearchConfig,
) -> (ModelConfig, Vec<TrialResult>) {
    assert!(!dev.is_empty(), "search needs dev examples to score trials");
    let mut candidates = spec.enumerate(base);
    if pretrained.is_none() {
        assert!(
            candidates.iter().all(|c| c.embedding == EmbeddingKind::Learned),
            "spec includes pretrained embeddings but no artifact was supplied"
        );
    }
    // Subsample without replacement when the space exceeds the budget.
    let mut rng = SmallRng::seed_from_u64(config.seed);
    for i in (1..candidates.len()).rev() {
        candidates.swap(i, rng.gen_range(0..=i));
    }
    candidates.truncate(config.trials.max(1));

    let results = std::sync::Mutex::new(Vec::<TrialResult>::with_capacity(candidates.len()));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = config.threads.clamp(1, candidates.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= candidates.len() {
                    break;
                }
                let trial_config = candidates[i].clone();
                let artifact = match trial_config.embedding {
                    EmbeddingKind::Pretrained => pretrained,
                    EmbeddingKind::Learned => None,
                };
                let mut model = CompiledModel::compile(schema, space, &trial_config, artifact);
                train_model(&mut model, train, dev, &config.train);
                let dev_score = dev_agreement(&model, dev);
                results
                    .lock()
                    .expect("no trial panicked")
                    .push(TrialResult { config: trial_config, dev_score });
            });
        }
    });

    let mut trials = results.into_inner().expect("no trial panicked");
    trials.sort_by(|a, b| b.dev_score.partial_cmp(&a.dev_score).unwrap());
    (trials[0].config.clone(), trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::prepare;
    use crate::config::{AggregationKind, EncoderKind};
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_supervision::CombineMethod;

    #[test]
    fn search_ranks_trials_and_returns_best() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 100,
            n_dev: 30,
            n_test: 10,
            seed: 3,
            ..Default::default()
        });
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        let spec = TuningSpec {
            sizes: vec![(24, 32)],
            encoders: vec![EncoderKind::MeanBag, EncoderKind::Cnn],
            embeddings: vec![EmbeddingKind::Learned],
            aggregations: vec![AggregationKind::Mean],
        };
        let (best, trials) = search(
            ds.schema(),
            &prepared.space,
            &prepared.train,
            &prepared.dev,
            &spec,
            &ModelConfig::default(),
            None,
            &SearchConfig {
                trials: 2,
                threads: 2,
                train: TrainConfig { epochs: 2, ..Default::default() },
                ..Default::default()
            },
        );
        assert_eq!(trials.len(), 2);
        assert!(trials[0].dev_score >= trials[1].dev_score);
        assert_eq!(best, trials[0].config);
    }

    #[test]
    #[should_panic(expected = "needs dev examples")]
    fn empty_dev_rejected() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 10,
            n_dev: 0,
            n_test: 5,
            seed: 3,
            ..Default::default()
        });
        let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
        let _ = search(
            ds.schema(),
            &prepared.space,
            &prepared.train,
            &prepared.dev,
            &TuningSpec::default(),
            &ModelConfig::default(),
            None,
            &SearchConfig::default(),
        );
    }
}

//! # overton-store
//!
//! Overton's data layer: the **schema** (payloads + tasks, paper §2.1), the
//! **data file** of JSON records carrying multi-source weak supervision and
//! tags/slices (paper §2.2), a compact binary **row store** (the paper's
//! memory-mapped row store, footnote 5), and a **tag index** with
//! Pandas-compatible CSV export.
//!
//! The central design idea reproduced here is *model independence*: the
//! schema describes what the model computes — never how — so supervision
//! data evolves rapidly while the schema (and everything downstream of it,
//! like the serving signature) stays fixed.

#![warn(missing_docs)]

mod dataset;
mod error;
mod evolution;
mod record;
mod schema;
mod stats;
mod tags;

pub mod rowstore;

pub use dataset::Dataset;
pub use error::{Result, StoreError};
pub use evolution::{diff_schemas, is_backward_compatible, SchemaChange};
pub use record::{
    PayloadValue, Record, SetElement, TaskLabel, GOLD_SOURCE, SLICE_PREFIX, TAG_DEV, TAG_LIVE,
    TAG_TEST, TAG_TRAIN,
};
pub use schema::{
    example_schema, PayloadDef, PayloadKind, Schema, ServingSignature, SignatureInput,
    SignatureOutput, TaskDef, TaskKind,
};
pub use stats::{DatasetStats, TaskStats};
pub use tags::TagIndex;

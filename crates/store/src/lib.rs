//! # overton-store
//!
//! Overton's data layer: the **schema** (payloads + tasks, paper §2.1), the
//! **data file** of JSON records carrying multi-source weak supervision and
//! tags/slices (paper §2.2), a compact binary **row store** sealed into a
//! **sharded store** with zero-copy rows, per-shard checksums, a seal-time
//! tag/slice/source index and parallel scans (the paper's memory-mapped
//! row store, footnote 5), and a **tag index** with Pandas-compatible CSV
//! export.
//!
//! The [`Dataset`] is the editable builder view (validating, JSON-lines
//! backed); [`Dataset::seal`] freezes it into a [`ShardedStore`] that the
//! build pipeline scans shard-parallel end-to-end.
//!
//! The central design idea reproduced here is *model independence*: the
//! schema describes what the model computes — never how — so supervision
//! data evolves rapidly while the schema (and everything downstream of it,
//! like the serving signature) stays fixed.

#![warn(missing_docs)]

mod dataset;
mod error;
mod evolution;
mod record;
mod schema;
mod stats;
mod tags;

pub mod live;
pub mod rowstore;

pub use dataset::Dataset;
pub use error::{Result, StoreError};
pub use evolution::{diff_schemas, is_backward_compatible, SchemaChange};
pub use record::{
    PayloadValue, Record, SetElement, TaskLabel, GOLD_SOURCE, SLICE_PREFIX, TAG_DEV, TAG_LIVE,
    TAG_TEST, TAG_TRAIN,
};
pub use schema::{
    example_schema, PayloadDef, PayloadKind, Schema, ServingSignature, SignatureInput,
    SignatureOutput, TaskDef, TaskKind,
};
pub use stats::{DatasetStats, TaskStats};
pub use tags::TagIndex;

// The sharded store is the pipeline's spine; lift its types to the crate
// root alongside `Dataset`.
pub use rowstore::{
    LabelView, PayloadView, RowSetScan, RowView, ShardScan, ShardedStore, ShardedStoreBuilder,
    StoreIndex,
};

// The live store rides on top of it: append/seal/compact with
// snapshot-isolated readers.
pub use live::{LiveStore, LiveStoreConfig, StoreSnapshot};

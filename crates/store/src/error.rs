//! Error type for the data layer.

use std::fmt;

/// Errors raised by schema parsing, record validation, datasets and the row
/// store.
#[derive(Debug)]
pub enum StoreError {
    /// The schema document is malformed.
    Schema(String),
    /// A record does not conform to the schema.
    Validation(String),
    /// A JSON document could not be parsed.
    Json(serde_json::Error),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A binary row or row-store file is corrupt.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Schema(msg) => write!(f, "schema error: {msg}"),
            StoreError::Validation(msg) => write!(f, "record validation error: {msg}"),
            StoreError::Json(e) => write!(f, "json error: {e}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt row store: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Json(e) => Some(e),
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Json(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;

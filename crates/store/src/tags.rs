//! Tag index: fast per-tag row lookup plus Pandas-compatible export.
//!
//! The paper: "tags are stored in a format that is compatible with Pandas",
//! so engineers can pull per-tag examples into downstream analytics. The
//! interchange format here is CSV.

use crate::dataset::Dataset;
use crate::record::Record;
use std::collections::BTreeMap;
use std::io::Write;

/// An inverted index from tag name to the (sorted) row indices carrying it.
#[derive(Debug, Clone, Default)]
pub struct TagIndex {
    by_tag: BTreeMap<String, Vec<u32>>,
    num_rows: usize,
}

impl TagIndex {
    /// Builds the index from a dataset.
    pub fn build(dataset: &Dataset) -> Self {
        Self::from_records(dataset.records())
    }

    /// Builds the index from a record slice (used by [`Dataset`]'s cached
    /// index, which cannot borrow the dataset while it is being mutated).
    pub fn from_records(records: &[Record]) -> Self {
        let mut by_tag: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for (i, record) in records.iter().enumerate() {
            for tag in &record.tags {
                by_tag.entry(tag.clone()).or_default().push(i as u32);
            }
        }
        Self { by_tag, num_rows: records.len() }
    }

    /// All tags, sorted.
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.by_tag.keys().map(String::as_str)
    }

    /// Row indices carrying `tag` (empty if unknown).
    pub fn rows(&self, tag: &str) -> &[u32] {
        self.by_tag.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of rows carrying `tag`.
    pub fn count(&self, tag: &str) -> usize {
        self.rows(tag).len()
    }

    /// Rows carrying **all** of the given tags (set intersection).
    pub fn rows_with_all(&self, tags: &[&str]) -> Vec<u32> {
        let mut iter = tags.iter();
        let Some(first) = iter.next() else { return (0..self.num_rows as u32).collect() };
        let mut acc: Vec<u32> = self.rows(first).to_vec();
        for tag in iter {
            let other = self.rows(tag);
            acc.retain(|r| other.binary_search(r).is_ok());
        }
        acc
    }

    /// Number of rows in the indexed dataset.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Writes a Pandas-loadable CSV with one row per example and one 0/1
    /// column per tag (`pd.read_csv(..., index_col="row")`).
    pub fn write_csv(&self, mut writer: impl Write) -> std::io::Result<()> {
        let tags: Vec<&str> = self.tags().collect();
        write!(writer, "row")?;
        for t in &tags {
            write!(writer, ",{}", csv_escape(t))?;
        }
        writeln!(writer)?;
        // Row-major sweep over membership.
        let mut cursors = vec![0usize; tags.len()];
        for row in 0..self.num_rows as u32 {
            write!(writer, "{row}")?;
            for (ti, tag) in tags.iter().enumerate() {
                let rows = self.rows(tag);
                let cursor = &mut cursors[ti];
                let member = *cursor < rows.len() && rows[*cursor] == row;
                if member {
                    *cursor += 1;
                }
                write!(writer, ",{}", u8::from(member))?;
            }
            writeln!(writer)?;
        }
        Ok(())
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PayloadValue, Record};
    use crate::schema::example_schema;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new(example_schema());
        let mk = |i: usize| {
            Record::new().with_payload("query", PayloadValue::Singleton(format!("q{i}")))
        };
        ds.push(mk(0).with_tag("train").with_slice("hard")).unwrap();
        ds.push(mk(1).with_tag("train")).unwrap();
        ds.push(mk(2).with_tag("test").with_slice("hard")).unwrap();
        ds
    }

    #[test]
    fn counts_and_rows() {
        let idx = TagIndex::build(&dataset());
        assert_eq!(idx.count("train"), 2);
        assert_eq!(idx.rows("train"), &[0, 1]);
        assert_eq!(idx.rows("slice:hard"), &[0, 2]);
        assert_eq!(idx.count("missing"), 0);
    }

    #[test]
    fn intersection() {
        let idx = TagIndex::build(&dataset());
        assert_eq!(idx.rows_with_all(&["train", "slice:hard"]), vec![0]);
        assert_eq!(idx.rows_with_all(&[]), vec![0, 1, 2]);
    }

    #[test]
    fn csv_shape() {
        let idx = TagIndex::build(&dataset());
        let mut buf = Vec::new();
        idx.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert_eq!(lines[0], "row,slice:hard,test,train");
        assert_eq!(lines[1], "0,1,0,1");
        assert_eq!(lines[3], "2,1,1,0");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"x"), "\"q\"\"x\"");
    }
}

//! Schema evolution: what changes between two schema versions, and whether
//! deployed serving code survives them.
//!
//! The paper: "The schema changes very infrequently — many production
//! services have not updated their schema in over a year." When it *does*
//! change, the question is whether existing serving integrations break.
//! Additive changes (new task, new payload, new class appended) are
//! backward compatible; removals and in-place edits are not.

use crate::schema::{Schema, TaskKind};

/// One difference between two schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaChange {
    /// A payload present in the old schema is gone.
    PayloadRemoved(String),
    /// A new payload was added (compatible).
    PayloadAdded(String),
    /// A payload's kind/base/range changed in place.
    PayloadAltered(String),
    /// A task present in the old schema is gone.
    TaskRemoved(String),
    /// A new task was added (compatible).
    TaskAdded(String),
    /// A task's payload binding or output type changed.
    TaskAltered(String),
    /// Classes were appended to a task's vocabulary (compatible).
    ClassesAppended {
        /// Task name.
        task: String,
        /// Number of appended classes.
        added: usize,
    },
    /// A task's vocabulary was reordered, truncated or edited in place.
    ClassesRewritten(String),
}

impl SchemaChange {
    /// Whether serving code compiled against the old schema keeps working.
    pub fn is_backward_compatible(&self) -> bool {
        matches!(
            self,
            SchemaChange::PayloadAdded(_)
                | SchemaChange::TaskAdded(_)
                | SchemaChange::ClassesAppended { .. }
        )
    }
}

/// Computes the changes from `old` to `new`.
pub fn diff_schemas(old: &Schema, new: &Schema) -> Vec<SchemaChange> {
    let mut changes = Vec::new();
    for (name, old_def) in &old.payloads {
        match new.payloads.get(name) {
            None => changes.push(SchemaChange::PayloadRemoved(name.clone())),
            Some(new_def) if new_def != old_def => {
                changes.push(SchemaChange::PayloadAltered(name.clone()))
            }
            _ => {}
        }
    }
    for name in new.payloads.keys() {
        if !old.payloads.contains_key(name) {
            changes.push(SchemaChange::PayloadAdded(name.clone()));
        }
    }
    for (name, old_def) in &old.tasks {
        let Some(new_def) = new.tasks.get(name) else {
            changes.push(SchemaChange::TaskRemoved(name.clone()));
            continue;
        };
        if new_def.payload != old_def.payload {
            changes.push(SchemaChange::TaskAltered(name.clone()));
            continue;
        }
        match (&old_def.kind, &new_def.kind) {
            (TaskKind::Select, TaskKind::Select) => {}
            (
                TaskKind::Multiclass { classes: old_classes },
                TaskKind::Multiclass { classes: new_classes },
            )
            | (
                TaskKind::Bitvector { labels: old_classes },
                TaskKind::Bitvector { labels: new_classes },
            ) => {
                if old_classes == new_classes {
                    // unchanged
                } else if new_classes.len() > old_classes.len()
                    && new_classes[..old_classes.len()] == old_classes[..]
                {
                    changes.push(SchemaChange::ClassesAppended {
                        task: name.clone(),
                        added: new_classes.len() - old_classes.len(),
                    });
                } else {
                    changes.push(SchemaChange::ClassesRewritten(name.clone()));
                }
            }
            _ => changes.push(SchemaChange::TaskAltered(name.clone())),
        }
    }
    for name in new.tasks.keys() {
        if !old.tasks.contains_key(name) {
            changes.push(SchemaChange::TaskAdded(name.clone()));
        }
    }
    changes
}

/// True when every change from `old` to `new` is backward compatible, i.e.
/// a model compiled from `new` can replace one compiled from `old` without
/// touching serving integrations.
pub fn is_backward_compatible(old: &Schema, new: &Schema) -> bool {
    diff_schemas(old, new).iter().all(SchemaChange::is_backward_compatible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::example_schema;

    #[test]
    fn identical_schemas_have_no_changes() {
        let s = example_schema();
        assert!(diff_schemas(&s, &s).is_empty());
        assert!(is_backward_compatible(&s, &s));
    }

    #[test]
    fn appended_class_is_compatible() {
        let old = example_schema();
        let mut new = old.clone();
        if let TaskKind::Multiclass { classes } = &mut new.tasks.get_mut("Intent").unwrap().kind {
            classes.push("Weather".into());
        }
        let changes = diff_schemas(&old, &new);
        assert_eq!(
            changes,
            vec![SchemaChange::ClassesAppended { task: "Intent".into(), added: 1 }]
        );
        assert!(is_backward_compatible(&old, &new));
    }

    #[test]
    fn reordered_classes_are_breaking() {
        let old = example_schema();
        let mut new = old.clone();
        if let TaskKind::Multiclass { classes } = &mut new.tasks.get_mut("Intent").unwrap().kind {
            classes.swap(0, 1);
        }
        let changes = diff_schemas(&old, &new);
        assert_eq!(changes, vec![SchemaChange::ClassesRewritten("Intent".into())]);
        assert!(!is_backward_compatible(&old, &new));
    }

    #[test]
    fn removed_task_is_breaking_added_task_is_not() {
        let old = example_schema();
        let mut new = old.clone();
        let pos = new.tasks.remove("POS").unwrap();
        let changes = diff_schemas(&old, &new);
        assert_eq!(changes, vec![SchemaChange::TaskRemoved("POS".into())]);
        assert!(!is_backward_compatible(&old, &new));

        let mut widened = old.clone();
        widened.tasks.insert("POS2".into(), pos);
        assert!(is_backward_compatible(&old, &widened));
    }

    #[test]
    fn retargeted_task_is_breaking() {
        let old = example_schema();
        let mut new = old.clone();
        new.tasks.get_mut("Intent").unwrap().payload = "tokens".into();
        let changes = diff_schemas(&old, &new);
        assert_eq!(changes, vec![SchemaChange::TaskAltered("Intent".into())]);
    }

    #[test]
    fn altered_payload_detected() {
        let old = example_schema();
        let mut new = old.clone();
        new.payloads.get_mut("tokens").unwrap().kind =
            crate::schema::PayloadKind::Sequence { max_length: 32 };
        let changes = diff_schemas(&old, &new);
        assert_eq!(changes, vec![SchemaChange::PayloadAltered("tokens".into())]);
        assert!(!is_backward_compatible(&old, &new));
    }

    #[test]
    fn type_change_is_task_altered() {
        let old = example_schema();
        let mut new = old.clone();
        new.tasks.get_mut("Intent").unwrap().kind =
            TaskKind::Bitvector { labels: vec!["a".into()] };
        let changes = diff_schemas(&old, &new);
        assert_eq!(changes, vec![SchemaChange::TaskAltered("Intent".into())]);
    }
}

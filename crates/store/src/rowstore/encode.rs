//! Compact binary encoding of [`Record`]s for the row store.
//!
//! All fields of an example are read together at training/serving time, so a
//! row layout (record-contiguous) beats a columnar one here — this mirrors
//! the paper's footnote 5. The encoding is length-prefixed throughout; no
//! alignment, no padding.

use crate::error::{Result, StoreError};
use crate::record::{PayloadValue, Record, SetElement, TaskLabel};
use crate::rowstore::varint::{read_str, read_u64, write_str, write_u64};

const PAYLOAD_SINGLETON: u8 = 0;
const PAYLOAD_SEQUENCE: u8 = 1;
const PAYLOAD_SET: u8 = 2;

const LABEL_MC_ONE: u8 = 0;
const LABEL_MC_SEQ: u8 = 1;
const LABEL_BV_ONE: u8 = 2;
const LABEL_BV_SEQ: u8 = 3;
const LABEL_SELECT: u8 = 4;

/// Serializes a record into `out`.
pub fn encode_record(record: &Record, out: &mut Vec<u8>) {
    write_u64(out, record.payloads.len() as u64);
    for (name, value) in &record.payloads {
        write_str(out, name);
        encode_payload(value, out);
    }
    write_u64(out, record.tasks.len() as u64);
    for (task, sources) in &record.tasks {
        write_str(out, task);
        write_u64(out, sources.len() as u64);
        for (source, label) in sources {
            write_str(out, source);
            encode_label(label, out);
        }
    }
    write_u64(out, record.tags.len() as u64);
    for tag in &record.tags {
        write_str(out, tag);
    }
}

/// Deserializes a record from the front of `buf`, advancing it.
pub fn decode_record(buf: &mut &[u8]) -> Result<Record> {
    let mut record = Record::new();
    let n_payloads = read_u64(buf)? as usize;
    for _ in 0..n_payloads {
        let name = read_str(buf)?;
        let value = decode_payload(buf)?;
        record.payloads.insert(name, value);
    }
    let n_tasks = read_u64(buf)? as usize;
    for _ in 0..n_tasks {
        let task = read_str(buf)?;
        let n_sources = read_u64(buf)? as usize;
        let mut sources = std::collections::BTreeMap::new();
        for _ in 0..n_sources {
            let source = read_str(buf)?;
            let label = decode_label(buf)?;
            sources.insert(source, label);
        }
        record.tasks.insert(task, sources);
    }
    let n_tags = read_u64(buf)? as usize;
    for _ in 0..n_tags {
        record.tags.insert(read_str(buf)?);
    }
    Ok(record)
}

fn encode_payload(value: &PayloadValue, out: &mut Vec<u8>) {
    match value {
        PayloadValue::Singleton(s) => {
            out.push(PAYLOAD_SINGLETON);
            write_str(out, s);
        }
        PayloadValue::Sequence(items) => {
            out.push(PAYLOAD_SEQUENCE);
            write_u64(out, items.len() as u64);
            for item in items {
                write_str(out, item);
            }
        }
        PayloadValue::Set(items) => {
            out.push(PAYLOAD_SET);
            write_u64(out, items.len() as u64);
            for el in items {
                write_str(out, &el.id);
                write_u64(out, el.span.0 as u64);
                write_u64(out, el.span.1 as u64);
            }
        }
    }
}

fn decode_payload(buf: &mut &[u8]) -> Result<PayloadValue> {
    let tag = take_byte(buf)?;
    match tag {
        PAYLOAD_SINGLETON => Ok(PayloadValue::Singleton(read_str(buf)?)),
        PAYLOAD_SEQUENCE => {
            let n = read_u64(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(read_str(buf)?);
            }
            Ok(PayloadValue::Sequence(items))
        }
        PAYLOAD_SET => {
            let n = read_u64(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let id = read_str(buf)?;
                let lo = read_u64(buf)? as usize;
                let hi = read_u64(buf)? as usize;
                items.push(SetElement { id, span: (lo, hi) });
            }
            Ok(PayloadValue::Set(items))
        }
        other => Err(StoreError::Corrupt(format!("unknown payload tag {other}"))),
    }
}

fn encode_label(label: &TaskLabel, out: &mut Vec<u8>) {
    match label {
        TaskLabel::MulticlassOne(c) => {
            out.push(LABEL_MC_ONE);
            write_str(out, c);
        }
        TaskLabel::MulticlassSeq(cs) => {
            out.push(LABEL_MC_SEQ);
            write_u64(out, cs.len() as u64);
            for c in cs {
                write_str(out, c);
            }
        }
        TaskLabel::BitvectorOne(bits) => {
            out.push(LABEL_BV_ONE);
            write_u64(out, bits.len() as u64);
            for b in bits {
                write_str(out, b);
            }
        }
        TaskLabel::BitvectorSeq(rows) => {
            out.push(LABEL_BV_SEQ);
            write_u64(out, rows.len() as u64);
            for bits in rows {
                write_u64(out, bits.len() as u64);
                for b in bits {
                    write_str(out, b);
                }
            }
        }
        TaskLabel::Select(idx) => {
            out.push(LABEL_SELECT);
            write_u64(out, *idx as u64);
        }
    }
}

fn decode_label(buf: &mut &[u8]) -> Result<TaskLabel> {
    let tag = take_byte(buf)?;
    match tag {
        LABEL_MC_ONE => Ok(TaskLabel::MulticlassOne(read_str(buf)?)),
        LABEL_MC_SEQ => {
            let n = read_u64(buf)? as usize;
            let mut cs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                cs.push(read_str(buf)?);
            }
            Ok(TaskLabel::MulticlassSeq(cs))
        }
        LABEL_BV_ONE => {
            let n = read_u64(buf)? as usize;
            let mut bits = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                bits.push(read_str(buf)?);
            }
            Ok(TaskLabel::BitvectorOne(bits))
        }
        LABEL_BV_SEQ => {
            let n = read_u64(buf)? as usize;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let m = read_u64(buf)? as usize;
                let mut bits = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    bits.push(read_str(buf)?);
                }
                rows.push(bits);
            }
            Ok(TaskLabel::BitvectorSeq(rows))
        }
        LABEL_SELECT => Ok(TaskLabel::Select(read_u64(buf)? as usize)),
        other => Err(StoreError::Corrupt(format!("unknown label tag {other}"))),
    }
}

fn take_byte(buf: &mut &[u8]) -> Result<u8> {
    let (&b, rest) =
        buf.split_first().ok_or_else(|| StoreError::Corrupt("row truncated".into()))?;
    *buf = rest;
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record::new()
            .with_payload("query", PayloadValue::Singleton("how tall".into()))
            .with_payload("tokens", PayloadValue::Sequence(vec!["how".into(), "tall".into()]))
            .with_payload(
                "entities",
                PayloadValue::Set(vec![SetElement { id: "E1".into(), span: (0, 2) }]),
            )
            .with_label("Intent", "weak1", TaskLabel::MulticlassOne("Height".into()))
            .with_label("POS", "spacy", TaskLabel::MulticlassSeq(vec!["ADV".into(), "ADJ".into()]))
            .with_label("Types", "kb", TaskLabel::BitvectorSeq(vec![vec![], vec!["x".into()]]))
            .with_label("Topics", "lf", TaskLabel::BitvectorOne(vec!["a".into()]))
            .with_label("Arg", "w", TaskLabel::Select(0))
            .with_tag("train")
            .with_slice("hard")
    }

    #[test]
    fn roundtrip_full_record() {
        let r = sample_record();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        let mut slice = buf.as_slice();
        let back = decode_record(&mut slice).unwrap();
        assert!(slice.is_empty(), "{} bytes left over", slice.len());
        assert_eq!(r, back);
    }

    #[test]
    fn roundtrip_empty_record() {
        let r = Record::new();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(decode_record(&mut slice).unwrap(), r);
    }

    #[test]
    fn truncation_is_detected() {
        let r = sample_record();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            let mut slice = &buf[..cut];
            assert!(decode_record(&mut slice).is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn unknown_tag_is_detected() {
        let mut buf = Vec::new();
        // One payload with a bogus kind tag.
        crate::rowstore::varint::write_u64(&mut buf, 1);
        crate::rowstore::varint::write_str(&mut buf, "p");
        buf.push(99);
        let mut slice = buf.as_slice();
        let err = decode_record(&mut slice).unwrap_err();
        assert!(err.to_string().contains("unknown payload tag"), "{err}");
    }

    #[test]
    fn encoding_is_compact() {
        // Binary row should be much smaller than the JSON form.
        let r = sample_record();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        let json_len = r.to_json().len();
        assert!(
            buf.len() * 4 < json_len * 3,
            "binary {} bytes vs json {json_len} bytes",
            buf.len()
        );
    }
}

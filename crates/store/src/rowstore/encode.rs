//! Compact binary encoding of [`Record`]s for the row store.
//!
//! All fields of an example are read together at training/serving time, so a
//! row layout (record-contiguous) beats a columnar one here — this mirrors
//! the paper's footnote 5. The encoding is length-prefixed throughout; no
//! alignment, no padding.

use crate::error::{Result, StoreError};
use crate::record::{PayloadValue, Record, SetElement, TaskLabel, SLICE_PREFIX};
use crate::rowstore::varint::{read_str_borrowed, read_u64, write_str, write_u64};

const PAYLOAD_SINGLETON: u8 = 0;
const PAYLOAD_SEQUENCE: u8 = 1;
const PAYLOAD_SET: u8 = 2;

const LABEL_MC_ONE: u8 = 0;
const LABEL_MC_SEQ: u8 = 1;
const LABEL_BV_ONE: u8 = 2;
const LABEL_BV_SEQ: u8 = 3;
const LABEL_SELECT: u8 = 4;

/// Serializes a record into `out`.
pub fn encode_record(record: &Record, out: &mut Vec<u8>) {
    write_u64(out, record.payloads.len() as u64);
    for (name, value) in &record.payloads {
        write_str(out, name);
        encode_payload(value, out);
    }
    write_u64(out, record.tasks.len() as u64);
    for (task, sources) in &record.tasks {
        write_str(out, task);
        write_u64(out, sources.len() as u64);
        for (source, label) in sources {
            write_str(out, source);
            encode_label(label, out);
        }
    }
    write_u64(out, record.tags.len() as u64);
    for tag in &record.tags {
        write_str(out, tag);
    }
}

/// Deserializes a record from the front of `buf`, advancing it. One
/// decoder owns the wire format: this walks the row as a zero-copy view
/// and materializes it, so the owned and borrowed paths can never
/// diverge.
pub fn decode_record(buf: &mut &[u8]) -> Result<Record> {
    Ok(decode_view(buf)?.to_record())
}

fn encode_payload(value: &PayloadValue, out: &mut Vec<u8>) {
    match value {
        PayloadValue::Singleton(s) => {
            out.push(PAYLOAD_SINGLETON);
            write_str(out, s);
        }
        PayloadValue::Sequence(items) => {
            out.push(PAYLOAD_SEQUENCE);
            write_u64(out, items.len() as u64);
            for item in items {
                write_str(out, item);
            }
        }
        PayloadValue::Set(items) => {
            out.push(PAYLOAD_SET);
            write_u64(out, items.len() as u64);
            for el in items {
                write_str(out, &el.id);
                write_u64(out, el.span.0 as u64);
                write_u64(out, el.span.1 as u64);
            }
        }
    }
}

fn encode_label(label: &TaskLabel, out: &mut Vec<u8>) {
    match label {
        TaskLabel::MulticlassOne(c) => {
            out.push(LABEL_MC_ONE);
            write_str(out, c);
        }
        TaskLabel::MulticlassSeq(cs) => {
            out.push(LABEL_MC_SEQ);
            write_u64(out, cs.len() as u64);
            for c in cs {
                write_str(out, c);
            }
        }
        TaskLabel::BitvectorOne(bits) => {
            out.push(LABEL_BV_ONE);
            write_u64(out, bits.len() as u64);
            for b in bits {
                write_str(out, b);
            }
        }
        TaskLabel::BitvectorSeq(rows) => {
            out.push(LABEL_BV_SEQ);
            write_u64(out, rows.len() as u64);
            for bits in rows {
                write_u64(out, bits.len() as u64);
                for b in bits {
                    write_str(out, b);
                }
            }
        }
        TaskLabel::Select(idx) => {
            out.push(LABEL_SELECT);
            write_u64(out, *idx as u64);
        }
    }
}

fn take_byte(buf: &mut &[u8]) -> Result<u8> {
    let (&b, rest) =
        buf.split_first().ok_or_else(|| StoreError::Corrupt("row truncated".into()))?;
    *buf = rest;
    Ok(b)
}

/// Estimated varint cost of a length/count field (lengths in this corpus
/// are almost always `< 16384`, i.e. at most two LEB128 bytes).
const LEN_COST: usize = 2;

fn approx_str(s: &str) -> usize {
    LEN_COST + s.len()
}

/// A fast estimate of [`encode_record`]'s output size, computed without
/// encoding. Used to pre-size store blobs and to balance shards by bytes
/// rather than by row count.
pub fn approx_record_bytes(record: &Record) -> usize {
    let mut n = 3 * LEN_COST; // payload/task/tag counts
    for (name, value) in &record.payloads {
        n += approx_str(name) + 1;
        n += match value {
            PayloadValue::Singleton(s) => approx_str(s),
            PayloadValue::Sequence(items) => {
                LEN_COST + items.iter().map(|s| approx_str(s)).sum::<usize>()
            }
            PayloadValue::Set(els) => {
                LEN_COST + els.iter().map(|el| approx_str(&el.id) + 2 * LEN_COST).sum::<usize>()
            }
        };
    }
    for (task, sources) in &record.tasks {
        n += approx_str(task) + LEN_COST;
        for (source, label) in sources {
            n += approx_str(source) + 1;
            n += match label {
                TaskLabel::MulticlassOne(c) => approx_str(c),
                TaskLabel::MulticlassSeq(cs) => {
                    LEN_COST + cs.iter().map(|c| approx_str(c)).sum::<usize>()
                }
                TaskLabel::BitvectorOne(bits) => {
                    LEN_COST + bits.iter().map(|b| approx_str(b)).sum::<usize>()
                }
                TaskLabel::BitvectorSeq(rows) => {
                    LEN_COST
                        + rows
                            .iter()
                            .map(|bits| {
                                LEN_COST + bits.iter().map(|b| approx_str(b)).sum::<usize>()
                            })
                            .sum::<usize>()
                }
                TaskLabel::Select(_) => LEN_COST,
            };
        }
    }
    for tag in &record.tags {
        n += approx_str(tag);
    }
    n
}

/// A payload value viewed without copying: every string borrows from the
/// encoded row.
#[derive(Debug, Clone, PartialEq)]
pub enum PayloadView<'a> {
    /// Singleton payload text.
    Singleton(&'a str),
    /// Sequence payload tokens.
    Sequence(Vec<&'a str>),
    /// Set payload elements: `(entity id, span)`.
    Set(Vec<(&'a str, (usize, usize))>),
}

impl PayloadView<'_> {
    /// Number of elements the payload contributes (1 / seq len / set size).
    pub fn element_count(&self) -> usize {
        match self {
            PayloadView::Singleton(_) => 1,
            PayloadView::Sequence(items) => items.len(),
            PayloadView::Set(items) => items.len(),
        }
    }
}

/// A task label viewed without copying.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelView<'a> {
    /// Single class name.
    MulticlassOne(&'a str),
    /// Per-element class names.
    MulticlassSeq(Vec<&'a str>),
    /// Set bits by label name.
    BitvectorOne(Vec<&'a str>),
    /// Per-element set bits.
    BitvectorSeq(Vec<Vec<&'a str>>),
    /// Index of the chosen element.
    Select(usize),
}

/// A zero-copy view of one encoded row: the structural `Vec`s are small
/// allocations but every string borrows from the shard blob. Scan-heavy
/// consumers (supervision combination, vocabulary building, tag/slice
/// bookkeeping) read rows through this instead of materializing owned
/// [`Record`]s, which removes all string copies from the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct RowView<'a> {
    /// `(payload name, value)`, sorted by name (encoded from a `BTreeMap`).
    pub payloads: Vec<(&'a str, PayloadView<'a>)>,
    /// `(task, sources)`, sorted by task; sources sorted by source name.
    pub tasks: Vec<(&'a str, Vec<(&'a str, LabelView<'a>)>)>,
    /// Tags, sorted (encoded from a `BTreeSet`).
    pub tags: Vec<&'a str>,
}

impl<'a> RowView<'a> {
    /// Looks up a payload by name.
    pub fn payload(&self, name: &str) -> Option<&PayloadView<'a>> {
        self.payloads.binary_search_by_key(&name, |(n, _)| n).ok().map(|i| &self.payloads[i].1)
    }

    /// Looks up a task's `(source, label)` rows.
    pub fn task(&self, name: &str) -> Option<&[(&'a str, LabelView<'a>)]> {
        self.tasks.binary_search_by_key(&name, |(n, _)| n).ok().map(|i| self.tasks[i].1.as_slice())
    }

    /// One source's label for one task.
    pub fn label(&self, task: &str, source: &str) -> Option<&LabelView<'a>> {
        let sources = self.task(task)?;
        sources.binary_search_by_key(&source, |(s, _)| s).ok().map(|i| &sources[i].1)
    }

    /// True if the row carries the given tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.binary_search(&tag).is_ok()
    }

    /// True if the row is in the given slice.
    pub fn in_slice(&self, slice: &str) -> bool {
        self.slices().any(|s| s == slice)
    }

    /// Names of all slices this row belongs to.
    pub fn slices(&self) -> impl Iterator<Item = &'a str> + '_ {
        self.tags.iter().filter_map(|t| t.strip_prefix(SLICE_PREFIX))
    }

    /// Non-gold supervision sources for a task.
    pub fn weak_sources(&self, task: &str) -> impl Iterator<Item = (&'a str, &LabelView<'a>)> {
        self.task(task)
            .unwrap_or(&[])
            .iter()
            .filter(|(s, _)| *s != crate::record::GOLD_SOURCE)
            .map(|(s, l)| (*s, l))
    }

    /// Materializes an owned [`Record`] from the view.
    pub fn to_record(&self) -> Record {
        let mut record = Record::new();
        for (name, value) in &self.payloads {
            let owned = match value {
                PayloadView::Singleton(s) => PayloadValue::Singleton((*s).to_string()),
                PayloadView::Sequence(items) => {
                    PayloadValue::Sequence(items.iter().map(|s| (*s).to_string()).collect())
                }
                PayloadView::Set(els) => PayloadValue::Set(
                    els.iter()
                        .map(|(id, span)| SetElement { id: (*id).to_string(), span: *span })
                        .collect(),
                ),
            };
            record.payloads.insert((*name).to_string(), owned);
        }
        for (task, sources) in &self.tasks {
            let owned = sources
                .iter()
                .map(|(source, label)| {
                    let label = match label {
                        LabelView::MulticlassOne(c) => TaskLabel::MulticlassOne((*c).to_string()),
                        LabelView::MulticlassSeq(cs) => {
                            TaskLabel::MulticlassSeq(cs.iter().map(|c| (*c).to_string()).collect())
                        }
                        LabelView::BitvectorOne(bits) => {
                            TaskLabel::BitvectorOne(bits.iter().map(|b| (*b).to_string()).collect())
                        }
                        LabelView::BitvectorSeq(rows) => TaskLabel::BitvectorSeq(
                            rows.iter()
                                .map(|bits| bits.iter().map(|b| (*b).to_string()).collect())
                                .collect(),
                        ),
                        LabelView::Select(idx) => TaskLabel::Select(*idx),
                    };
                    ((*source).to_string(), label)
                })
                .collect();
            record.tasks.insert((*task).to_string(), owned);
        }
        for tag in &self.tags {
            record.tags.insert((*tag).to_string());
        }
        record
    }
}

/// Decodes a full row into a zero-copy [`RowView`]. Errors if the row has
/// trailing bytes.
pub fn decode_row_view(mut buf: &[u8]) -> Result<RowView<'_>> {
    let view = decode_view(&mut buf)?;
    if !buf.is_empty() {
        return Err(StoreError::Corrupt(format!("row has {} trailing bytes", buf.len())));
    }
    Ok(view)
}

fn decode_view<'a>(buf: &mut &'a [u8]) -> Result<RowView<'a>> {
    let n_payloads = read_u64(buf)? as usize;
    let mut payloads = Vec::with_capacity(n_payloads.min(1024));
    for _ in 0..n_payloads {
        let name = read_str_borrowed(buf)?;
        payloads.push((name, decode_payload_view(buf)?));
    }
    let n_tasks = read_u64(buf)? as usize;
    let mut tasks = Vec::with_capacity(n_tasks.min(1024));
    for _ in 0..n_tasks {
        let task = read_str_borrowed(buf)?;
        let n_sources = read_u64(buf)? as usize;
        let mut sources = Vec::with_capacity(n_sources.min(1024));
        for _ in 0..n_sources {
            let source = read_str_borrowed(buf)?;
            sources.push((source, decode_label_view(buf)?));
        }
        tasks.push((task, sources));
    }
    let n_tags = read_u64(buf)? as usize;
    let mut tags = Vec::with_capacity(n_tags.min(1024));
    for _ in 0..n_tags {
        tags.push(read_str_borrowed(buf)?);
    }
    Ok(RowView { payloads, tasks, tags })
}

fn decode_payload_view<'a>(buf: &mut &'a [u8]) -> Result<PayloadView<'a>> {
    let tag = take_byte(buf)?;
    match tag {
        PAYLOAD_SINGLETON => Ok(PayloadView::Singleton(read_str_borrowed(buf)?)),
        PAYLOAD_SEQUENCE => {
            let n = read_u64(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(read_str_borrowed(buf)?);
            }
            Ok(PayloadView::Sequence(items))
        }
        PAYLOAD_SET => {
            let n = read_u64(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let id = read_str_borrowed(buf)?;
                let lo = read_u64(buf)? as usize;
                let hi = read_u64(buf)? as usize;
                items.push((id, (lo, hi)));
            }
            Ok(PayloadView::Set(items))
        }
        other => Err(StoreError::Corrupt(format!("unknown payload tag {other}"))),
    }
}

fn decode_label_view<'a>(buf: &mut &'a [u8]) -> Result<LabelView<'a>> {
    let tag = take_byte(buf)?;
    match tag {
        LABEL_MC_ONE => Ok(LabelView::MulticlassOne(read_str_borrowed(buf)?)),
        LABEL_MC_SEQ => {
            let n = read_u64(buf)? as usize;
            let mut cs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                cs.push(read_str_borrowed(buf)?);
            }
            Ok(LabelView::MulticlassSeq(cs))
        }
        LABEL_BV_ONE => {
            let n = read_u64(buf)? as usize;
            let mut bits = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                bits.push(read_str_borrowed(buf)?);
            }
            Ok(LabelView::BitvectorOne(bits))
        }
        LABEL_BV_SEQ => {
            let n = read_u64(buf)? as usize;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let m = read_u64(buf)? as usize;
                let mut bits = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    bits.push(read_str_borrowed(buf)?);
                }
                rows.push(bits);
            }
            Ok(LabelView::BitvectorSeq(rows))
        }
        LABEL_SELECT => Ok(LabelView::Select(read_u64(buf)? as usize)),
        other => Err(StoreError::Corrupt(format!("unknown label tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record::new()
            .with_payload("query", PayloadValue::Singleton("how tall".into()))
            .with_payload("tokens", PayloadValue::Sequence(vec!["how".into(), "tall".into()]))
            .with_payload(
                "entities",
                PayloadValue::Set(vec![SetElement { id: "E1".into(), span: (0, 2) }]),
            )
            .with_label("Intent", "weak1", TaskLabel::MulticlassOne("Height".into()))
            .with_label("POS", "spacy", TaskLabel::MulticlassSeq(vec!["ADV".into(), "ADJ".into()]))
            .with_label("Types", "kb", TaskLabel::BitvectorSeq(vec![vec![], vec!["x".into()]]))
            .with_label("Topics", "lf", TaskLabel::BitvectorOne(vec!["a".into()]))
            .with_label("Arg", "w", TaskLabel::Select(0))
            .with_tag("train")
            .with_slice("hard")
    }

    #[test]
    fn roundtrip_full_record() {
        let r = sample_record();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        let mut slice = buf.as_slice();
        let back = decode_record(&mut slice).unwrap();
        assert!(slice.is_empty(), "{} bytes left over", slice.len());
        assert_eq!(r, back);
    }

    #[test]
    fn roundtrip_empty_record() {
        let r = Record::new();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(decode_record(&mut slice).unwrap(), r);
    }

    #[test]
    fn truncation_is_detected() {
        let r = sample_record();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        for cut in [1, buf.len() / 2, buf.len() - 1] {
            let mut slice = &buf[..cut];
            assert!(decode_record(&mut slice).is_err(), "cut at {cut} not detected");
        }
    }

    #[test]
    fn unknown_tag_is_detected() {
        let mut buf = Vec::new();
        // One payload with a bogus kind tag.
        crate::rowstore::varint::write_u64(&mut buf, 1);
        crate::rowstore::varint::write_str(&mut buf, "p");
        buf.push(99);
        let mut slice = buf.as_slice();
        let err = decode_record(&mut slice).unwrap_err();
        assert!(err.to_string().contains("unknown payload tag"), "{err}");
    }

    #[test]
    fn row_view_matches_record() {
        let r = sample_record();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        let view = decode_row_view(&buf).unwrap();
        assert_eq!(view.to_record(), r);
        assert!(matches!(view.payload("query"), Some(PayloadView::Singleton("how tall"))));
        assert!(view.payload("missing").is_none());
        assert!(matches!(view.label("Intent", "weak1"), Some(LabelView::MulticlassOne("Height"))));
        assert!(view.has_tag("train"));
        assert!(view.in_slice("hard"));
        assert_eq!(view.weak_sources("Intent").count(), 1);
        assert_eq!(view.weak_sources("NoTask").count(), 0);
    }

    #[test]
    fn row_view_detects_trailing_bytes() {
        let mut buf = Vec::new();
        encode_record(&Record::new(), &mut buf);
        buf.push(0);
        assert!(decode_row_view(&buf).is_err());
    }

    #[test]
    fn approx_bytes_brackets_actual_size() {
        let r = sample_record();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        let approx = approx_record_bytes(&r);
        assert!(approx >= buf.len(), "estimate {approx} under actual {}", buf.len());
        assert!(approx <= buf.len() * 2 + 64, "estimate {approx} far above {}", buf.len());
    }

    #[test]
    fn encoding_is_compact() {
        // Binary row should be much smaller than the JSON form.
        let r = sample_record();
        let mut buf = Vec::new();
        encode_record(&r, &mut buf);
        let json_len = r.to_json().len();
        assert!(
            buf.len() * 4 < json_len * 3,
            "binary {} bytes vs json {json_len} bytes",
            buf.len()
        );
    }
}

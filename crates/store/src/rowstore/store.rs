//! An immutable, persistable row store over binary-encoded records.
//!
//! Layout on disk:
//!
//! ```text
//! magic "OVRS" | version u32 | row_count u64
//! | offsets (row_count + 1) x u64   -- prefix offsets into the blob
//! | blob                             -- concatenated encoded rows
//! | checksum u64                     -- FNV-1a over the blob
//! ```
//!
//! In memory the blob is a [`bytes::Bytes`]; per-row access hands out
//! zero-copy slices of it. `Bytes` stands in for a real `mmap` so the crate
//! stays free of platform-specific dependencies while preserving the access
//! pattern (shared immutable buffer, cheap slicing).

use crate::error::{Result, StoreError};
use crate::record::Record;
use crate::rowstore::encode::{decode_record, encode_record};
use crate::rowstore::varint::fnv1a;
use bytes::Bytes;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"OVRS";
const VERSION: u32 = 1;

/// An immutable collection of binary-encoded rows with O(1) point access.
#[derive(Debug, Clone)]
pub struct RowStore {
    blob: Bytes,
    /// `offsets[i]..offsets[i+1]` is row `i` within `blob`.
    offsets: Vec<u64>,
}

impl RowStore {
    /// Encodes records into a new store.
    pub fn build<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let mut blob = Vec::new();
        let mut offsets = vec![0u64];
        for record in records {
            encode_record(record, &mut blob);
            offsets.push(blob.len() as u64);
        }
        Self { blob: Bytes::from(blob), offsets }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded size in bytes.
    pub fn blob_len(&self) -> usize {
        self.blob.len()
    }

    /// The raw encoded bytes of row `i` (zero-copy).
    pub fn row_bytes(&self, i: usize) -> Option<Bytes> {
        if i >= self.len() {
            return None;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        Some(self.blob.slice(lo..hi))
    }

    /// Decodes row `i`.
    pub fn get(&self, i: usize) -> Result<Record> {
        let bytes = self
            .row_bytes(i)
            .ok_or_else(|| StoreError::Corrupt(format!("row {i} out of {}", self.len())))?;
        let mut slice: &[u8] = &bytes;
        let record = decode_record(&mut slice)?;
        if !slice.is_empty() {
            return Err(StoreError::Corrupt(format!("row {i} has {} trailing bytes", slice.len())));
        }
        Ok(record)
    }

    /// Iterates over all rows, decoding each.
    pub fn scan(&self) -> impl Iterator<Item = Result<Record>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Writes the store to a writer in the on-disk format.
    pub fn write(&self, writer: impl Write) -> Result<()> {
        let mut w = BufWriter::new(writer);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        for off in &self.offsets {
            w.write_all(&off.to_le_bytes())?;
        }
        w.write_all(&self.blob)?;
        w.write_all(&fnv1a(&self.blob).to_le_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Writes the store to a file.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<()> {
        self.write(std::fs::File::create(path)?)
    }

    /// Reads a store from a reader, verifying magic, version and checksum.
    pub fn read(reader: impl Read) -> Result<Self> {
        let mut bytes = Vec::new();
        let mut reader = reader;
        reader.read_to_end(&mut bytes)?;
        Self::from_bytes(bytes)
    }

    /// Reads a store from a file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self> {
        Self::read(std::fs::File::open(path)?)
    }

    /// Parses an owned byte buffer in the on-disk format.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        let total = bytes.len();
        let need = |n: usize, what: &str| -> Result<()> {
            if total < n {
                return Err(StoreError::Corrupt(format!("file too short for {what}")));
            }
            Ok(())
        };
        need(16, "header")?;
        if &bytes[0..4] != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::Corrupt(format!("unsupported version {version}")));
        }
        let row_count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let offsets_end = 16 + (row_count + 1) * 8;
        need(offsets_end, "offset table")?;
        let mut offsets = Vec::with_capacity(row_count + 1);
        for i in 0..=row_count {
            let at = 16 + i * 8;
            offsets.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
        }
        let blob_len = *offsets.last().unwrap() as usize;
        let blob_end = offsets_end + blob_len;
        need(blob_end + 8, "blob and checksum")?;
        let stored_checksum = u64::from_le_bytes(bytes[blob_end..blob_end + 8].try_into().unwrap());
        let blob = Bytes::from(bytes).slice(offsets_end..blob_end);
        if fnv1a(&blob) != stored_checksum {
            return Err(StoreError::Corrupt("checksum mismatch".into()));
        }
        // Offsets must be monotone and in bounds.
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Corrupt("offset table is not monotone".into()));
        }
        Ok(Self { blob, offsets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PayloadValue, TaskLabel};

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new()
                    .with_payload("query", PayloadValue::Singleton(format!("query number {i}")))
                    .with_label(
                        "Intent",
                        "weak1",
                        TaskLabel::MulticlassOne(if i % 2 == 0 { "A" } else { "B" }.into()),
                    )
                    .with_tag(if i % 10 == 0 { "test" } else { "train" })
            })
            .collect()
    }

    #[test]
    fn build_and_point_access() {
        let rs = records(20);
        let store = RowStore::build(&rs);
        assert_eq!(store.len(), 20);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&store.get(i).unwrap(), r);
        }
        assert!(store.get(20).is_err());
    }

    #[test]
    fn scan_yields_all_rows_in_order() {
        let rs = records(7);
        let store = RowStore::build(&rs);
        let decoded: Vec<Record> = store.scan().collect::<Result<_>>().unwrap();
        assert_eq!(decoded, rs);
    }

    #[test]
    fn empty_store() {
        let store = RowStore::build([]);
        assert!(store.is_empty());
        assert_eq!(store.scan().count(), 0);
    }

    #[test]
    fn file_format_roundtrip() {
        let rs = records(13);
        let store = RowStore::build(&rs);
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        let back = RowStore::from_bytes(buf).unwrap();
        assert_eq!(back.len(), 13);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&back.get(i).unwrap(), r);
        }
    }

    #[test]
    fn checksum_detects_corruption() {
        let store = RowStore::build(&records(5));
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        // Flip a byte inside the blob region.
        let mid = buf.len() - 12;
        buf[mid] ^= 0xff;
        let err = RowStore::from_bytes(buf).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn bad_magic_detected() {
        let store = RowStore::build(&records(2));
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(RowStore::from_bytes(buf).is_err());
    }

    #[test]
    fn truncated_file_detected() {
        let store = RowStore::build(&records(2));
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(RowStore::from_bytes(buf).is_err());
    }

    #[test]
    fn row_bytes_are_zero_copy_slices() {
        let store = RowStore::build(&records(3));
        let b0 = store.row_bytes(0).unwrap();
        let b1 = store.row_bytes(1).unwrap();
        assert!(!b0.is_empty() && !b1.is_empty());
        assert!(store.row_bytes(3).is_none());
    }
}

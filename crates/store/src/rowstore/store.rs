//! An immutable, persistable row store over binary-encoded records.
//!
//! Layout on disk:
//!
//! ```text
//! magic "OVRS" | version u32 | row_count u64
//! | offsets (row_count + 1) x u64   -- prefix offsets into the blob
//! | blob                             -- concatenated encoded rows
//! | checksum u64                     -- FNV-1a over the blob
//! ```
//!
//! In memory the blob is a [`bytes::Bytes`]; per-row access hands out
//! zero-copy slices of it. `Bytes` stands in for a real `mmap` so the crate
//! stays free of platform-specific dependencies while preserving the access
//! pattern (shared immutable buffer, cheap slicing).

use crate::error::{Result, StoreError};
use crate::record::Record;
use crate::rowstore::encode::{
    approx_record_bytes, decode_record, decode_row_view, encode_record, RowView,
};
use crate::rowstore::varint::{fnv1a, fnv1a_continue, FNV_OFFSET};
use bytes::Bytes;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"OVRS";
/// Version 2 extends the checksum to cover the header and offset table as
/// well as the blob, so any single flipped byte in a store file surfaces
/// as [`StoreError::Corrupt`].
const VERSION: u32 = 2;

/// An immutable collection of binary-encoded rows with O(1) point access.
#[derive(Debug, Clone)]
pub struct RowStore {
    blob: Bytes,
    /// `offsets[i]..offsets[i+1]` is row `i` within `blob`.
    offsets: Vec<u64>,
}

impl RowStore {
    /// Encodes records into a new store. The blob is pre-sized from
    /// [`RowStore::approx_bytes`] so encoding appends into one allocation
    /// instead of growing through repeated reallocation.
    pub fn build<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let records: Vec<&Record> = records.into_iter().collect();
        let mut blob = Vec::with_capacity(Self::approx_bytes(records.iter().copied()));
        let mut offsets = Vec::with_capacity(records.len() + 1);
        offsets.push(0u64);
        for record in records {
            encode_record(record, &mut blob);
            offsets.push(blob.len() as u64);
        }
        Self { blob: Bytes::from(blob), offsets }
    }

    /// Estimates the encoded size of a set of records without encoding
    /// them (pre-sizing blobs, balancing shards by bytes).
    pub fn approx_bytes<'a>(records: impl IntoIterator<Item = &'a Record>) -> usize {
        records.into_iter().map(approx_record_bytes).sum()
    }

    /// Assembles a store from an already-encoded blob and its offset table
    /// (the streaming shard builder encodes rows as they arrive).
    pub(crate) fn from_raw_parts(blob: Vec<u8>, offsets: Vec<u64>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        Self { blob: Bytes::from(blob), offsets }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded size in bytes.
    pub fn blob_len(&self) -> usize {
        self.blob.len()
    }

    /// The raw encoded bytes of row `i` (zero-copy).
    pub fn row_bytes(&self, i: usize) -> Option<Bytes> {
        if i >= self.len() {
            return None;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        Some(self.blob.slice(lo..hi))
    }

    /// The raw encoded bytes of row `i` as a borrowed slice of the blob.
    pub fn row_slice(&self, i: usize) -> Option<&[u8]> {
        if i >= self.len() {
            return None;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        Some(&self.blob[lo..hi])
    }

    /// Decodes row `i` as a zero-copy [`RowView`] borrowing from the blob.
    pub fn view(&self, i: usize) -> Result<RowView<'_>> {
        let bytes = self
            .row_slice(i)
            .ok_or_else(|| StoreError::Corrupt(format!("row {i} out of {}", self.len())))?;
        decode_row_view(bytes)
    }

    /// Iterates over all rows as zero-copy views.
    pub fn scan_views(&self) -> impl Iterator<Item = Result<RowView<'_>>> {
        (0..self.len()).map(move |i| self.view(i))
    }

    /// FNV-1a checksum of the blob (the per-shard integrity fingerprint a
    /// [`ShardedStore`](crate::rowstore::ShardedStore) records at seal
    /// time).
    pub fn blob_checksum(&self) -> u64 {
        fnv1a(&self.blob)
    }

    /// Decodes row `i`.
    pub fn get(&self, i: usize) -> Result<Record> {
        let bytes = self
            .row_bytes(i)
            .ok_or_else(|| StoreError::Corrupt(format!("row {i} out of {}", self.len())))?;
        let mut slice: &[u8] = &bytes;
        let record = decode_record(&mut slice)?;
        if !slice.is_empty() {
            return Err(StoreError::Corrupt(format!("row {i} has {} trailing bytes", slice.len())));
        }
        Ok(record)
    }

    /// Iterates over all rows, decoding each.
    pub fn scan(&self) -> impl Iterator<Item = Result<Record>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Writes the store to a writer in the on-disk format. The trailing
    /// checksum covers everything before it (header, offsets and blob).
    pub fn write(&self, writer: impl Write) -> Result<()> {
        let mut w = BufWriter::new(writer);
        let mut header = Vec::with_capacity(16 + self.offsets.len() * 8);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for off in &self.offsets {
            header.extend_from_slice(&off.to_le_bytes());
        }
        let checksum = fnv1a_continue(fnv1a_continue(FNV_OFFSET, &header), &self.blob);
        w.write_all(&header)?;
        w.write_all(&self.blob)?;
        w.write_all(&checksum.to_le_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Writes the store to a file.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<()> {
        self.write(std::fs::File::create(path)?)
    }

    /// Reads a store from a reader, verifying magic, version and checksum.
    pub fn read(reader: impl Read) -> Result<Self> {
        let mut bytes = Vec::new();
        let mut reader = reader;
        reader.read_to_end(&mut bytes)?;
        Self::from_bytes(bytes)
    }

    /// Reads a store from a file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self> {
        Self::read(std::fs::File::open(path)?)
    }

    /// Parses an owned byte buffer in the on-disk format.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        let total = bytes.len();
        let need = |n: usize, what: &str| -> Result<()> {
            if total < n {
                return Err(StoreError::Corrupt(format!("file too short for {what}")));
            }
            Ok(())
        };
        need(16, "header")?;
        if &bytes[0..4] != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::Corrupt(format!("unsupported version {version}")));
        }
        let row_count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        // `row_count` is untrusted input: checked arithmetic so a corrupt
        // count surfaces as Corrupt instead of an overflow panic.
        let offsets_end = row_count
            .checked_add(1)
            .and_then(|n| n.checked_mul(8))
            .and_then(|n| n.checked_add(16))
            .ok_or_else(|| StoreError::Corrupt(format!("absurd row count {row_count}")))?;
        need(offsets_end, "offset table")?;
        let mut offsets = Vec::with_capacity(row_count + 1);
        for i in 0..=row_count {
            let at = 16 + i * 8;
            offsets.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
        }
        // The final offset is untrusted too: checked arithmetic again.
        let blob_len = *offsets.last().unwrap() as usize;
        let blob_end = offsets_end
            .checked_add(blob_len)
            .filter(|end| end.checked_add(8).is_some())
            .ok_or_else(|| StoreError::Corrupt(format!("absurd blob length {blob_len}")))?;
        need(blob_end + 8, "blob and checksum")?;
        let stored_checksum = u64::from_le_bytes(bytes[blob_end..blob_end + 8].try_into().unwrap());
        if fnv1a(&bytes[..blob_end]) != stored_checksum {
            return Err(StoreError::Corrupt("checksum mismatch".into()));
        }
        let blob = Bytes::from(bytes).slice(offsets_end..blob_end);
        // Offsets must be monotone and in bounds.
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Corrupt("offset table is not monotone".into()));
        }
        Ok(Self { blob, offsets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PayloadValue, TaskLabel};

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new()
                    .with_payload("query", PayloadValue::Singleton(format!("query number {i}")))
                    .with_label(
                        "Intent",
                        "weak1",
                        TaskLabel::MulticlassOne(if i % 2 == 0 { "A" } else { "B" }.into()),
                    )
                    .with_tag(if i % 10 == 0 { "test" } else { "train" })
            })
            .collect()
    }

    #[test]
    fn build_and_point_access() {
        let rs = records(20);
        let store = RowStore::build(&rs);
        assert_eq!(store.len(), 20);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&store.get(i).unwrap(), r);
        }
        assert!(store.get(20).is_err());
    }

    #[test]
    fn scan_yields_all_rows_in_order() {
        let rs = records(7);
        let store = RowStore::build(&rs);
        let decoded: Vec<Record> = store.scan().collect::<Result<_>>().unwrap();
        assert_eq!(decoded, rs);
    }

    #[test]
    fn empty_store() {
        let store = RowStore::build([]);
        assert!(store.is_empty());
        assert_eq!(store.scan().count(), 0);
    }

    #[test]
    fn file_format_roundtrip() {
        let rs = records(13);
        let store = RowStore::build(&rs);
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        let back = RowStore::from_bytes(buf).unwrap();
        assert_eq!(back.len(), 13);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&back.get(i).unwrap(), r);
        }
    }

    #[test]
    fn checksum_detects_corruption() {
        let store = RowStore::build(&records(5));
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        // Flip a byte inside the blob region.
        let mid = buf.len() - 12;
        buf[mid] ^= 0xff;
        let err = RowStore::from_bytes(buf).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn any_single_byte_flip_detected() {
        // Version 2's checksum covers the header and offset table too, so
        // a flip at *any* position must surface an error.
        let store = RowStore::build(&records(3));
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut copy = buf.clone();
            copy[pos] ^= 0x01;
            assert!(RowStore::from_bytes(copy).is_err(), "flip at {pos} not detected");
        }
    }

    #[test]
    fn views_match_decoded_records() {
        let rs = records(9);
        let store = RowStore::build(&rs);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&store.view(i).unwrap().to_record(), r);
        }
        let n = store.scan_views().filter(|v| v.as_ref().unwrap().has_tag("train")).count();
        assert_eq!(n, 8);
        assert!(store.view(9).is_err());
    }

    #[test]
    fn blob_checksum_is_stable() {
        let rs = records(4);
        let a = RowStore::build(&rs);
        let b = RowStore::build(&rs);
        assert_eq!(a.blob_checksum(), b.blob_checksum());
    }

    #[test]
    fn bad_magic_detected() {
        let store = RowStore::build(&records(2));
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(RowStore::from_bytes(buf).is_err());
    }

    #[test]
    fn absurd_row_count_is_corrupt_not_panic() {
        let store = RowStore::build(&records(2));
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = RowStore::from_bytes(buf).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn truncated_file_detected() {
        let store = RowStore::build(&records(2));
        let mut buf = Vec::new();
        store.write(&mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(RowStore::from_bytes(buf).is_err());
    }

    #[test]
    fn row_bytes_are_zero_copy_slices() {
        let store = RowStore::build(&records(3));
        let b0 = store.row_bytes(0).unwrap();
        let b1 = store.row_bytes(1).unwrap();
        assert!(!b0.is_empty() && !b1.is_empty());
        assert!(store.row_bytes(3).is_none());
    }
}

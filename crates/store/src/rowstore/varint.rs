//! LEB128 variable-length integers for the row encoding.

use crate::error::{Result, StoreError};

/// Appends `value` as LEB128 to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 integer from the front of `buf`, advancing it.
pub fn read_u64(buf: &mut &[u8]) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) =
            buf.split_first().ok_or_else(|| StoreError::Corrupt("varint truncated".into()))?;
        *buf = rest;
        if shift >= 64 {
            return Err(StoreError::Corrupt("varint overflows u64".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string from the front of `buf`.
pub fn read_str(buf: &mut &[u8]) -> Result<String> {
    Ok(read_str_borrowed(buf)?.to_string())
}

/// Reads a length-prefixed UTF-8 string as a slice borrowing from `buf`
/// (zero-copy), advancing it. This is the scan-path primitive: decoding a
/// row as a [`RowView`](crate::rowstore::RowView) touches no owned strings.
pub fn read_str_borrowed<'a>(buf: &mut &'a [u8]) -> Result<&'a str> {
    let len = read_u64(buf)? as usize;
    if buf.len() < len {
        return Err(StoreError::Corrupt(format!(
            "string of {len} bytes truncated ({} remain)",
            buf.len()
        )));
    }
    let (bytes, rest) = buf.split_at(len);
    *buf = rest;
    std::str::from_utf8(bytes).map_err(|_| StoreError::Corrupt("string is not valid UTF-8".into()))
}

/// The FNV-1a offset basis (hash of the empty input).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a byte slice (integrity check for store files).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash over another chunk (incremental hashing, used
/// to checksum a store file's header and blob without concatenating them).
pub fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_u64(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_varint_errors() {
        let mut slice: &[u8] = &[0x80];
        assert!(read_u64(&mut slice).is_err());
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "héllo wörld");
        let mut slice = buf.as_slice();
        assert_eq!(read_str(&mut slice).unwrap(), "héllo wörld");
    }

    #[test]
    fn truncated_string_errors() {
        let mut buf = Vec::new();
        write_str(&mut buf, "hello");
        let mut slice = &buf[..3];
        assert!(read_str(&mut slice).is_err());
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}

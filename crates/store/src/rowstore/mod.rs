//! Binary row store: compact record encoding + persistable store.

mod encode;
mod store;
mod varint;

pub use encode::{decode_record, encode_record};
pub use store::RowStore;
pub use varint::{fnv1a, read_str, read_u64, write_str, write_u64};

//! Binary row store: compact record encoding, persistable store segments,
//! and the sharded store + seal-time index the pipeline scans.

mod encode;
mod sharded;
mod store;
mod varint;

pub use encode::{
    approx_record_bytes, decode_record, decode_row_view, encode_record, LabelView, PayloadView,
    RowView,
};
pub use sharded::{
    RowSetScan, ShardScan, ShardedStore, ShardedStoreBuilder, StoreIndex, DEFAULT_SHARD_BYTES,
};
pub use store::RowStore;
pub use varint::{
    fnv1a, fnv1a_continue, read_str, read_str_borrowed, read_u64, write_str, write_u64,
};

//! The sharded row store: the pipeline's resident data spine.
//!
//! A [`ShardedStore`] is N [`RowStore`] segments (zero-copy `Bytes` rows,
//! per-shard checksums recorded at seal time) plus a [`StoreIndex`] — a
//! persistent tag/slice/source index built once when the store is sealed,
//! so the hot paths (supervision combination, feature encoding,
//! evaluation, slice reports) never re-scan the data to answer "which rows
//! carry this tag". Scans fan the shards out over `std::thread::scope`
//! workers via [`ShardedStore::par_scan`]; each worker walks its shard
//! through zero-copy [`RowView`]s or decoded [`Record`]s and returns a
//! partial that the caller merges in shard order, which keeps every
//! parallel computation bit-for-bit deterministic.
//!
//! This reproduces the role of the paper's memory-mapped row store
//! (footnote 5): payloads and supervision live in compact binary rows that
//! the whole build loop scans at production scale.

use crate::dataset::Dataset;
use crate::error::{Result, StoreError};
use crate::record::{Record, SLICE_PREFIX, TAG_DEV, TAG_TEST, TAG_TRAIN};
use crate::rowstore::encode::{approx_record_bytes, encode_record, RowView};
use crate::rowstore::store::RowStore;
use crate::schema::Schema;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default target size of one shard produced by the streaming
/// [`ShardedStoreBuilder`] (4 MiB of encoded rows).
pub const DEFAULT_SHARD_BYTES: usize = 4 << 20;

/// The persistent inverted index a [`ShardedStore`] builds at seal time:
/// tag → sorted global row ids, plus the per-task supervision source
/// names. Everything downstream answers split/slice/source queries from
/// here instead of scanning rows.
#[derive(Debug, Clone, Default)]
pub struct StoreIndex {
    tags: BTreeMap<String, Vec<u32>>,
    sources: BTreeMap<String, Vec<String>>,
    num_rows: usize,
}

impl StoreIndex {
    fn note_tags_and_sources<'a>(
        &mut self,
        row: u32,
        tags: impl Iterator<Item = &'a str>,
        task_sources: impl Iterator<Item = (&'a str, &'a str)>,
    ) {
        for tag in tags {
            self.tags.entry(tag.to_string()).or_default().push(row);
        }
        for (task, source) in task_sources {
            if source == crate::record::GOLD_SOURCE {
                continue;
            }
            let sources = self.sources.entry(task.to_string()).or_default();
            if let Err(at) = sources.binary_search_by(|s| s.as_str().cmp(source)) {
                sources.insert(at, source.to_string());
            }
        }
        self.num_rows = self.num_rows.max(row as usize + 1);
    }

    pub(crate) fn note_record(&mut self, row: u32, record: &Record) {
        self.note_tags_and_sources(
            row,
            record.tags.iter().map(String::as_str),
            record
                .tasks
                .iter()
                .flat_map(|(t, sources)| sources.keys().map(move |s| (t.as_str(), s.as_str()))),
        );
    }

    /// Notes a zero-copy row view (what `read_dir` and the live store's
    /// `open` rebuild per-segment indexes from, without decoding records).
    pub(crate) fn note_view(&mut self, row: u32, view: &RowView<'_>) {
        self.note_tags_and_sources(
            row,
            view.tags.iter().copied(),
            view.tasks.iter().flat_map(|(t, sources)| sources.iter().map(move |(s, _)| (*t, *s))),
        );
    }

    /// Consumes the index, keeping only the task → sorted non-gold source
    /// map (shared with `Dataset`'s cached query index so the gold-source
    /// exclusion rule lives in one place).
    pub(crate) fn into_sources(self) -> BTreeMap<String, Vec<String>> {
        self.sources
    }

    /// Merges `other`'s entries into `self` with every row id shifted by
    /// `offset`. Because live-store snapshots append segments *after* the
    /// base rows (offsets strictly increase segment to segment), the
    /// per-tag row lists stay sorted without a re-sort.
    pub(crate) fn merge_shifted(&mut self, other: &StoreIndex, offset: u32) {
        for (tag, rows) in &other.tags {
            self.tags.entry(tag.clone()).or_default().extend(rows.iter().map(|&r| r + offset));
        }
        for (task, sources) in &other.sources {
            let dst = self.sources.entry(task.clone()).or_default();
            for source in sources {
                if let Err(at) = dst.binary_search(source) {
                    dst.insert(at, source.clone());
                }
            }
        }
        self.num_rows = self.num_rows.max(offset as usize + other.num_rows);
    }

    /// Number of rows in the indexed store.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Sorted global row ids carrying `tag` (empty if unknown).
    pub fn rows(&self, tag: &str) -> &[u32] {
        self.tags.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of rows carrying `tag`.
    pub fn count(&self, tag: &str) -> usize {
        self.rows(tag).len()
    }

    /// Rows of the train split.
    pub fn train_rows(&self) -> &[u32] {
        self.rows(TAG_TRAIN)
    }

    /// Rows of the dev split.
    pub fn dev_rows(&self) -> &[u32] {
        self.rows(TAG_DEV)
    }

    /// Rows of the test split.
    pub fn test_rows(&self) -> &[u32] {
        self.rows(TAG_TEST)
    }

    /// Rows in the named slice.
    pub fn slice_rows(&self, slice: &str) -> &[u32] {
        self.tags.get(&format!("{SLICE_PREFIX}{slice}")).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All tags present, sorted.
    pub fn tag_names(&self) -> Vec<String> {
        self.tags.keys().cloned().collect()
    }

    /// All slice names present, sorted.
    pub fn slice_names(&self) -> Vec<String> {
        self.tags.keys().filter_map(|t| t.strip_prefix(SLICE_PREFIX)).map(str::to_string).collect()
    }

    /// Names of all non-gold supervision sources appearing for `task`,
    /// sorted.
    pub fn sources_for_task(&self, task: &str) -> Vec<String> {
        self.sources.get(task).cloned().unwrap_or_default()
    }

    /// Tasks that carry at least one non-gold supervision source.
    pub fn supervised_tasks(&self) -> impl Iterator<Item = &str> {
        self.sources.keys().map(String::as_str)
    }
}

/// One worker's window onto one shard during [`ShardedStore::par_scan`]:
/// the shard id, the global row id of the shard's first row, and
/// iterators over the shard as decoded records or zero-copy views.
pub struct ShardScan<'a> {
    shard: usize,
    start: usize,
    store: &'a RowStore,
}

impl<'a> ShardScan<'a> {
    /// Index of this shard within the store.
    pub fn shard_id(&self) -> usize {
        self.shard
    }

    /// Global row id of the shard's first row.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Rows in this shard.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the shard holds no rows.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The underlying segment.
    pub fn store(&self) -> &'a RowStore {
        self.store
    }

    /// Iterates `(global row id, decoded record)` over the shard.
    pub fn records(&self) -> impl Iterator<Item = (usize, Result<Record>)> + 'a {
        let (start, store) = (self.start, self.store);
        (0..store.len()).map(move |i| (start + i, store.get(i)))
    }

    /// Iterates `(global row id, zero-copy view)` over the shard.
    pub fn views(&self) -> impl Iterator<Item = (usize, Result<RowView<'a>>)> + 'a {
        let (start, store) = (self.start, self.store);
        (0..store.len()).map(move |i| (start + i, store.view(i)))
    }
}

/// One worker's window onto the subset of a shard selected by a sorted
/// global row set ([`ShardedStore::par_scan_rows`]).
pub struct RowSetScan<'a> {
    shard: usize,
    start: usize,
    store: &'a RowStore,
    rows: &'a [u32],
}

impl<'a> RowSetScan<'a> {
    /// Index of this shard within the store.
    pub fn shard_id(&self) -> usize {
        self.shard
    }

    /// Number of selected rows in this shard.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows of this shard are selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates `(global row id, decoded record)` over the selected rows.
    pub fn records(&self) -> impl Iterator<Item = (usize, Result<Record>)> + 'a {
        let (start, store) = (self.start, self.store);
        self.rows.iter().map(move |&g| (g as usize, store.get(g as usize - start)))
    }

    /// Iterates `(global row id, zero-copy view)` over the selected rows.
    pub fn views(&self) -> impl Iterator<Item = (usize, Result<RowView<'a>>)> + 'a {
        let (start, store) = (self.start, self.store);
        self.rows.iter().map(move |&g| (g as usize, store.view(g as usize - start)))
    }
}

/// An immutable, sealed dataset: N row-store shards balanced by encoded
/// bytes, per-shard checksums, and a seal-time [`StoreIndex`]. See the
/// module docs for the design.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    schema: Schema,
    shards: Vec<RowStore>,
    /// `starts[s]..starts[s + 1]` are the global row ids of shard `s`.
    starts: Vec<usize>,
    checksums: Vec<u64>,
    index: StoreIndex,
    scan_workers: usize,
}

impl ShardedStore {
    /// The default shard/worker count: one per available core, with a
    /// floor of two so the sharded structure is always exercised.
    pub fn default_shards() -> usize {
        std::thread::available_parallelism().map_or(2, |n| n.get().max(2))
    }

    /// Builds a sealed store from the paper's two-file engineer contract:
    /// a schema JSON file and a JSON-lines data file. The data file is
    /// streamed line by line into shard blobs via
    /// [`ShardedStoreBuilder::ingest_jsonl`] — records are validated as
    /// they stream and never materialized as an eager `Vec<Record>`.
    /// Errors are precise: schema problems name the schema file, data
    /// problems carry `<data file>: line N`.
    pub fn from_files(schema_path: impl AsRef<Path>, data_path: impl AsRef<Path>) -> Result<Self> {
        let schema = Schema::from_json_file(schema_path)?;
        let data_path = data_path.as_ref();
        let file = std::fs::File::open(data_path).map_err(|e| {
            StoreError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", data_path.display())))
        })?;
        let mut builder = ShardedStoreBuilder::new(schema);
        builder.ingest_jsonl(file).map_err(|e| match e {
            StoreError::Validation(msg) => {
                StoreError::Validation(format!("{}: {msg}", data_path.display()))
            }
            StoreError::Io(e) => StoreError::Io(std::io::Error::new(
                e.kind(),
                format!("{}: {e}", data_path.display()),
            )),
            other => other,
        })?;
        Ok(builder.seal())
    }

    /// Seals a slice of records into `n_shards` contiguous shards balanced
    /// by estimated encoded bytes. Records are assumed already validated
    /// against `schema` (a [`Dataset`] validates on entry).
    pub fn from_records(schema: Schema, records: &[Record], n_shards: usize) -> Self {
        let n_shards = n_shards.clamp(1, records.len().max(1));
        // Contiguous byte-balanced boundaries: cut when the running
        // estimate passes the next multiple of total/n.
        let sizes: Vec<usize> = records.iter().map(approx_record_bytes).collect();
        let total: usize = sizes.iter().sum();
        let mut bounds = vec![0usize];
        let mut running = 0usize;
        for (i, &sz) in sizes.iter().enumerate() {
            running += sz;
            let wanted = bounds.len(); // shards cut so far + 1
            if wanted < n_shards && running * n_shards >= wanted * total.max(1) {
                bounds.push(i + 1);
            }
        }
        bounds.push(records.len());
        bounds.dedup();
        if bounds.len() < 2 {
            bounds = vec![0, records.len()]; // empty input: one empty shard
        }

        // Encode shards in parallel; each worker owns one contiguous range.
        let n = bounds.len() - 1;
        let slots: Vec<Mutex<Option<RowStore>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = Self::default_shards().min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= n {
                        break;
                    }
                    let built = RowStore::build(&records[bounds[s]..bounds[s + 1]]);
                    *slots[s].lock().expect("shard slot") = Some(built);
                });
            }
        });
        let shards: Vec<RowStore> =
            slots.into_iter().map(|m| m.into_inner().expect("slot").expect("built")).collect();

        let mut index = StoreIndex { num_rows: records.len(), ..StoreIndex::default() };
        for (row, record) in records.iter().enumerate() {
            index.note_record(row as u32, record);
        }
        Self::assemble(schema, shards, index)
    }

    pub(crate) fn assemble(schema: Schema, shards: Vec<RowStore>, index: StoreIndex) -> Self {
        let mut starts = Vec::with_capacity(shards.len() + 1);
        starts.push(0usize);
        for shard in &shards {
            starts.push(starts.last().unwrap() + shard.len());
        }
        let checksums = shards.iter().map(RowStore::blob_checksum).collect();
        Self { schema, shards, starts, checksums, index, scan_workers: Self::default_shards() }
    }

    /// Builds the merged read view a live-store snapshot hands out: this
    /// store's shards followed by `extras` segments appended in order, with
    /// each extra's index merged in at the right row offset. Shard blobs
    /// are `Bytes`, so the merge clones refcounts, not row data.
    pub(crate) fn with_extra_segments<'a>(
        &self,
        extras: impl Iterator<Item = (&'a RowStore, &'a StoreIndex)>,
    ) -> Self {
        let mut shards = self.shards.clone();
        let mut index = self.index.clone();
        let mut offset = self.len();
        for (segment, segment_index) in extras {
            index.merge_shifted(segment_index, offset as u32);
            offset += segment.len();
            shards.push(segment.clone());
        }
        index.num_rows = offset;
        Self::assemble(self.schema.clone(), shards, index)
    }

    /// Overrides how many worker threads [`par_scan`](Self::par_scan) and
    /// friends use (defaults to the available parallelism).
    pub fn with_scan_workers(mut self, workers: usize) -> Self {
        self.scan_workers = workers.max(1);
        self
    }

    /// The configured scan worker count. Consumers that fan out derived
    /// work (e.g. per-task combiner runs) should respect this too.
    pub fn scan_workers(&self) -> usize {
        self.scan_workers
    }

    /// The schema the rows conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The seal-time tag/slice/source index.
    pub fn index(&self) -> &StoreIndex {
        &self.index
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// True when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard.
    pub fn shard(&self, s: usize) -> &RowStore {
        &self.shards[s]
    }

    /// Per-shard blob checksums recorded at seal time.
    pub fn shard_checksums(&self) -> &[u64] {
        &self.checksums
    }

    /// Total encoded bytes across shards.
    pub fn total_bytes(&self) -> usize {
        self.shards.iter().map(RowStore::blob_len).sum()
    }

    /// Maps a global row id to `(shard, row-within-shard)`.
    pub fn shard_of(&self, row: usize) -> Option<(usize, usize)> {
        if row >= self.len() {
            return None;
        }
        let s = self.starts.partition_point(|&start| start <= row) - 1;
        Some((s, row - self.starts[s]))
    }

    /// Decodes one row by global id.
    pub fn get(&self, row: usize) -> Result<Record> {
        let (s, local) = self
            .shard_of(row)
            .ok_or_else(|| StoreError::Corrupt(format!("row {row} out of {}", self.len())))?;
        self.shards[s].get(local)
    }

    /// Zero-copy view of one row by global id.
    pub fn view(&self, row: usize) -> Result<RowView<'_>> {
        let (s, local) = self
            .shard_of(row)
            .ok_or_else(|| StoreError::Corrupt(format!("row {row} out of {}", self.len())))?;
        self.shards[s].view(local)
    }

    /// Sequentially iterates all rows in global order, decoding each.
    pub fn scan(&self) -> impl Iterator<Item = Result<Record>> + '_ {
        self.shards.iter().flat_map(|s| s.scan())
    }

    /// Fans the shards out over scoped worker threads. Each worker calls
    /// `f` on whole shards and the per-shard results come back **in shard
    /// order**, so merging them sequentially reproduces the global row
    /// order — parallel scans stay deterministic regardless of thread
    /// scheduling. With one worker (or one shard) the scan runs inline.
    pub fn par_scan<T, F>(&self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(ShardScan<'_>) -> Result<T> + Sync,
    {
        let scans: Vec<ShardScan<'_>> = (0..self.shards.len())
            .map(|s| ShardScan { shard: s, start: self.starts[s], store: &self.shards[s] })
            .collect();
        self.run_workers(scans, f)
    }

    /// Like [`par_scan`](Self::par_scan) but over a **sorted** set of
    /// global row ids: rows are partitioned by shard boundary and only the
    /// shards that own selected rows are visited.
    pub fn par_scan_rows<T, F>(&self, rows: &[u32], f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(RowSetScan<'_>) -> Result<T> + Sync,
    {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "row set must be sorted");
        let mut scans = Vec::new();
        for s in 0..self.shards.len() {
            let lo = rows.partition_point(|&r| (r as usize) < self.starts[s]);
            let hi = rows.partition_point(|&r| (r as usize) < self.starts[s + 1]);
            if lo < hi {
                scans.push(RowSetScan {
                    shard: s,
                    start: self.starts[s],
                    store: &self.shards[s],
                    rows: &rows[lo..hi],
                });
            }
        }
        self.run_workers(scans, f)
    }

    fn run_workers<S, T, F>(&self, scans: Vec<S>, f: F) -> Result<Vec<T>>
    where
        S: Send,
        T: Send,
        F: Fn(S) -> Result<T> + Sync,
    {
        let n = scans.len();
        let workers = self.scan_workers.min(n);
        if workers <= 1 {
            return scans.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let queue = Mutex::new(scans.into_iter().enumerate().collect::<Vec<_>>());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let Some((at, scan)) = queue.lock().expect("scan queue").pop() else {
                        break;
                    };
                    *slots[at].lock().expect("result slot") = Some(f(scan));
                });
            }
        });
        slots.into_iter().map(|m| m.into_inner().expect("slot").expect("scanned")).collect()
    }

    /// Decodes the whole store back into an eager [`Dataset`] (the
    /// editable builder view). Rows were validated when they entered the
    /// store, so they are not re-validated here.
    pub fn dataset_view(&self) -> Result<Dataset> {
        let mut dataset = Dataset::new(self.schema.clone());
        for record in self.scan() {
            dataset.push_unchecked(record?);
        }
        Ok(dataset)
    }

    /// Recomputes every shard checksum against the value recorded at seal
    /// time.
    pub fn verify(&self) -> Result<()> {
        for (s, (shard, &expect)) in self.shards.iter().zip(&self.checksums).enumerate() {
            if shard.blob_checksum() != expect {
                return Err(StoreError::Corrupt(format!("shard {s} checksum mismatch")));
            }
        }
        Ok(())
    }

    /// The canonical string the manifest's self-checksum covers: the
    /// fields that determine what `read_dir` will load.
    fn manifest_core(shards: usize, schema_checksum: u64, shard_checksums: &[u64]) -> String {
        let list = shard_checksums.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        format!("1|{shards}|{schema_checksum}|{list}")
    }

    /// Writes the store as a directory: `schema.json`, `manifest.json`,
    /// and one `shard-NNNN.ovrs` file per shard (each in the checksummed
    /// [`RowStore`] file format). The manifest records the schema and
    /// per-shard checksums plus a checksum of its own fields, so
    /// corruption of *any* file — shards, schema, or the manifest itself —
    /// surfaces as [`StoreError::Corrupt`] on read.
    pub fn write_dir(&self, dir: impl AsRef<Path>) -> Result<()> {
        use crate::rowstore::varint::fnv1a;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let schema_json = self.schema.to_json();
        let schema_checksum = fnv1a(schema_json.as_bytes());
        std::fs::write(dir.join("schema.json"), schema_json)?;
        let core = Self::manifest_core(self.shards.len(), schema_checksum, &self.checksums);
        let shard_list =
            self.checksums.iter().map(|c| format!("\"{c}\"")).collect::<Vec<_>>().join(", ");
        let manifest = format!(
            "{{\"version\": 1, \"shards\": {}, \"schema_checksum\": \"{schema_checksum}\", \
             \"shard_checksums\": [{shard_list}], \"manifest_checksum\": \"{}\"}}\n",
            self.shards.len(),
            fnv1a(core.as_bytes()),
        );
        std::fs::write(dir.join("manifest.json"), manifest)?;
        for (s, shard) in self.shards.iter().enumerate() {
            shard.write_file(dir.join(format!("shard-{s:04}.ovrs")))?;
        }
        Ok(())
    }

    /// Reads a store written by [`write_dir`](Self::write_dir), verifying
    /// the manifest self-checksum, the schema checksum, and every shard
    /// against both its own file checksum and the manifest, then
    /// rebuilding the index from the rows.
    pub fn read_dir(dir: impl AsRef<Path>) -> Result<Self> {
        use crate::rowstore::varint::fnv1a;
        let dir = dir.as_ref();
        let corrupt = |what: &str| StoreError::Corrupt(format!("manifest: {what}"));
        let schema_json = std::fs::read_to_string(dir.join("schema.json"))?;
        let manifest = std::fs::read_to_string(dir.join("manifest.json"))?;
        let serde_json::Value::Object(map) = serde_json::from_str_value(&manifest)? else {
            return Err(corrupt("not an object"));
        };
        let parse_u64 = |v: Option<&serde_json::Value>| -> Option<u64> {
            v.and_then(|v| v.as_str()).and_then(|s| s.parse().ok())
        };
        let n = map
            .get("shards")
            .and_then(|v| v.as_i64())
            .filter(|&n| n >= 0)
            .ok_or_else(|| corrupt("missing shard count"))? as usize;
        let schema_checksum = parse_u64(map.get("schema_checksum"))
            .ok_or_else(|| corrupt("missing schema checksum"))?;
        let manifest_checksum = parse_u64(map.get("manifest_checksum"))
            .ok_or_else(|| corrupt("missing self-checksum"))?;
        let shard_checksums: Vec<u64> = match map.get("shard_checksums") {
            Some(serde_json::Value::Array(items)) => items
                .iter()
                .map(|v| v.as_str().and_then(|s| s.parse().ok()))
                .collect::<Option<_>>()
                .ok_or_else(|| corrupt("malformed shard checksum"))?,
            _ => return Err(corrupt("missing shard checksums")),
        };
        if shard_checksums.len() != n {
            return Err(corrupt("shard count disagrees with checksum list"));
        }
        let core = Self::manifest_core(n, schema_checksum, &shard_checksums);
        if fnv1a(core.as_bytes()) != manifest_checksum {
            return Err(corrupt("self-checksum mismatch"));
        }
        if fnv1a(schema_json.as_bytes()) != schema_checksum {
            return Err(StoreError::Corrupt("schema.json does not match the manifest".into()));
        }
        let schema = Schema::from_json(&schema_json)?;
        // The count is now authenticated, but still cap the pre-allocation.
        let mut shards = Vec::with_capacity(n.min(1024));
        for (s, &expect) in shard_checksums.iter().enumerate() {
            let path = dir.join(format!("shard-{s:04}.ovrs"));
            // Shard-file problems must name the offending path precisely:
            // a file missing mid-sequence and a segment written in a
            // different format version are distinct operator mistakes, not
            // generic corruption.
            let shard = RowStore::read_file(&path).map_err(|e| match e {
                StoreError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => {
                    StoreError::Corrupt(format!(
                        "{}: shard file {s} of {n} is missing",
                        path.display()
                    ))
                }
                StoreError::Io(io) => StoreError::Io(std::io::Error::new(
                    io.kind(),
                    format!("{}: {io}", path.display()),
                )),
                StoreError::Corrupt(msg) => {
                    StoreError::Corrupt(format!("{}: {msg}", path.display()))
                }
                other => other,
            })?;
            if shard.blob_checksum() != expect {
                return Err(StoreError::Corrupt(format!(
                    "{}: shard {s} does not match the manifest",
                    path.display()
                )));
            }
            shards.push(shard);
        }
        if dir.join(format!("shard-{n:04}.ovrs")).exists() {
            return Err(StoreError::Corrupt("unexpected extra shard file".into()));
        }
        let mut index = StoreIndex::default();
        let mut row = 0u32;
        for shard in &shards {
            for view in shard.scan_views() {
                let view = view?;
                index.note_tags_and_sources(
                    row,
                    view.tags.iter().copied(),
                    view.tasks
                        .iter()
                        .flat_map(|(t, sources)| sources.iter().map(move |(s, _)| (*t, *s))),
                );
                row += 1;
            }
        }
        index.num_rows = row as usize;
        Ok(Self::assemble(schema, shards, index))
    }
}

/// Streams records straight into shard blobs: each pushed record is
/// encoded immediately (no intermediate `Vec<Record>`), the index is
/// maintained incrementally, and a new shard starts whenever the current
/// blob passes the target size. This is how bulk producers (the workload
/// generator, log ingest) write the store directly.
#[derive(Debug)]
pub struct ShardedStoreBuilder {
    schema: Schema,
    shard_bytes: usize,
    done: Vec<RowStore>,
    blob: Vec<u8>,
    offsets: Vec<u64>,
    index: StoreIndex,
    rows: usize,
}

impl ShardedStoreBuilder {
    /// A builder targeting [`DEFAULT_SHARD_BYTES`] per shard.
    pub fn new(schema: Schema) -> Self {
        Self::with_shard_bytes(schema, DEFAULT_SHARD_BYTES)
    }

    /// A builder that rotates to a new shard once the current blob reaches
    /// `shard_bytes`.
    pub fn with_shard_bytes(schema: Schema, shard_bytes: usize) -> Self {
        Self {
            schema,
            shard_bytes: shard_bytes.max(1),
            done: Vec::new(),
            blob: Vec::new(),
            offsets: vec![0],
            index: StoreIndex::default(),
            rows: 0,
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Validates, normalizes and appends a record.
    pub fn push(&mut self, mut record: Record) -> Result<()> {
        record.normalize_labels(&self.schema);
        record.validate(&self.schema)?;
        self.push_unchecked(&record);
        Ok(())
    }

    /// Streams a JSON-lines reader straight into the shard blobs: each
    /// line is parsed, normalized and validated, then encoded into the
    /// current shard — no intermediate `Vec<Record>` is ever built. Blank
    /// lines are skipped; errors carry the 1-based line number (a
    /// truncated line, an unknown task, a payload/kind mismatch each
    /// surface as a precise [`StoreError`], never a panic). Returns how
    /// many records were ingested.
    pub fn ingest_jsonl(&mut self, reader: impl std::io::Read) -> Result<usize> {
        use std::io::BufRead;
        let mut reader = std::io::BufReader::new(reader);
        let mut line = String::new();
        let mut lineno = 0usize;
        let mut ingested = 0usize;
        loop {
            line.clear();
            // Read failures (a non-UTF-8 byte, a disk error) carry the
            // line number too, not just parse/validation failures.
            let read = reader.read_line(&mut line).map_err(|e| {
                StoreError::Io(std::io::Error::new(e.kind(), format!("line {}: {e}", lineno + 1)))
            })?;
            if read == 0 {
                break;
            }
            lineno += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let record = Record::from_json(trimmed)
                .map_err(|e| StoreError::Validation(format!("line {lineno}: {e}")))?;
            self.push(record).map_err(|e| StoreError::Validation(format!("line {lineno}: {e}")))?;
            ingested += 1;
        }
        Ok(ingested)
    }

    /// Appends a record without validation (for trusted generators).
    pub fn push_unchecked(&mut self, record: &Record) {
        encode_record(record, &mut self.blob);
        self.offsets.push(self.blob.len() as u64);
        self.index.note_record(self.rows as u32, record);
        self.rows += 1;
        if self.blob.len() >= self.shard_bytes {
            self.rotate();
        }
    }

    fn rotate(&mut self) {
        let blob = std::mem::take(&mut self.blob);
        let offsets = std::mem::replace(&mut self.offsets, vec![0]);
        self.done.push(RowStore::from_raw_parts(blob, offsets));
    }

    /// Finishes the current shard and seals the store.
    pub fn seal(mut self) -> ShardedStore {
        if self.offsets.len() > 1 || self.done.is_empty() {
            self.rotate();
        }
        self.index.num_rows = self.rows;
        ShardedStore::assemble(self.schema, self.done, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PayloadValue, TaskLabel};
    use crate::schema::example_schema;

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let r = Record::new()
                    .with_payload("query", PayloadValue::Singleton(format!("query number {i}")))
                    .with_label(
                        "Intent",
                        if i % 2 == 0 { "weak1" } else { "weak2" },
                        TaskLabel::MulticlassOne(if i % 2 == 0 { "Age" } else { "Height" }.into()),
                    )
                    .with_tag(if i % 10 == 0 { "test" } else { "train" });
                if i % 5 == 0 {
                    r.with_slice("hard")
                } else {
                    r
                }
            })
            .collect()
    }

    fn store(n: usize, shards: usize) -> ShardedStore {
        ShardedStore::from_records(example_schema(), &records(n), shards)
    }

    #[test]
    fn shards_are_contiguous_and_balanced() {
        let s = store(100, 4);
        assert_eq!(s.num_shards(), 4);
        assert_eq!(s.len(), 100);
        for shard in 0..4 {
            assert!(s.shard(shard).len() >= 15, "shard {shard}: {}", s.shard(shard).len());
        }
        // Global order is preserved across shard boundaries.
        let rs = records(100);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&s.get(i).unwrap(), r);
            assert_eq!(&s.view(i).unwrap().to_record(), r);
        }
        assert!(s.get(100).is_err());
        assert_eq!(s.shard_checksums().len(), 4);
        s.verify().unwrap();
    }

    #[test]
    fn index_answers_tag_and_source_queries() {
        let s = store(50, 3);
        let idx = s.index();
        assert_eq!(idx.num_rows(), 50);
        assert_eq!(idx.test_rows(), &[0, 10, 20, 30, 40]);
        assert_eq!(idx.train_rows().len(), 45);
        assert_eq!(idx.slice_rows("hard"), &[0, 5, 10, 15, 20, 25, 30, 35, 40, 45]);
        assert_eq!(idx.slice_names(), vec!["hard".to_string()]);
        assert_eq!(idx.sources_for_task("Intent"), vec!["weak1".to_string(), "weak2".into()]);
        assert!(idx.sources_for_task("POS").is_empty());
        assert_eq!(idx.supervised_tasks().collect::<Vec<_>>(), vec!["Intent"]);
    }

    #[test]
    fn par_scan_merges_in_shard_order() {
        for workers in [1, 3] {
            let s = store(60, 5).with_scan_workers(workers);
            let partials = s
                .par_scan(|scan| {
                    let mut rows = Vec::new();
                    for (row, view) in scan.views() {
                        let view = view?;
                        if view.has_tag("train") {
                            rows.push(row);
                        }
                    }
                    Ok(rows)
                })
                .unwrap();
            assert_eq!(partials.len(), 5);
            let all: Vec<usize> = partials.into_iter().flatten().collect();
            let expect: Vec<usize> = (0..60).filter(|i| i % 10 != 0).collect();
            assert_eq!(all, expect, "workers={workers}");
        }
    }

    #[test]
    fn par_scan_rows_visits_only_selected() {
        let s = store(40, 4).with_scan_workers(2);
        let rows: Vec<u32> = s.index().test_rows().to_vec();
        let partials = s
            .par_scan_rows(&rows, |scan| {
                Ok(scan.records().map(|(g, r)| (g, r.unwrap())).collect::<Vec<_>>())
            })
            .unwrap();
        let seen: Vec<usize> = partials.iter().flatten().map(|(g, _)| *g).collect();
        assert_eq!(seen, vec![0, 10, 20, 30]);
        for (g, r) in partials.into_iter().flatten() {
            assert!(r.has_tag("test"), "row {g}");
        }
    }

    #[test]
    fn dataset_view_roundtrips() {
        let s = store(30, 3);
        let ds = s.dataset_view().unwrap();
        assert_eq!(ds.records(), &records(30)[..]);
    }

    #[test]
    fn builder_streams_and_matches_from_records() {
        let rs = records(80);
        let mut b = ShardedStoreBuilder::with_shard_bytes(example_schema(), 512);
        for r in &rs {
            b.push_unchecked(r);
        }
        let s = b.seal();
        assert!(s.num_shards() > 1, "target bytes should split shards");
        assert_eq!(s.len(), 80);
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&s.get(i).unwrap(), r);
        }
        assert_eq!(s.index().train_rows().len(), 72);
        s.verify().unwrap();
    }

    #[test]
    fn builder_validates_on_push() {
        let mut b = ShardedStoreBuilder::new(example_schema());
        let bad =
            Record::new().with_label("Intent", "w", TaskLabel::MulticlassOne("NotAClass".into()));
        assert!(b.push(bad).is_err());
        assert!(b.is_empty());
        b.push(records(1).pop().unwrap()).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn empty_store_is_one_empty_shard() {
        let s = store(0, 4);
        assert!(s.is_empty());
        assert_eq!(s.num_shards(), 1);
        assert_eq!(s.scan().count(), 0);
        assert!(s.par_scan(|scan| Ok(scan.len())).unwrap().iter().sum::<usize>() == 0);
        let b = ShardedStoreBuilder::new(example_schema());
        assert_eq!(b.seal().len(), 0);
    }

    #[test]
    fn ingest_jsonl_streams_and_validates() {
        let rs = records(20);
        let jsonl: String = rs.iter().map(|r| format!("{}\n", r.to_json())).collect();
        let mut b = ShardedStoreBuilder::with_shard_bytes(example_schema(), 256);
        assert_eq!(b.ingest_jsonl(jsonl.as_bytes()).unwrap(), 20);
        let s = b.seal();
        assert_eq!(s.dataset_view().unwrap().records(), &rs[..]);

        // A malformed line surfaces with its line number.
        let mut b = ShardedStoreBuilder::new(example_schema());
        let bad = format!("{}\n{{\"payloads\": {{\"query\"\n", rs[0].to_json());
        let err = b.ingest_jsonl(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn from_files_matches_eager_seal() {
        let rs = records(30);
        let dir = std::env::temp_dir().join(format!("overton-two-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema.json"), example_schema().to_json()).unwrap();
        let jsonl: String = rs.iter().map(|r| format!("{}\n", r.to_json())).collect();
        std::fs::write(dir.join("data.jsonl"), jsonl).unwrap();
        let s = ShardedStore::from_files(dir.join("schema.json"), dir.join("data.jsonl")).unwrap();
        assert_eq!(s.len(), 30);
        assert_eq!(s.dataset_view().unwrap().records(), &rs[..]);
        assert_eq!(s.index().train_rows(), store(30, 2).index().train_rows());

        // Data errors name the file and the line.
        std::fs::write(dir.join("data.jsonl"), "{\"tasks\": {\"Nope\": {\"w\": 1}}}\n").unwrap();
        let err =
            ShardedStore::from_files(dir.join("schema.json"), dir.join("data.jsonl")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("data.jsonl") && msg.contains("line 1"), "{msg}");
        assert!(msg.contains("unknown task"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_roundtrip_and_corruption() {
        let s = store(25, 3);
        let dir = std::env::temp_dir().join(format!("overton-sharded-{}", std::process::id()));
        s.write_dir(&dir).unwrap();
        let back = ShardedStore::read_dir(&dir).unwrap();
        assert_eq!(back.len(), 25);
        assert_eq!(back.shard_checksums(), s.shard_checksums());
        assert_eq!(back.index().train_rows(), s.index().train_rows());
        assert_eq!(back.dataset_view().unwrap().records(), s.dataset_view().unwrap().records());

        // Flip one byte in a shard file: reading must surface Corrupt.
        let path = dir.join("shard-0001.ovrs");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        let err = ShardedStore::read_dir(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_mid_sequence_names_the_path() {
        let s = store(40, 3);
        let dir =
            std::env::temp_dir().join(format!("overton-missing-shard-{}", std::process::id()));
        s.write_dir(&dir).unwrap();
        std::fs::remove_file(dir.join("shard-0001.ovrs")).unwrap();
        let err = ShardedStore::read_dir(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
        assert!(msg.contains("shard-0001.ovrs"), "must name the missing file: {msg}");
        assert!(msg.contains("missing"), "{msg}");
        assert!(msg.contains("1 of 3"), "must say where in the sequence: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_shard_format_versions_name_the_path() {
        let s = store(40, 3);
        let dir = std::env::temp_dir().join(format!("overton-mixed-ver-{}", std::process::id()));
        s.write_dir(&dir).unwrap();
        // Rewrite one shard's header as format version 1: the version
        // check fires before the checksum check, so the error is about the
        // version — and it must say which file is the odd one out.
        let path = dir.join("shard-0002.ovrs");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let err = ShardedStore::read_dir(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
        assert!(msg.contains("shard-0002.ovrs"), "must name the offending file: {msg}");
        assert!(msg.contains("unsupported version 1"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_shifted_appends_sorted_rows_and_sources() {
        let a = store(20, 2);
        let b = store(10, 1);
        let mut merged = a.index().clone();
        merged.merge_shifted(b.index(), 20);
        assert_eq!(merged.num_rows(), 30);
        assert_eq!(merged.test_rows(), &[0, 10, 20]);
        assert_eq!(merged.slice_rows("hard"), &[0, 5, 10, 15, 20, 25]);
        assert!(merged.rows(TAG_TRAIN).windows(2).all(|w| w[0] < w[1]));
        assert_eq!(merged.sources_for_task("Intent"), vec!["weak1".to_string(), "weak2".into()]);
    }

    #[test]
    fn corrupt_manifest_or_schema_errors() {
        let s = store(5, 2);
        let dir = std::env::temp_dir().join(format!("overton-manifest-{}", std::process::id()));
        s.write_dir(&dir).unwrap();
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let schema_json = std::fs::read_to_string(dir.join("schema.json")).unwrap();

        // An absurd shard count must error, not abort on allocation.
        std::fs::write(
            dir.join("manifest.json"),
            "{\"version\": 1, \"shards\": 9000000000000000000}\n",
        )
        .unwrap();
        assert!(ShardedStore::read_dir(&dir).is_err());

        // A single corrupted digit in the shard count: the manifest
        // self-checksum catches it.
        std::fs::write(
            dir.join("manifest.json"),
            manifest.replace("\"shards\": 2", "\"shards\": 1"),
        )
        .unwrap();
        let err = ShardedStore::read_dir(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
        std::fs::write(dir.join("manifest.json"), &manifest).unwrap();
        ShardedStore::read_dir(&dir).unwrap();

        // A flipped byte inside schema.json: caught by its checksum.
        let mut bytes = schema_json.into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(dir.join("schema.json"), bytes).unwrap();
        let err = ShardedStore::read_dir(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }
}

//! A schema plus its records: the "data file" an engineer edits.
//!
//! The paper's interface is deliberately file-shaped: the data file is
//! JSON-lines so it stays human-readable and greppable (`jq`-able). All
//! quality work — adding labeling functions, correcting labels, defining
//! slices — happens by editing this file, never model code.

use crate::error::{Result, StoreError};
use crate::record::{Record, SLICE_PREFIX, TAG_DEV, TAG_TEST, TAG_TRAIN};
use crate::rowstore::{ShardedStore, StoreIndex};
use crate::schema::Schema;
use crate::tags::TagIndex;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

/// The lazily-built query index a [`Dataset`] caches: the tag index plus
/// the per-task supervision source names. Rebuilt on first query after any
/// mutation.
#[derive(Debug, Clone)]
struct DatasetIndex {
    tags: TagIndex,
    sources: BTreeMap<String, Vec<String>>,
}

impl DatasetIndex {
    fn build(records: &[Record]) -> Self {
        // The task → non-gold-source rule is StoreIndex's (one collector
        // for both the eager and sealed paths).
        let mut store_index = StoreIndex::default();
        for (i, record) in records.iter().enumerate() {
            store_index.note_record(i as u32, record);
        }
        Self { tags: TagIndex::from_records(records), sources: store_index.into_sources() }
    }
}

/// An in-memory dataset: a [`Schema`] and the [`Record`]s conforming to it.
///
/// This is the *editable builder* side of the data layer: records are
/// validated as they enter, and engineers refine labels in place. Tag,
/// slice and source queries are answered from a cached index that is
/// invalidated on mutation, so repeated `tagged()`/`in_slice()` calls cost
/// an index lookup instead of a full scan. For the scan-heavy build loop,
/// [`Dataset::seal`] freezes the records into a [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    records: Vec<Record>,
    index: OnceLock<DatasetIndex>,
}

impl Dataset {
    /// Creates an empty dataset over a schema.
    pub fn new(schema: Schema) -> Self {
        Self { schema, records: Vec::new(), index: OnceLock::new() }
    }

    fn index(&self) -> &DatasetIndex {
        self.index.get_or_init(|| DatasetIndex::build(&self.records))
    }

    /// Seals the dataset into a [`ShardedStore`] with one shard per
    /// available core (at least two).
    pub fn seal(&self) -> ShardedStore {
        self.seal_shards(ShardedStore::default_shards())
    }

    /// Seals the dataset into a [`ShardedStore`] with (up to) `n_shards`
    /// byte-balanced shards.
    pub fn seal_shards(&self, n_shards: usize) -> ShardedStore {
        ShardedStore::from_records(self.schema.clone(), &self.records, n_shards)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Validates, normalizes and appends a record.
    pub fn push(&mut self, mut record: Record) -> Result<()> {
        record.normalize_labels(&self.schema);
        record.validate(&self.schema)?;
        self.push_unchecked(record);
        Ok(())
    }

    /// Appends a record without validation (for trusted generators).
    pub fn push_unchecked(&mut self, record: Record) {
        self.index.take();
        self.records.push(record);
    }

    /// Record by index.
    pub fn get(&self, idx: usize) -> Option<&Record> {
        self.records.get(idx)
    }

    /// Mutable record access (engineers "refine labels in that slice").
    /// Invalidates the cached query index.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Record> {
        self.index.take();
        self.records.get_mut(idx)
    }

    /// Indices of records carrying `tag` (a cached-index lookup).
    pub fn tagged(&self, tag: &str) -> Vec<usize> {
        self.index().tags.rows(tag).iter().map(|&i| i as usize).collect()
    }

    /// Indices of records in the named slice (a cached-index lookup).
    pub fn in_slice(&self, slice: &str) -> Vec<usize> {
        self.tagged(&format!("{SLICE_PREFIX}{slice}"))
    }

    /// The cached [`TagIndex`] over the current records.
    pub fn tag_index(&self) -> &TagIndex {
        &self.index().tags
    }

    /// All slice names present in the data, sorted.
    pub fn slice_names(&self) -> Vec<String> {
        self.index()
            .tags
            .tags()
            .filter_map(|t| t.strip_prefix(SLICE_PREFIX))
            .map(str::to_string)
            .collect()
    }

    /// All tags present in the data, sorted.
    pub fn tag_names(&self) -> Vec<String> {
        self.index().tags.tags().map(str::to_string).collect()
    }

    /// Indices of the train split.
    pub fn train_indices(&self) -> Vec<usize> {
        self.tagged(TAG_TRAIN)
    }

    /// Indices of the dev split.
    pub fn dev_indices(&self) -> Vec<usize> {
        self.tagged(TAG_DEV)
    }

    /// Indices of the test split.
    pub fn test_indices(&self) -> Vec<usize> {
        self.tagged(TAG_TEST)
    }

    /// Names of all supervision sources appearing for `task`, sorted,
    /// excluding gold (a cached-index lookup).
    pub fn sources_for_task(&self, task: &str) -> Vec<String> {
        self.index().sources.get(task).cloned().unwrap_or_default()
    }

    /// Reads a dataset from a JSON-lines reader (one record per line; blank
    /// lines are skipped). Every record is normalized and validated.
    pub fn from_jsonl_reader(schema: Schema, reader: impl Read) -> Result<Self> {
        let mut ds = Dataset::new(schema);
        let mut line = String::new();
        let mut reader = BufReader::new(reader);
        let mut lineno = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            lineno += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let record = Record::from_json(trimmed)
                .map_err(|e| StoreError::Validation(format!("line {lineno}: {e}")))?;
            ds.push(record).map_err(|e| StoreError::Validation(format!("line {lineno}: {e}")))?;
        }
        Ok(ds)
    }

    /// Reads a dataset from a JSON-lines file.
    pub fn from_jsonl_file(schema: Schema, path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        Self::from_jsonl_reader(schema, file)
    }

    /// Writes the records as JSON-lines.
    pub fn write_jsonl(&self, writer: impl Write) -> Result<()> {
        let mut w = BufWriter::new(writer);
        for r in &self.records {
            writeln!(w, "{}", r.to_json())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Writes the records to a JSON-lines file.
    pub fn write_jsonl_file(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_jsonl(file)
    }

    /// Splits off a new dataset containing only the given indices (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            records: indices.iter().map(|&i| self.records[i].clone()).collect(),
            index: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PayloadValue, TaskLabel};
    use crate::schema::example_schema;

    fn tiny_dataset() -> Dataset {
        let mut ds = Dataset::new(example_schema());
        for (i, intent) in ["Height", "Age", "Height"].iter().enumerate() {
            let r = Record::new()
                .with_payload("query", PayloadValue::Singleton(format!("query {i}")))
                .with_label("Intent", "weak1", TaskLabel::MulticlassOne(intent.to_string()))
                .with_tag(if i < 2 { "train" } else { "test" });
            ds.push(if i == 0 { r.with_slice("nutrition") } else { r }).unwrap();
        }
        ds
    }

    #[test]
    fn push_validates() {
        let mut ds = Dataset::new(example_schema());
        let bad =
            Record::new().with_label("Intent", "w", TaskLabel::MulticlassOne("NotAClass".into()));
        assert!(ds.push(bad).is_err());
        assert!(ds.is_empty());
    }

    #[test]
    fn splits_and_tags() {
        let ds = tiny_dataset();
        assert_eq!(ds.train_indices(), vec![0, 1]);
        assert_eq!(ds.test_indices(), vec![2]);
        assert_eq!(ds.dev_indices(), Vec::<usize>::new());
        assert_eq!(ds.in_slice("nutrition"), vec![0]);
        assert_eq!(ds.slice_names(), vec!["nutrition".to_string()]);
        assert!(ds.tag_names().contains(&"train".to_string()));
    }

    #[test]
    fn jsonl_roundtrip() {
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let back = Dataset::from_jsonl_reader(example_schema(), buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.records(), ds.records());
    }

    #[test]
    fn jsonl_reports_line_numbers() {
        let text = "{\"payloads\": {}}\nnot json\n";
        let err = Dataset::from_jsonl_reader(example_schema(), text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n{\"payloads\": {}}\n\n";
        let ds = Dataset::from_jsonl_reader(example_schema(), text.as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn sources_for_task_sorted_unique() {
        let mut ds = tiny_dataset();
        let r = Record::new()
            .with_label("Intent", "weak2", TaskLabel::MulticlassOne("Age".into()))
            .with_label("Intent", "gold", TaskLabel::MulticlassOne("Age".into()));
        ds.push(r).unwrap();
        assert_eq!(ds.sources_for_task("Intent"), vec!["weak1".to_string(), "weak2".to_string()]);
    }

    #[test]
    fn subset_clones_selected() {
        let ds = tiny_dataset();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert!(sub.records()[0].has_tag("test"));
        assert!(sub.records()[1].in_slice("nutrition"));
    }

    #[test]
    fn cached_index_invalidated_on_push_and_get_mut() {
        let mut ds = tiny_dataset();
        assert_eq!(ds.train_indices(), vec![0, 1]);
        // Push after a query: the new record must show up.
        ds.push(
            Record::new()
                .with_payload("query", PayloadValue::Singleton("late".into()))
                .with_tag("train"),
        )
        .unwrap();
        assert_eq!(ds.train_indices(), vec![0, 1, 3]);
        // Mutation through get_mut invalidates too.
        assert_eq!(ds.in_slice("nutrition"), vec![0]);
        ds.get_mut(1).unwrap().tags.insert("slice:nutrition".into());
        assert_eq!(ds.in_slice("nutrition"), vec![0, 1]);
        assert!(ds.sources_for_task("Intent").contains(&"weak1".to_string()));
        assert_eq!(ds.tag_index().count("train"), 3);
    }

    #[test]
    fn seal_roundtrips_through_sharded_store() {
        let ds = tiny_dataset();
        let store = ds.seal_shards(2);
        assert_eq!(store.len(), ds.len());
        assert_eq!(store.index().train_rows(), &[0, 1]);
        assert_eq!(store.dataset_view().unwrap().records(), ds.records());
        assert_eq!(store.schema(), ds.schema());
    }

    #[test]
    fn file_roundtrip() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("overton-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.jsonl");
        ds.write_jsonl_file(&path).unwrap();
        let back = Dataset::from_jsonl_file(example_schema(), &path).unwrap();
        assert_eq!(back.records(), ds.records());
        std::fs::remove_file(path).ok();
    }
}

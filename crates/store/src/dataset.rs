//! A schema plus its records: the "data file" an engineer edits.
//!
//! The paper's interface is deliberately file-shaped: the data file is
//! JSON-lines so it stays human-readable and greppable (`jq`-able). All
//! quality work — adding labeling functions, correcting labels, defining
//! slices — happens by editing this file, never model code.

use crate::error::{Result, StoreError};
use crate::record::{Record, TAG_DEV, TAG_TEST, TAG_TRAIN};
use crate::schema::Schema;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// An in-memory dataset: a [`Schema`] and the [`Record`]s conforming to it.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    records: Vec<Record>,
}

impl Dataset {
    /// Creates an empty dataset over a schema.
    pub fn new(schema: Schema) -> Self {
        Self { schema, records: Vec::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Validates, normalizes and appends a record.
    pub fn push(&mut self, mut record: Record) -> Result<()> {
        record.normalize_labels(&self.schema);
        record.validate(&self.schema)?;
        self.records.push(record);
        Ok(())
    }

    /// Appends a record without validation (for trusted generators).
    pub fn push_unchecked(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Record by index.
    pub fn get(&self, idx: usize) -> Option<&Record> {
        self.records.get(idx)
    }

    /// Mutable record access (engineers "refine labels in that slice").
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Record> {
        self.records.get_mut(idx)
    }

    /// Indices of records carrying `tag`.
    pub fn tagged(&self, tag: &str) -> Vec<usize> {
        self.records.iter().enumerate().filter(|(_, r)| r.has_tag(tag)).map(|(i, _)| i).collect()
    }

    /// Indices of records in the named slice.
    pub fn in_slice(&self, slice: &str) -> Vec<usize> {
        self.records.iter().enumerate().filter(|(_, r)| r.in_slice(slice)).map(|(i, _)| i).collect()
    }

    /// All slice names present in the data, sorted.
    pub fn slice_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.records.iter().flat_map(|r| r.slices().map(str::to_string)).collect();
        names.sort();
        names.dedup();
        names
    }

    /// All tags present in the data, sorted.
    pub fn tag_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.records.iter().flat_map(|r| r.tags.iter().cloned()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Indices of the train split.
    pub fn train_indices(&self) -> Vec<usize> {
        self.tagged(TAG_TRAIN)
    }

    /// Indices of the dev split.
    pub fn dev_indices(&self) -> Vec<usize> {
        self.tagged(TAG_DEV)
    }

    /// Indices of the test split.
    pub fn test_indices(&self) -> Vec<usize> {
        self.tagged(TAG_TEST)
    }

    /// Names of all supervision sources appearing for `task`, sorted,
    /// excluding gold.
    pub fn sources_for_task(&self, task: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .records
            .iter()
            .flat_map(|r| r.weak_sources(task).map(|(s, _)| s.to_string()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Reads a dataset from a JSON-lines reader (one record per line; blank
    /// lines are skipped). Every record is normalized and validated.
    pub fn from_jsonl_reader(schema: Schema, reader: impl Read) -> Result<Self> {
        let mut ds = Dataset::new(schema);
        let mut line = String::new();
        let mut reader = BufReader::new(reader);
        let mut lineno = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            lineno += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let record = Record::from_json(trimmed)
                .map_err(|e| StoreError::Validation(format!("line {lineno}: {e}")))?;
            ds.push(record).map_err(|e| StoreError::Validation(format!("line {lineno}: {e}")))?;
        }
        Ok(ds)
    }

    /// Reads a dataset from a JSON-lines file.
    pub fn from_jsonl_file(schema: Schema, path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        Self::from_jsonl_reader(schema, file)
    }

    /// Writes the records as JSON-lines.
    pub fn write_jsonl(&self, writer: impl Write) -> Result<()> {
        let mut w = BufWriter::new(writer);
        for r in &self.records {
            writeln!(w, "{}", r.to_json())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Writes the records to a JSON-lines file.
    pub fn write_jsonl_file(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_jsonl(file)
    }

    /// Splits off a new dataset containing only the given indices (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            records: indices.iter().map(|&i| self.records[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PayloadValue, TaskLabel};
    use crate::schema::example_schema;

    fn tiny_dataset() -> Dataset {
        let mut ds = Dataset::new(example_schema());
        for (i, intent) in ["Height", "Age", "Height"].iter().enumerate() {
            let r = Record::new()
                .with_payload("query", PayloadValue::Singleton(format!("query {i}")))
                .with_label("Intent", "weak1", TaskLabel::MulticlassOne(intent.to_string()))
                .with_tag(if i < 2 { "train" } else { "test" });
            ds.push(if i == 0 { r.with_slice("nutrition") } else { r }).unwrap();
        }
        ds
    }

    #[test]
    fn push_validates() {
        let mut ds = Dataset::new(example_schema());
        let bad =
            Record::new().with_label("Intent", "w", TaskLabel::MulticlassOne("NotAClass".into()));
        assert!(ds.push(bad).is_err());
        assert!(ds.is_empty());
    }

    #[test]
    fn splits_and_tags() {
        let ds = tiny_dataset();
        assert_eq!(ds.train_indices(), vec![0, 1]);
        assert_eq!(ds.test_indices(), vec![2]);
        assert_eq!(ds.dev_indices(), Vec::<usize>::new());
        assert_eq!(ds.in_slice("nutrition"), vec![0]);
        assert_eq!(ds.slice_names(), vec!["nutrition".to_string()]);
        assert!(ds.tag_names().contains(&"train".to_string()));
    }

    #[test]
    fn jsonl_roundtrip() {
        let ds = tiny_dataset();
        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let back = Dataset::from_jsonl_reader(example_schema(), buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.records(), ds.records());
    }

    #[test]
    fn jsonl_reports_line_numbers() {
        let text = "{\"payloads\": {}}\nnot json\n";
        let err = Dataset::from_jsonl_reader(example_schema(), text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n{\"payloads\": {}}\n\n";
        let ds = Dataset::from_jsonl_reader(example_schema(), text.as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn sources_for_task_sorted_unique() {
        let mut ds = tiny_dataset();
        let r = Record::new()
            .with_label("Intent", "weak2", TaskLabel::MulticlassOne("Age".into()))
            .with_label("Intent", "gold", TaskLabel::MulticlassOne("Age".into()));
        ds.push(r).unwrap();
        assert_eq!(ds.sources_for_task("Intent"), vec!["weak1".to_string(), "weak2".to_string()]);
    }

    #[test]
    fn subset_clones_selected() {
        let ds = tiny_dataset();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert!(sub.records()[0].has_tag("test"));
        assert!(sub.records()[1].in_slice("nutrition"));
    }

    #[test]
    fn file_roundtrip() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("overton-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.jsonl");
        ds.write_jsonl_file(&path).unwrap();
        let back = Dataset::from_jsonl_file(example_schema(), &path).unwrap();
        assert_eq!(back.records(), ds.records());
        std::fs::remove_file(path).ok();
    }
}

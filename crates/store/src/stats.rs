//! Dataset statistics: the first thing an engineer looks at when handed a
//! data file — split sizes, per-task supervision coverage, per-source vote
//! counts, slice sizes.

use crate::dataset::Dataset;
use crate::record::{GOLD_SOURCE, TAG_DEV, TAG_TEST, TAG_TRAIN};
use std::collections::BTreeMap;
use std::fmt;

/// Supervision coverage for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskStats {
    /// Records with at least one weak source vote.
    pub weakly_supervised: usize,
    /// Records with a gold label.
    pub gold_labeled: usize,
    /// Vote counts per source (excluding gold).
    pub source_votes: BTreeMap<String, usize>,
}

/// A full dataset summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Total records.
    pub records: usize,
    /// Train/dev/test split sizes (records may be untagged).
    pub train: usize,
    /// Dev records.
    pub dev: usize,
    /// Test records.
    pub test: usize,
    /// Per-task supervision coverage.
    pub tasks: BTreeMap<String, TaskStats>,
    /// Records per slice.
    pub slices: BTreeMap<String, usize>,
}

impl DatasetStats {
    /// Computes statistics over a dataset.
    pub fn compute(dataset: &Dataset) -> Self {
        let mut tasks: BTreeMap<String, TaskStats> = dataset
            .schema()
            .tasks
            .keys()
            .map(|t| {
                (
                    t.clone(),
                    TaskStats {
                        weakly_supervised: 0,
                        gold_labeled: 0,
                        source_votes: BTreeMap::new(),
                    },
                )
            })
            .collect();
        let mut slices: BTreeMap<String, usize> = BTreeMap::new();
        let (mut train, mut dev, mut test) = (0, 0, 0);
        for record in dataset.records() {
            match record.split() {
                Some(TAG_TRAIN) => train += 1,
                Some(TAG_DEV) => dev += 1,
                Some(TAG_TEST) => test += 1,
                _ => {}
            }
            for slice in record.slices() {
                *slices.entry(slice.to_string()).or_default() += 1;
            }
            for (task, sources) in &record.tasks {
                let Some(stats) = tasks.get_mut(task) else { continue };
                let mut any_weak = false;
                for source in sources.keys() {
                    if source == GOLD_SOURCE {
                        stats.gold_labeled += 1;
                    } else {
                        any_weak = true;
                        *stats.source_votes.entry(source.clone()).or_default() += 1;
                    }
                }
                if any_weak {
                    stats.weakly_supervised += 1;
                }
            }
        }
        Self { records: dataset.len(), train, dev, test, tasks, slices }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} records  (train {} / dev {} / test {})",
            self.records, self.train, self.dev, self.test
        )?;
        for (task, stats) in &self.tasks {
            writeln!(
                f,
                "task {task}: {} weakly supervised, {} gold",
                stats.weakly_supervised, stats.gold_labeled
            )?;
            for (source, votes) in &stats.source_votes {
                writeln!(f, "    {source}: {votes} votes")?;
            }
        }
        for (slice, count) in &self.slices {
            writeln!(f, "slice:{slice}: {count} records")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PayloadValue, Record, TaskLabel};
    use crate::schema::example_schema;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new(example_schema());
        let mk = |i: usize| {
            Record::new().with_payload("query", PayloadValue::Singleton(format!("q{i}")))
        };
        ds.push(
            mk(0)
                .with_tag("train")
                .with_slice("hard")
                .with_label("Intent", "w1", TaskLabel::MulticlassOne("Height".into()))
                .with_label("Intent", "w2", TaskLabel::MulticlassOne("Age".into())),
        )
        .unwrap();
        ds.push(
            mk(1)
                .with_tag("train")
                .with_label("Intent", "w1", TaskLabel::MulticlassOne("Height".into()))
                .with_label("Intent", "gold", TaskLabel::MulticlassOne("Height".into())),
        )
        .unwrap();
        ds.push(mk(2).with_tag("test").with_label(
            "Intent",
            "gold",
            TaskLabel::MulticlassOne("Age".into()),
        ))
        .unwrap();
        ds
    }

    #[test]
    fn split_and_slice_counts() {
        let stats = DatasetStats::compute(&dataset());
        assert_eq!(stats.records, 3);
        assert_eq!(stats.train, 2);
        assert_eq!(stats.test, 1);
        assert_eq!(stats.dev, 0);
        assert_eq!(stats.slices["hard"], 1);
    }

    #[test]
    fn task_supervision_counts() {
        let stats = DatasetStats::compute(&dataset());
        let intent = &stats.tasks["Intent"];
        assert_eq!(intent.weakly_supervised, 2);
        assert_eq!(intent.gold_labeled, 2);
        assert_eq!(intent.source_votes["w1"], 2);
        assert_eq!(intent.source_votes["w2"], 1);
        // Tasks without supervision exist with zero counts.
        assert_eq!(stats.tasks["POS"].weakly_supervised, 0);
    }

    #[test]
    fn display_renders() {
        let text = DatasetStats::compute(&dataset()).to_string();
        assert!(text.contains("3 records"));
        assert!(text.contains("task Intent: 2 weakly supervised, 2 gold"));
        assert!(text.contains("slice:hard: 1 records"));
    }
}

//! Data records: one JSON object per example (paper §2.2, Figure 2a).
//!
//! A record carries payload values, per-task supervision from many sources
//! (possibly conflicting, possibly missing), and tags. Tags prefixed with
//! `slice:` are slices — subsets the engineer monitors and that receive
//! extra model capacity.

use crate::error::{Result, StoreError};
use crate::schema::{PayloadKind, Schema, TaskKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The reserved source name for curated gold labels (used for dev/test
/// evaluation, never combined by the label model).
pub const GOLD_SOURCE: &str = "gold";

/// Tag marking an example as training data.
pub const TAG_TRAIN: &str = "train";
/// Tag marking an example as development data.
pub const TAG_DEV: &str = "dev";
/// Tag marking an example as test data.
pub const TAG_TEST: &str = "test";
/// Tag marking an example as live serving traffic (not part of any
/// training split; produced by the traffic generator and the serving
/// runtime's shadow/canary logs).
pub const TAG_LIVE: &str = "live";
/// Prefix identifying a tag as a slice.
pub const SLICE_PREFIX: &str = "slice:";

/// A member of a `Set` payload: an external id plus the token span it
/// covers in the payload's `range` sequence (half-open `[start, end)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetElement {
    /// External identifier (e.g. a knowledge-base entity id).
    pub id: String,
    /// Half-open token span in the range payload.
    pub span: (usize, usize),
}

/// A payload's value in one record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum PayloadValue {
    /// Value of a singleton payload (raw text).
    Singleton(String),
    /// Value of a sequence payload (tokens).
    Sequence(Vec<String>),
    /// Value of a set payload (candidates with spans).
    Set(Vec<SetElement>),
}

impl PayloadValue {
    /// Number of elements the payload contributes (1 / seq len / set size).
    pub fn element_count(&self) -> usize {
        match self {
            PayloadValue::Singleton(_) => 1,
            PayloadValue::Sequence(items) => items.len(),
            PayloadValue::Set(items) => items.len(),
        }
    }
}

/// One source's label for one task on one record.
///
/// The granularity must match the task's payload: singleton payloads take
/// the `*One` forms, sequence payloads take the `*Seq` forms (one entry per
/// token), and select tasks take an element index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum TaskLabel {
    /// Single class name (multiclass over a singleton payload).
    MulticlassOne(String),
    /// Per-element class names (multiclass over a sequence payload).
    MulticlassSeq(Vec<String>),
    /// Set bits by label name (bitvector over a singleton payload).
    BitvectorOne(Vec<String>),
    /// Per-element set bits (bitvector over a sequence payload).
    BitvectorSeq(Vec<Vec<String>>),
    /// Index of the chosen element (select over a set payload).
    Select(usize),
}

/// A single example conforming to a [`Schema`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Record {
    /// Payload values by payload name. Payloads may be absent (`null` in the
    /// paper's format) — they simply don't contribute.
    #[serde(default)]
    pub payloads: BTreeMap<String, PayloadValue>,
    /// Supervision: task name → source name → label.
    #[serde(default)]
    pub tasks: BTreeMap<String, BTreeMap<String, TaskLabel>>,
    /// Tags (`train`/`dev`/`test`, user tags, and `slice:...` tags).
    #[serde(default)]
    pub tags: BTreeSet<String>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a payload value.
    pub fn with_payload(mut self, name: &str, value: PayloadValue) -> Self {
        self.payloads.insert(name.into(), value);
        self
    }

    /// Adds one source's label for a task.
    pub fn with_label(mut self, task: &str, source: &str, label: TaskLabel) -> Self {
        self.tasks.entry(task.into()).or_default().insert(source.into(), label);
        self
    }

    /// Adds a tag.
    pub fn with_tag(mut self, tag: &str) -> Self {
        self.tags.insert(tag.into());
        self
    }

    /// Marks the record as belonging to a slice (adds a `slice:` tag).
    pub fn with_slice(self, slice: &str) -> Self {
        self.with_tag(&format!("{SLICE_PREFIX}{slice}"))
    }

    /// True if the record carries the given tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(tag)
    }

    /// True if the record is in the given slice.
    pub fn in_slice(&self, slice: &str) -> bool {
        self.tags.contains(&format!("{SLICE_PREFIX}{slice}"))
    }

    /// Names of all slices this record belongs to.
    pub fn slices(&self) -> impl Iterator<Item = &str> {
        self.tags.iter().filter_map(|t| t.strip_prefix(SLICE_PREFIX))
    }

    /// The train/dev/test split this record belongs to, if tagged.
    pub fn split(&self) -> Option<&'static str> {
        if self.has_tag(TAG_TRAIN) {
            Some(TAG_TRAIN)
        } else if self.has_tag(TAG_DEV) {
            Some(TAG_DEV)
        } else if self.has_tag(TAG_TEST) {
            Some(TAG_TEST)
        } else {
            None
        }
    }

    /// The gold label for a task, if present.
    pub fn gold(&self, task: &str) -> Option<&TaskLabel> {
        self.tasks.get(task)?.get(GOLD_SOURCE)
    }

    /// Non-gold supervision sources for a task.
    pub fn weak_sources(&self, task: &str) -> impl Iterator<Item = (&str, &TaskLabel)> {
        self.tasks
            .get(task)
            .into_iter()
            .flat_map(|m| m.iter())
            .filter(|(s, _)| s.as_str() != GOLD_SOURCE)
            .map(|(s, l)| (s.as_str(), l))
    }

    /// Parses one JSON line.
    pub fn from_json(text: &str) -> Result<Self> {
        Ok(serde_json::from_str(text)?)
    }

    /// Serializes to a single JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("record serialization cannot fail")
    }

    /// Canonicalizes label variants that are ambiguous in JSON.
    ///
    /// `TaskLabel` is an untagged union, so a JSON array of strings parses
    /// as [`TaskLabel::MulticlassSeq`] even when the task is a bitvector
    /// over a singleton payload (where it means "these bits are set"). This
    /// rewrites such labels into their canonical variant using the schema.
    /// Call after parsing and before [`validate`](Self::validate);
    /// [`Dataset`](crate::dataset::Dataset) does this automatically.
    pub fn normalize_labels(&mut self, schema: &Schema) {
        for (task_name, sources) in &mut self.tasks {
            let Some(task) = schema.tasks.get(task_name) else { continue };
            let singleton_payload = matches!(
                schema.payloads.get(&task.payload).map(|p| &p.kind),
                Some(PayloadKind::Singleton)
            );
            if !matches!(task.kind, TaskKind::Bitvector { .. }) || !singleton_payload {
                continue;
            }
            for label in sources.values_mut() {
                match label {
                    TaskLabel::MulticlassSeq(bits) => {
                        *label = TaskLabel::BitvectorOne(std::mem::take(bits));
                    }
                    TaskLabel::MulticlassOne(bit) => {
                        *label = TaskLabel::BitvectorOne(vec![std::mem::take(bit)]);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Validates the record against a schema: payload shapes, label
    /// granularity, label vocabulary membership, span bounds and select
    /// indices.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for (name, value) in &self.payloads {
            let def = schema.payloads.get(name).ok_or_else(|| {
                StoreError::Validation(format!("record has unknown payload '{name}'"))
            })?;
            match (&def.kind, value) {
                (PayloadKind::Singleton, PayloadValue::Singleton(_)) => {}
                (PayloadKind::Sequence { max_length }, PayloadValue::Sequence(items)) => {
                    if items.len() > *max_length {
                        return Err(StoreError::Validation(format!(
                            "payload '{name}' has {} items, max_length is {max_length}",
                            items.len()
                        )));
                    }
                }
                (PayloadKind::Set, PayloadValue::Set(items)) => {
                    if let Some(range) = &def.range {
                        if let Some(PayloadValue::Sequence(tokens)) = self.payloads.get(range) {
                            for el in items {
                                if el.span.0 >= el.span.1 || el.span.1 > tokens.len() {
                                    return Err(StoreError::Validation(format!(
                                        "payload '{name}' element '{}' span {:?} out of range (len {})",
                                        el.id,
                                        el.span,
                                        tokens.len()
                                    )));
                                }
                            }
                        }
                    }
                }
                _ => {
                    return Err(StoreError::Validation(format!(
                        "payload '{name}' value does not match its declared kind"
                    )))
                }
            }
        }
        for (task_name, sources) in &self.tasks {
            let task = schema.tasks.get(task_name).ok_or_else(|| {
                StoreError::Validation(format!("record labels unknown task '{task_name}'"))
            })?;
            let payload_value = self.payloads.get(&task.payload);
            for (source, label) in sources {
                self.validate_label(schema, task_name, source, label, &task.kind, payload_value)?;
            }
        }
        Ok(())
    }

    fn validate_label(
        &self,
        schema: &Schema,
        task_name: &str,
        source: &str,
        label: &TaskLabel,
        kind: &TaskKind,
        payload_value: Option<&PayloadValue>,
    ) -> Result<()> {
        let ctx = || format!("task '{task_name}' source '{source}'");
        let payload_kind = schema
            .tasks
            .get(task_name)
            .and_then(|t| schema.payloads.get(&t.payload))
            .map(|p| &p.kind);
        match (kind, label) {
            (TaskKind::Multiclass { classes }, TaskLabel::MulticlassOne(c)) => {
                if !matches!(payload_kind, Some(PayloadKind::Singleton)) {
                    return Err(StoreError::Validation(format!(
                        "{}: single-class label on a non-singleton payload",
                        ctx()
                    )));
                }
                check_class(classes, c, &ctx)?;
            }
            (TaskKind::Multiclass { classes }, TaskLabel::MulticlassSeq(cs)) => {
                if !matches!(payload_kind, Some(PayloadKind::Sequence { .. })) {
                    return Err(StoreError::Validation(format!(
                        "{}: per-element label granularity on a non-sequence payload",
                        ctx()
                    )));
                }
                check_seq_len(payload_value, cs.len(), &ctx)?;
                for c in cs {
                    check_class(classes, c, &ctx)?;
                }
            }
            (TaskKind::Bitvector { labels }, TaskLabel::BitvectorOne(bits)) => {
                if !matches!(payload_kind, Some(PayloadKind::Singleton)) {
                    return Err(StoreError::Validation(format!(
                        "{}: singleton bitvector label on a non-singleton payload",
                        ctx()
                    )));
                }
                for b in bits {
                    check_class(labels, b, &ctx)?;
                }
            }
            (TaskKind::Bitvector { labels }, TaskLabel::BitvectorSeq(rows)) => {
                if !matches!(payload_kind, Some(PayloadKind::Sequence { .. })) {
                    return Err(StoreError::Validation(format!(
                        "{}: per-element label granularity on a non-sequence payload",
                        ctx()
                    )));
                }
                check_seq_len(payload_value, rows.len(), &ctx)?;
                for bits in rows {
                    for b in bits {
                        check_class(labels, b, &ctx)?;
                    }
                }
            }
            (TaskKind::Select, TaskLabel::Select(idx)) => {
                if let Some(PayloadValue::Set(items)) = payload_value {
                    if *idx >= items.len() {
                        return Err(StoreError::Validation(format!(
                            "{}: select index {idx} out of set of {}",
                            ctx(),
                            items.len()
                        )));
                    }
                }
            }
            _ => {
                return Err(StoreError::Validation(format!(
                    "{}: label granularity does not match the task type",
                    ctx()
                )))
            }
        }
        Ok(())
    }
}

fn check_class(vocab: &[String], c: &str, ctx: &impl Fn() -> String) -> Result<()> {
    if !vocab.iter().any(|v| v == c) {
        return Err(StoreError::Validation(format!("{}: unknown label '{c}'", ctx())));
    }
    Ok(())
}

fn check_seq_len(
    payload_value: Option<&PayloadValue>,
    label_len: usize,
    ctx: &impl Fn() -> String,
) -> Result<()> {
    if let Some(PayloadValue::Sequence(items)) = payload_value {
        if items.len() != label_len {
            return Err(StoreError::Validation(format!(
                "{}: {label_len} labels for {} sequence elements",
                ctx(),
                items.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::example_schema;

    fn example_record() -> Record {
        Record::new()
            .with_payload(
                "tokens",
                PayloadValue::Sequence(
                    ["how", "tall", "is", "the", "president"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                ),
            )
            .with_payload("query", PayloadValue::Singleton("how tall is the president".into()))
            .with_payload(
                "entities",
                PayloadValue::Set(vec![
                    SetElement { id: "President_(title)".into(), span: (4, 5) },
                    SetElement { id: "United_States".into(), span: (3, 5) },
                ]),
            )
            .with_label("Intent", "weak1", TaskLabel::MulticlassOne("President".into()))
            .with_label("Intent", "weak2", TaskLabel::MulticlassOne("Height".into()))
            .with_label("Intent", "crowd", TaskLabel::MulticlassOne("Height".into()))
            .with_label("IntentArg", "weak1", TaskLabel::Select(1))
            .with_tag("train")
            .with_slice("complex-disambiguation")
    }

    #[test]
    fn example_record_validates() {
        example_record().validate(&example_schema()).unwrap();
    }

    #[test]
    fn json_roundtrip() {
        let r = example_record();
        let back = Record::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn tags_and_slices() {
        let r = example_record();
        assert_eq!(r.split(), Some("train"));
        assert!(r.in_slice("complex-disambiguation"));
        assert_eq!(r.slices().collect::<Vec<_>>(), vec!["complex-disambiguation"]);
    }

    #[test]
    fn weak_sources_exclude_gold() {
        let r = example_record().with_label(
            "Intent",
            GOLD_SOURCE,
            TaskLabel::MulticlassOne("Height".into()),
        );
        let sources: Vec<&str> = r.weak_sources("Intent").map(|(s, _)| s).collect();
        assert_eq!(sources, vec!["crowd", "weak1", "weak2"]);
        assert!(r.gold("Intent").is_some());
        assert!(r.gold("POS").is_none());
    }

    #[test]
    fn unknown_label_rejected() {
        let r = example_record().with_label(
            "Intent",
            "weak3",
            TaskLabel::MulticlassOne("NotAClass".into()),
        );
        let err = r.validate(&example_schema()).unwrap_err();
        assert!(err.to_string().contains("unknown label"), "{err}");
    }

    #[test]
    fn wrong_granularity_rejected() {
        // Sequence label for a singleton-payload task.
        let r = example_record().with_label(
            "Intent",
            "weak4",
            TaskLabel::MulticlassSeq(vec!["Height".into()]),
        );
        let err = r.validate(&example_schema()).unwrap_err();
        assert!(
            err.to_string().contains("granularity") || err.to_string().contains("labels for"),
            "{err}"
        );
    }

    #[test]
    fn sequence_length_mismatch_rejected() {
        let r = example_record().with_label(
            "POS",
            "spacy",
            TaskLabel::MulticlassSeq(vec!["ADV".into(), "ADJ".into()]), // 2 labels, 5 tokens
        );
        let err = r.validate(&example_schema()).unwrap_err();
        assert!(err.to_string().contains("sequence elements"), "{err}");
    }

    #[test]
    fn select_out_of_bounds_rejected() {
        let r = example_record().with_label("IntentArg", "weak9", TaskLabel::Select(7));
        let err = r.validate(&example_schema()).unwrap_err();
        assert!(err.to_string().contains("out of set"), "{err}");
    }

    #[test]
    fn bad_span_rejected() {
        let mut r = example_record();
        r.payloads.insert(
            "entities".into(),
            PayloadValue::Set(vec![SetElement { id: "x".into(), span: (3, 9) }]),
        );
        r.tasks.remove("IntentArg"); // avoid unrelated select bound error
        let err = r.validate(&example_schema()).unwrap_err();
        assert!(err.to_string().contains("span"), "{err}");
    }

    #[test]
    fn over_long_sequence_rejected() {
        let mut r = Record::new().with_payload(
            "tokens",
            PayloadValue::Sequence((0..17).map(|i| format!("t{i}")).collect()),
        );
        r.tasks.clear();
        let err = r.validate(&example_schema()).unwrap_err();
        assert!(err.to_string().contains("max_length"), "{err}");
    }

    #[test]
    fn bitvector_on_singleton_normalizes_from_json() {
        // A bitvector label over a singleton payload parses ambiguously as
        // MulticlassSeq; normalize_labels must rewrite it.
        let json = r#"{
          "payloads": { "q": { "type": "singleton" } },
          "tasks": {
            "topics": { "payload": "q", "type": "bitvector", "labels": ["a", "b"] }
          }
        }"#;
        let schema = Schema::from_json(json).unwrap();
        let mut r = Record::from_json(
            r#"{"payloads": {"q": "text"}, "tasks": {"topics": {"w": ["a", "b"]}}}"#,
        )
        .unwrap();
        assert!(matches!(r.tasks["topics"]["w"], TaskLabel::MulticlassSeq(_)));
        r.normalize_labels(&schema);
        assert_eq!(r.tasks["topics"]["w"], TaskLabel::BitvectorOne(vec!["a".into(), "b".into()]));
        r.validate(&schema).unwrap();
    }

    #[test]
    fn paper_figure_2a_record_parses() {
        // A record shaped like the paper's Figure 2a example data record.
        let json = r#"{
          "payloads": {
            "tokens": ["How", "tall", "is", "the", "president", "of", "the", "united", "states"],
            "query": "How tall is the president of the united states",
            "entities": [
              {"id": "President_(title)", "span": [4, 5]},
              {"id": "United_States", "span": [7, 9]},
              {"id": "U.S._state", "span": [8, 9]}
            ]
          },
          "tasks": {
            "Intent": { "weak1": "President", "weak2": "Height", "crowd": "Height" },
            "IntentArg": { "weak1": 2, "weak2": 0, "crowd": 1 }
          },
          "tags": ["train"]
        }"#;
        let r = Record::from_json(json).unwrap();
        r.validate(&example_schema()).unwrap();
        assert_eq!(r.tasks["IntentArg"]["weak2"], TaskLabel::Select(0));
    }
}

//! Overton's schema: payloads + tasks (paper §2.1, Figure 2a).
//!
//! The schema is the contract between supervision data, the compiled model
//! and serving. It deliberately contains **no hyperparameters** — that is
//! what gives Overton *model independence*: the same schema compiles to many
//! architectures, and serving code never changes when the model does.

use crate::error::{Result, StoreError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a payload is shaped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase", tag = "type")]
pub enum PayloadKind {
    /// One value per example (e.g. the whole query).
    Singleton,
    /// An ordered list (e.g. the tokenized query), bounded by `max_length`.
    Sequence {
        /// Upper bound on the sequence length; longer inputs are truncated.
        max_length: usize,
    },
    /// An unordered collection (e.g. candidate entities).
    Set,
}

/// A payload declaration: a source of data the model embeds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PayloadDef {
    /// Shape of the payload.
    #[serde(flatten)]
    pub kind: PayloadKind,
    /// Payloads this one aggregates (e.g. `query` is built from `tokens`).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub base: Vec<String>,
    /// For `Set` payloads: the sequence payload their spans point into.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub range: Option<String>,
}

/// What a task predicts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase", tag = "type")]
pub enum TaskKind {
    /// Exactly one of `classes` per payload element.
    Multiclass {
        /// The label vocabulary, in output order.
        classes: Vec<String>,
    },
    /// Any subset of `labels` per payload element (non-exclusive types).
    Bitvector {
        /// One bit per label, in output order.
        labels: Vec<String>,
    },
    /// Chooses one element out of a `Set` payload.
    Select,
}

/// A task declaration: an output the model must produce.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskDef {
    /// The payload this task reads (and whose granularity it inherits).
    pub payload: String,
    /// Output type.
    #[serde(flatten)]
    pub kind: TaskKind,
}

/// A complete Overton schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Payload declarations by name.
    pub payloads: BTreeMap<String, PayloadDef>,
    /// Task declarations by name.
    pub tasks: BTreeMap<String, TaskDef>,
}

impl Schema {
    /// Parses and validates a schema from its JSON text.
    pub fn from_json(text: &str) -> Result<Self> {
        let schema: Schema = serde_json::from_str(text)?;
        schema.validate()?;
        Ok(schema)
    }

    /// Reads, parses and validates a schema file (the first half of the
    /// paper's two-file engineer contract). Errors name the file.
    pub fn from_json_file(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            StoreError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))
        })?;
        Self::from_json(&text).map_err(|e| match e {
            StoreError::Schema(msg) => StoreError::Schema(format!("{}: {msg}", path.display())),
            StoreError::Json(e) => StoreError::Schema(format!("{}: {e}", path.display())),
            other => other,
        })
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schema serialization cannot fail")
    }

    /// Checks internal consistency: payload references resolve, no reference
    /// cycles, tasks point at payloads, select tasks point at sets, and
    /// label vocabularies are non-empty and duplicate-free.
    pub fn validate(&self) -> Result<()> {
        if self.payloads.is_empty() {
            return Err(StoreError::Schema("schema has no payloads".into()));
        }
        if self.tasks.is_empty() {
            return Err(StoreError::Schema("schema has no tasks".into()));
        }
        for (name, p) in &self.payloads {
            for b in &p.base {
                if !self.payloads.contains_key(b) {
                    return Err(StoreError::Schema(format!(
                        "payload '{name}' references unknown base payload '{b}'"
                    )));
                }
            }
            if let Some(r) = &p.range {
                match self.payloads.get(r) {
                    None => {
                        return Err(StoreError::Schema(format!(
                            "payload '{name}' has unknown range payload '{r}'"
                        )))
                    }
                    Some(other) if !matches!(other.kind, PayloadKind::Sequence { .. }) => {
                        return Err(StoreError::Schema(format!(
                            "payload '{name}' range '{r}' must be a sequence payload"
                        )))
                    }
                    _ => {}
                }
                if !matches!(p.kind, PayloadKind::Set) {
                    return Err(StoreError::Schema(format!(
                        "payload '{name}' declares a range but is not a set"
                    )));
                }
            }
            if let PayloadKind::Sequence { max_length } = p.kind {
                if max_length == 0 {
                    return Err(StoreError::Schema(format!("payload '{name}' has max_length 0")));
                }
            }
        }
        self.check_acyclic()?;
        for (name, t) in &self.tasks {
            let payload = self.payloads.get(&t.payload).ok_or_else(|| {
                StoreError::Schema(format!(
                    "task '{name}' references unknown payload '{}'",
                    t.payload
                ))
            })?;
            match &t.kind {
                TaskKind::Multiclass { classes } => {
                    check_vocab(name, "classes", classes)?;
                }
                TaskKind::Bitvector { labels } => {
                    check_vocab(name, "labels", labels)?;
                }
                TaskKind::Select => {
                    if !matches!(payload.kind, PayloadKind::Set) {
                        return Err(StoreError::Schema(format!(
                            "select task '{name}' must read a set payload, but '{}' is not a set",
                            t.payload
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    fn check_acyclic(&self) -> Result<()> {
        // DFS with colors over payload base/range references.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let names: Vec<&String> = self.payloads.keys().collect();
        let index: BTreeMap<&str, usize> =
            names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
        let mut colors = vec![Color::White; names.len()];
        fn visit(
            schema: &Schema,
            names: &[&String],
            index: &BTreeMap<&str, usize>,
            colors: &mut [Color],
            i: usize,
        ) -> Result<()> {
            colors[i] = Color::Grey;
            let p = &schema.payloads[names[i]];
            let refs = p.base.iter().chain(p.range.iter());
            for r in refs {
                let j = index[r.as_str()];
                match colors[j] {
                    Color::Grey => {
                        return Err(StoreError::Schema(format!(
                            "payload reference cycle through '{r}'"
                        )))
                    }
                    Color::White => visit(schema, names, index, colors, j)?,
                    Color::Black => {}
                }
            }
            colors[i] = Color::Black;
            Ok(())
        }
        for i in 0..names.len() {
            if colors[i] == Color::White {
                visit(self, &names, &index, &mut colors, i)?;
            }
        }
        Ok(())
    }

    /// Payload names in dependency order (referenced payloads first), so a
    /// model compiler can build encoders bottom-up.
    pub fn payload_topo_order(&self) -> Vec<String> {
        let mut order = Vec::with_capacity(self.payloads.len());
        let mut done: std::collections::BTreeSet<&str> = Default::default();
        // Kahn-style repeated sweep; payload counts are tiny.
        while order.len() < self.payloads.len() {
            let before = order.len();
            for (name, p) in &self.payloads {
                if done.contains(name.as_str()) {
                    continue;
                }
                let ready = p.base.iter().chain(p.range.iter()).all(|r| done.contains(r.as_str()));
                if ready {
                    done.insert(name);
                    order.push(name.clone());
                }
            }
            assert!(order.len() > before, "cycle should have been rejected by validate()");
        }
        order
    }

    /// Number of output dimensions a task produces per payload element
    /// (`None` for select tasks, whose cardinality is the set size).
    pub fn task_cardinality(&self, task: &str) -> Option<usize> {
        match &self.tasks.get(task)?.kind {
            TaskKind::Multiclass { classes } => Some(classes.len()),
            TaskKind::Bitvector { labels } => Some(labels.len()),
            TaskKind::Select => None,
        }
    }

    /// The serving signature: a stable, architecture-independent description
    /// of model inputs and outputs that downstream serving consumes
    /// (paper §2.1: "build a serving signature, which contains detailed
    /// information of the types").
    pub fn serving_signature(&self) -> ServingSignature {
        let inputs = self
            .payloads
            .iter()
            .map(|(name, p)| SignatureInput {
                name: name.clone(),
                kind: match p.kind {
                    PayloadKind::Singleton => "singleton".into(),
                    PayloadKind::Sequence { .. } => "sequence".into(),
                    PayloadKind::Set => "set".into(),
                },
                max_length: match p.kind {
                    PayloadKind::Sequence { max_length } => Some(max_length),
                    _ => None,
                },
            })
            .collect();
        let outputs = self
            .tasks
            .iter()
            .map(|(name, t)| {
                let (kind, labels) = match &t.kind {
                    TaskKind::Multiclass { classes } => ("multiclass", classes.clone()),
                    TaskKind::Bitvector { labels } => ("bitvector", labels.clone()),
                    TaskKind::Select => ("select", Vec::new()),
                };
                SignatureOutput {
                    name: name.clone(),
                    payload: t.payload.clone(),
                    kind: kind.into(),
                    labels,
                }
            })
            .collect();
        ServingSignature { inputs, outputs }
    }
}

fn check_vocab(task: &str, what: &str, vocab: &[String]) -> Result<()> {
    if vocab.is_empty() {
        return Err(StoreError::Schema(format!("task '{task}' has empty {what}")));
    }
    let unique: std::collections::BTreeSet<&String> = vocab.iter().collect();
    if unique.len() != vocab.len() {
        return Err(StoreError::Schema(format!("task '{task}' has duplicate {what}")));
    }
    Ok(())
}

/// One input in a [`ServingSignature`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureInput {
    /// Payload name.
    pub name: String,
    /// `singleton`, `sequence` or `set`.
    pub kind: String,
    /// Sequence bound, when applicable.
    pub max_length: Option<usize>,
}

/// One output in a [`ServingSignature`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureOutput {
    /// Task name.
    pub name: String,
    /// The payload the task reads.
    pub payload: String,
    /// `multiclass`, `bitvector` or `select`.
    pub kind: String,
    /// Output label vocabulary (empty for select).
    pub labels: Vec<String>,
}

/// Architecture-independent serving contract derived from a [`Schema`].
///
/// Two models compiled from the same schema — regardless of embeddings,
/// encoders or hyperparameters — share a signature, which is what lets
/// Overton swap models under a running product without code changes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingSignature {
    /// Model inputs (one per payload).
    pub inputs: Vec<SignatureInput>,
    /// Model outputs (one per task).
    pub outputs: Vec<SignatureOutput>,
}

/// The schema of the paper's running example (Figure 2a): a factoid-QA
/// pipeline with `tokens`/`query`/`entities` payloads and
/// `POS`/`EntityType`/`Intent`/`IntentArg` tasks.
pub fn example_schema() -> Schema {
    let json = r#"{
      "payloads": {
        "tokens":   { "type": "sequence", "max_length": 16 },
        "query":    { "type": "singleton", "base": ["tokens"] },
        "entities": { "type": "set", "range": "tokens" }
      },
      "tasks": {
        "POS": { "payload": "tokens", "type": "multiclass",
                 "classes": ["ADV", "ADJ", "VERB", "NOUN", "PROPN", "DET", "ADP", "PUNCT"] },
        "EntityType": { "payload": "tokens", "type": "bitvector",
                        "labels": ["person", "location", "country", "title", "organization"] },
        "Intent": { "payload": "query", "type": "multiclass",
                    "classes": ["Height", "Age", "Capital", "Population", "Spouse", "President"] },
        "IntentArg": { "payload": "entities", "type": "select" }
      }
    }"#;
    Schema::from_json(json).expect("example schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_schema_parses_and_validates() {
        let s = example_schema();
        assert_eq!(s.payloads.len(), 3);
        assert_eq!(s.tasks.len(), 4);
        assert_eq!(s.task_cardinality("Intent"), Some(6));
        assert_eq!(s.task_cardinality("IntentArg"), None);
    }

    #[test]
    fn json_roundtrip_is_stable() {
        let s = example_schema();
        let text = s.to_json();
        let back = Schema::from_json(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn unknown_base_payload_rejected() {
        let json = r#"{
          "payloads": { "query": { "type": "singleton", "base": ["missing"] } },
          "tasks": { "t": { "payload": "query", "type": "multiclass", "classes": ["a"] } }
        }"#;
        let err = Schema::from_json(json).unwrap_err();
        assert!(err.to_string().contains("unknown base payload"), "{err}");
    }

    #[test]
    fn cycle_rejected() {
        let json = r#"{
          "payloads": {
            "a": { "type": "singleton", "base": ["b"] },
            "b": { "type": "singleton", "base": ["a"] }
          },
          "tasks": { "t": { "payload": "a", "type": "multiclass", "classes": ["x"] } }
        }"#;
        let err = Schema::from_json(json).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn select_task_requires_set_payload() {
        let json = r#"{
          "payloads": { "q": { "type": "singleton" } },
          "tasks": { "pick": { "payload": "q", "type": "select" } }
        }"#;
        let err = Schema::from_json(json).unwrap_err();
        assert!(err.to_string().contains("must read a set payload"), "{err}");
    }

    #[test]
    fn range_must_point_at_sequence() {
        let json = r#"{
          "payloads": {
            "q": { "type": "singleton" },
            "ents": { "type": "set", "range": "q" }
          },
          "tasks": { "t": { "payload": "q", "type": "multiclass", "classes": ["x"] } }
        }"#;
        let err = Schema::from_json(json).unwrap_err();
        assert!(err.to_string().contains("must be a sequence"), "{err}");
    }

    #[test]
    fn duplicate_classes_rejected() {
        let json = r#"{
          "payloads": { "q": { "type": "singleton" } },
          "tasks": { "t": { "payload": "q", "type": "multiclass", "classes": ["x", "x"] } }
        }"#;
        let err = Schema::from_json(json).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(Schema::from_json(r#"{ "payloads": {}, "tasks": {} }"#).is_err());
    }

    #[test]
    fn topo_order_puts_tokens_before_query() {
        let s = example_schema();
        let order = s.payload_topo_order();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("tokens") < pos("query"));
        assert!(pos("tokens") < pos("entities"));
    }

    #[test]
    fn serving_signature_is_architecture_independent() {
        // Two schemas that differ only in nothing model-related produce the
        // same signature; the signature lists every payload and task.
        let sig = example_schema().serving_signature();
        assert_eq!(sig.inputs.len(), 3);
        assert_eq!(sig.outputs.len(), 4);
        let intent = sig.outputs.iter().find(|o| o.name == "Intent").unwrap();
        assert_eq!(intent.kind, "multiclass");
        assert_eq!(intent.labels.len(), 6);
    }

    #[test]
    fn zero_max_length_rejected() {
        let json = r#"{
          "payloads": { "s": { "type": "sequence", "max_length": 0 } },
          "tasks": { "t": { "payload": "s", "type": "multiclass", "classes": ["x"] } }
        }"#;
        assert!(Schema::from_json(json).is_err());
    }
}

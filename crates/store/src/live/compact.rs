//! Background compaction: merge cold delta segments into a new sealed
//! base with a checksummed, crash-safe atomic directory swap.
//!
//! Protocol (commit point = the `LIVE.json` rename):
//!
//! 1. capture the current base + sealed deltas (the cold set);
//! 2. write the merged store to `base-(G+1).tmp/`, then rename it to
//!    `base-(G+1)/` — both invisible to readers, who follow `LIVE.json`;
//! 3. under the state lock (serializing with concurrent delta seals),
//!    stage the new manifest and rename it over `LIVE.json`;
//! 4. delete the old base directory and the merged delta files.
//!
//! A crash anywhere before step 3's rename leaves the old generation
//! fully readable (`LiveStore::open` sweeps the partial files); a crash
//! after it leaves the *new* generation fully readable with some orphan
//! files for the next open to sweep. The fault hook lets tests kill the
//! protocol at every one of these points and assert exactly that.
//!
//! The compactor thread is plain `std::thread` + `Condvar`, the same
//! no-tokio discipline as `serving::net`.

use super::manifest::LIVE_MANIFEST;
use super::{base_dir_name, LiveStore};
use crate::error::{Result, StoreError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Points in the compaction protocol where the fault hook runs. The
/// numeric order matches the protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CompactPoint {
    /// After the cold set is captured, before any file is written.
    Begin,
    /// After the merged base was written to its staging directory.
    BaseDirWritten,
    /// After the staging directory was renamed to its final name (still
    /// uncommitted — `LIVE.json` has not changed).
    BaseDirRenamed,
    /// After the new manifest was staged as `LIVE.json.tmp`, immediately
    /// before the commit rename.
    ManifestStaged,
    /// After the commit, before the old generation's files are deleted.
    BeforeCleanup,
}

/// All protocol points, in order (for kill-at-every-point test sweeps).
pub const COMPACT_POINTS: [CompactPoint; 5] = [
    CompactPoint::Begin,
    CompactPoint::BaseDirWritten,
    CompactPoint::BaseDirRenamed,
    CompactPoint::ManifestStaged,
    CompactPoint::BeforeCleanup,
];

/// A fault-injection hook: return `true` to kill the compaction at that
/// point (it aborts with an `Interrupted` I/O error and performs **no**
/// cleanup, simulating a process kill). The hook runs with internal locks
/// held — it must not call back into the store.
pub type CompactFault = Box<dyn Fn(CompactPoint) -> bool + Send + Sync>;

struct CompactorCmd {
    stop: bool,
    kick: bool,
}

struct CompactorShared {
    cmd: Mutex<CompactorCmd>,
    wake: Condvar,
}

/// Handle to the background compactor thread started by
/// [`LiveStore::start_compactor`]. Dropping the handle stops the thread.
pub struct Compactor {
    shared: Arc<CompactorShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Wakes the compactor now and asks it to compact regardless of the
    /// `compact_min_deltas` threshold.
    pub fn kick(&self) {
        let mut cmd = self.shared.cmd.lock().expect("compactor cmd");
        cmd.kick = true;
        self.shared.wake.notify_all();
    }

    /// Stops the thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            {
                let mut cmd = self.shared.cmd.lock().expect("compactor cmd");
                cmd.stop = true;
                self.shared.wake.notify_all();
            }
            thread.join().ok();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl LiveStore {
    /// Installs (or clears) the compaction fault hook. Test-only in
    /// spirit: this is how the crash-mid-compaction suite kills the
    /// protocol at arbitrary points.
    pub fn set_compaction_fault(&self, hook: Option<CompactFault>) {
        *self.fault.lock().expect("fault hook") = hook;
    }

    fn fault_at(&self, point: CompactPoint) -> Result<()> {
        if let Some(hook) = self.fault.lock().expect("fault hook").as_ref() {
            if hook(point) {
                return Err(StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("compaction killed at {point:?}"),
                )));
            }
        }
        Ok(())
    }

    /// True when enough deltas are sealed for the background compactor to
    /// merge them.
    pub fn should_compact(&self) -> bool {
        self.num_deltas() >= self.config.compact_min_deltas.max(1)
    }

    /// Merges every currently sealed delta into a new base generation.
    /// Concurrent appends/seals proceed during the merge; deltas sealed
    /// after the merge starts simply survive into the new generation.
    /// Returns the committed generation (a no-op returns the current one).
    ///
    /// Row order is preserved exactly — base rows then deltas in append
    /// order — so snapshots taken before and after a compaction scan
    /// bit-identical rows.
    pub fn compact(&self) -> Result<u64> {
        let _serialize = self.compact_guard.lock().expect("compact guard");
        let (base, old_base_dir, cold_files, cold_segments, start_generation) = {
            let state = self.state.lock().expect("live state");
            if state.deltas.is_empty() {
                return Ok(state.generation);
            }
            (
                state.base.clone(),
                state.base_dir.clone(),
                state.deltas.iter().map(|d| d.file.clone()).collect::<Vec<_>>(),
                state.deltas.iter().map(|d| (d.store.clone(), d.index.clone())).collect::<Vec<_>>(),
                state.generation,
            )
        };
        self.fault_at(CompactPoint::Begin)?;

        let merged = base.with_extra_segments(cold_segments.iter().map(|(s, i)| (s, i)));
        let new_base_dir = base_dir_name(start_generation + 1);
        let staged_dir = self.dir.join(format!("{new_base_dir}.tmp"));
        // A previous killed compaction may have left either name behind.
        std::fs::remove_dir_all(&staged_dir).ok();
        std::fs::remove_dir_all(self.dir.join(&new_base_dir)).ok();
        merged.write_dir(&staged_dir)?;
        self.fault_at(CompactPoint::BaseDirWritten)?;
        std::fs::rename(&staged_dir, self.dir.join(&new_base_dir))?;
        self.fault_at(CompactPoint::BaseDirRenamed)?;

        let new_generation = {
            let mut state = self.state.lock().expect("live state");
            let mut manifest = Self::manifest_of(&state);
            manifest.generation = state.generation + 1;
            manifest.base = new_base_dir.clone();
            // Deltas sealed while we merged stay; the cold set is promoted.
            manifest.deltas.retain(|d| !cold_files.contains(&d.file));
            let staged = self.dir.join(format!("{LIVE_MANIFEST}.tmp"));
            std::fs::write(&staged, manifest.to_json())?;
            self.fault_at(CompactPoint::ManifestStaged)?;
            std::fs::rename(&staged, self.dir.join(LIVE_MANIFEST))?;
            // Committed: update the in-memory world atomically with it.
            state.generation = manifest.generation;
            state.base = merged;
            state.base_dir = new_base_dir;
            state.deltas.retain(|d| !cold_files.contains(&d.file));
            self.rebuild_snapshot(&state);
            state.generation
        };
        self.fault_at(CompactPoint::BeforeCleanup)?;
        std::fs::remove_dir_all(self.dir.join(&old_base_dir)).ok();
        for file in &cold_files {
            std::fs::remove_file(self.dir.join(file)).ok();
        }
        Ok(new_generation)
    }

    /// Starts the background compactor: a `std::thread` that wakes every
    /// `interval` (or on [`Compactor::kick`]) and merges the sealed deltas
    /// whenever [`should_compact`](Self::should_compact) holds. Errors are
    /// recorded (see [`take_compact_error`](Self::take_compact_error)),
    /// never panicked.
    pub fn start_compactor(self: &Arc<Self>, interval: Duration) -> Compactor {
        let shared = Arc::new(CompactorShared {
            cmd: Mutex::new(CompactorCmd { stop: false, kick: false }),
            wake: Condvar::new(),
        });
        let store = Arc::clone(self);
        let sh = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("overton-compactor".into())
            .spawn(move || loop {
                let kicked = {
                    let cmd = sh.cmd.lock().expect("compactor cmd");
                    let mut cmd = if cmd.stop || cmd.kick {
                        cmd
                    } else {
                        sh.wake.wait_timeout(cmd, interval).expect("compactor wait").0
                    };
                    if cmd.stop {
                        break;
                    }
                    std::mem::take(&mut cmd.kick)
                };
                if kicked || store.should_compact() {
                    if let Err(e) = store.compact() {
                        *store.compact_error.lock().expect("compact error") = Some(e.to_string());
                    }
                }
            })
            .expect("spawn compactor thread");
        Compactor { shared, thread: Some(thread) }
    }

    /// Takes the most recent background-compaction error, if any.
    pub fn take_compact_error(&self) -> Option<String> {
        self.compact_error.lock().expect("compact error").take()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{LiveStore, LiveStoreConfig};
    use super::*;
    use crate::record::{PayloadValue, Record, TaskLabel, TAG_TRAIN};
    use crate::schema::example_schema;
    use std::path::PathBuf;

    fn record(i: usize) -> Record {
        Record::new()
            .with_payload("query", PayloadValue::Singleton(format!("compact row {i}")))
            .with_label(
                "Intent",
                "weak1",
                TaskLabel::MulticlassOne(if i.is_multiple_of(2) { "Age" } else { "Height" }.into()),
            )
            .with_tag(TAG_TRAIN)
    }

    fn temp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("overton-compact-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn fill(live: &LiveStore, range: std::ops::Range<usize>, per_delta: usize) {
        for chunk in range.collect::<Vec<_>>().chunks(per_delta) {
            for &i in chunk {
                live.append(record(i)).unwrap();
            }
            live.flush().unwrap();
        }
    }

    #[test]
    fn compaction_promotes_deltas_and_preserves_row_order() {
        let dir = temp("promote");
        let live = LiveStore::create(&dir, example_schema()).unwrap();
        fill(&live, 0..40, 10);
        assert_eq!(live.num_deltas(), 4);
        let before = live.snapshot();

        let generation = live.compact().unwrap();
        assert_eq!(generation, 5, "4 seals + 1 compaction");
        assert_eq!(live.num_deltas(), 0);
        let after = live.snapshot();
        assert_eq!(after.len(), 40);
        assert_eq!(after.base_rows(), 40);
        // Bit-identical rows, same order, before and after.
        for i in 0..40 {
            assert_eq!(before.store().get(i).unwrap(), after.store().get(i).unwrap());
            assert_eq!(after.store().get(i).unwrap(), record(i));
        }
        assert_eq!(before.store().index().train_rows(), after.store().index().train_rows());
        // Old files are gone; the new generation reopens cleanly.
        assert!(!dir.join("base-0000000000").exists());
        assert!(!dir.join("delta-000000.ovrs").exists());
        drop(live);
        let back = LiveStore::open(&dir).unwrap();
        assert_eq!(back.sealed_rows(), 40);
        back.verify().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_is_a_noop_without_deltas() {
        let dir = temp("noop");
        let live = LiveStore::create(&dir, example_schema()).unwrap();
        assert_eq!(live.compact().unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deltas_sealed_during_merge_survive() {
        // Simulate "sealed during the merge" deterministically: seal an
        // extra delta from inside the fault hook at BaseDirRenamed (the
        // hook returns false, so compaction continues)... the hook must
        // not call the store, so instead seal between capture and commit
        // using a two-phase dance: capture happens in compact(), so we
        // emulate by sealing from another thread blocked on Begin.
        let dir = temp("concurrent");
        let live = std::sync::Arc::new(
            LiveStore::create_from_with(
                &dir,
                crate::rowstore::ShardedStore::from_records(example_schema(), &[], 1),
                LiveStoreConfig { delta_rows: 1_000_000, ..Default::default() },
            )
            .unwrap(),
        );
        fill(&live, 0..20, 10);
        assert_eq!(live.num_deltas(), 2);

        // Block the compactor at Begin (just after it captured the cold
        // set) until the main thread seals one more delta, then let it
        // finish. Two-way handshake so the seal is strictly between the
        // capture and the commit.
        let gate = std::sync::Arc::new((Mutex::new((false, false)), Condvar::new()));
        let g = Arc::clone(&gate);
        live.set_compaction_fault(Some(Box::new(move |point| {
            if point == CompactPoint::Begin {
                let (lock, cv) = &*g;
                let mut flags = lock.lock().unwrap();
                flags.0 = true; // reached the capture point
                cv.notify_all();
                while !flags.1 {
                    flags = cv.wait(flags).unwrap();
                }
            }
            false
        })));
        let worker = {
            let live = Arc::clone(&live);
            std::thread::spawn(move || live.compact().unwrap())
        };
        {
            let (lock, cv) = &*gate;
            let mut flags = lock.lock().unwrap();
            while !flags.0 {
                flags = cv.wait(flags).unwrap();
            }
        }
        // Seal a third delta while the merge is captured-but-blocked.
        for i in 20..25 {
            live.append(record(i)).unwrap();
        }
        live.flush().unwrap();
        {
            let (lock, cv) = &*gate;
            lock.lock().unwrap().1 = true;
            cv.notify_all();
        }
        worker.join().unwrap();
        live.set_compaction_fault(None);

        // The two cold deltas were promoted; the hot one survived.
        assert_eq!(live.num_deltas(), 1);
        let snap = live.snapshot();
        assert_eq!(snap.len(), 25);
        assert_eq!(snap.base_rows(), 20);
        for i in 0..25 {
            assert_eq!(snap.store().get(i).unwrap(), record(i));
        }
        drop(snap);
        // And a reopen agrees with memory.
        let back = LiveStore::open(&dir).unwrap();
        assert_eq!(back.sealed_rows(), 25);
        assert_eq!(back.num_deltas(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_compactor_kicks_in() {
        let dir = temp("background");
        let live = Arc::new(
            LiveStore::create_from_with(
                &dir,
                crate::rowstore::ShardedStore::from_records(example_schema(), &[], 1),
                LiveStoreConfig { compact_min_deltas: 2, ..Default::default() },
            )
            .unwrap(),
        );
        fill(&live, 0..20, 10);
        assert_eq!(live.num_deltas(), 2);
        let compactor = live.start_compactor(Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while live.num_deltas() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        compactor.stop();
        assert_eq!(live.num_deltas(), 0, "compactor never ran: {:?}", live.take_compact_error());
        assert_eq!(live.snapshot().len(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kick_compacts_below_threshold() {
        let dir = temp("kick");
        let live = Arc::new(
            LiveStore::create_from_with(
                &dir,
                crate::rowstore::ShardedStore::from_records(example_schema(), &[], 1),
                LiveStoreConfig { compact_min_deltas: 100, ..Default::default() },
            )
            .unwrap(),
        );
        fill(&live, 0..10, 10);
        assert_eq!(live.num_deltas(), 1);
        assert!(!live.should_compact());
        let compactor = live.start_compactor(Duration::from_secs(3600));
        compactor.kick();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while live.num_deltas() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        compactor.stop();
        assert_eq!(live.num_deltas(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

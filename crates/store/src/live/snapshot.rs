//! Snapshot-isolated read views over a live store.

use crate::rowstore::ShardedStore;
use std::sync::Arc;

/// An immutable, `Arc`-pinned view of one sealed generation of a
/// [`LiveStore`](crate::live::LiveStore): the base store plus every delta
/// segment sealed at snapshot time, merged into one [`ShardedStore`] the
/// whole pipeline can scan (`par_scan`, the index, serving, obs — all of
/// it works unchanged on a snapshot).
///
/// Snapshots are cheap — segment blobs are refcounted `Bytes`, so a
/// snapshot clones refcounts, never row data — and they are *stable*: a
/// pinned snapshot keeps its segments alive in memory, so appends sealed
/// after it, and even a compaction that rewrites and deletes the on-disk
/// files underneath it, never change what the snapshot reads. Two scans of
/// the same snapshot are bit-for-bit identical.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    generation: u64,
    base_rows: usize,
    delta_rows: usize,
    num_deltas: usize,
    store: Arc<ShardedStore>,
}

impl StoreSnapshot {
    pub(crate) fn new(
        generation: u64,
        base_rows: usize,
        delta_rows: usize,
        num_deltas: usize,
        store: ShardedStore,
    ) -> Self {
        Self { generation, base_rows, delta_rows, num_deltas, store: Arc::new(store) }
    }

    /// The generation id this snapshot pinned. Generations increase by one
    /// on every sealed-set commit (delta seal or compaction), so recording
    /// this number in run artifacts identifies the exact visible row set.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rows in the sealed base at snapshot time.
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Rows across the sealed delta segments at snapshot time.
    pub fn delta_rows(&self) -> usize {
        self.delta_rows
    }

    /// Number of sealed delta segments at snapshot time.
    pub fn num_deltas(&self) -> usize {
        self.num_deltas
    }

    /// Total visible rows (base + deltas).
    pub fn len(&self) -> usize {
        self.base_rows + self.delta_rows
    }

    /// True when the snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The merged read view: base shards followed by delta segments, with
    /// the tag/slice/source index merged across all of them.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The merged read view as a shared handle (what `Project` pins for an
    /// incremental run).
    pub fn store_arc(&self) -> Arc<ShardedStore> {
        Arc::clone(&self.store)
    }
}

//! The live store: a sealed base plus rotating delta segments, background
//! compaction, and snapshot-isolated readers.
//!
//! The [`ShardedStore`] is seal-once by design — that is what makes its
//! scans deterministic and its files checksummable. But the paper's
//! Figure-1 loop runs against *continuous* data: serving traffic captured
//! by the watchdog, fresh gold labels, new weak sources. A [`LiveStore`]
//! closes that gap without giving up the sealed-store guarantees:
//!
//! ```text
//!   append()  ──▶  [ in-memory buffer ]
//!                        │ seal at row/byte target or flush()
//!                        ▼
//!   dir/ ── LIVE.json          generation header (atomic rename commit)
//!        ├─ base-GGGGGGGGGG/   sealed ShardedStore directory
//!        ├─ delta-000000.ovrs  sealed RowStore segments, append order
//!        └─ delta-000001.ovrs
//!                        │ background compactor: merge cold deltas
//!                        ▼
//!        base-(G+1)/ written to a temp dir, then LIVE.json renamed over —
//!        a killed compaction leaves the old generation fully readable.
//! ```
//!
//! Readers never touch this machinery: [`LiveStore::snapshot`] hands out
//! an [`StoreSnapshot`] — an `Arc`-pinned merge of the base and every
//! sealed delta at that generation, presented as an ordinary
//! [`ShardedStore`]. Pinned snapshots are immune to later appends *and* to
//! compactions that delete the files underneath them, so a scan replays
//! bit-identically for as long as the snapshot is held.
//!
//! Appended rows become visible (and durable) when sealed into a delta:
//! at the configured row/byte target, or on [`LiveStore::flush`]. Every
//! sealed-set change commits by atomically renaming a staged `LIVE.json`,
//! and every segment is checksummed, so [`verify_dir`] can audit a live
//! directory segment by segment.

mod compact;
mod manifest;
mod snapshot;
mod verify;

pub use compact::{CompactFault, CompactPoint, Compactor, COMPACT_POINTS};
pub use manifest::{LIVE_FORMAT_VERSION, LIVE_MANIFEST};
pub use snapshot::StoreSnapshot;
pub use verify::{verify_dir, SegmentStatus, VerifyReport};

use crate::error::{Result, StoreError};
use crate::record::Record;
use crate::rowstore::{approx_record_bytes, RowStore, ShardedStore, StoreIndex};
use crate::schema::Schema;
use manifest::{DeltaEntry, LiveManifest};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Tuning knobs for a [`LiveStore`].
#[derive(Debug, Clone)]
pub struct LiveStoreConfig {
    /// Seal the append buffer into a delta once it holds this many rows.
    pub delta_rows: usize,
    /// ... or once its estimated encoded size reaches this many bytes.
    pub delta_bytes: usize,
    /// The background compactor merges deltas into the base once at least
    /// this many are sealed.
    pub compact_min_deltas: usize,
}

impl Default for LiveStoreConfig {
    fn default() -> Self {
        Self { delta_rows: 4096, delta_bytes: 1 << 20, compact_min_deltas: 4 }
    }
}

/// One sealed delta segment held in memory alongside its manifest entry.
struct DeltaSegment {
    file: String,
    rows: usize,
    checksum: u64,
    store: RowStore,
    index: StoreIndex,
}

/// The mutable sealed-set state behind the lock.
struct LiveState {
    base: ShardedStore,
    base_dir: String,
    deltas: Vec<DeltaSegment>,
    generation: u64,
    next_delta: u64,
    buffer: Vec<Record>,
    buffer_bytes: usize,
}

/// An appendable store: sealed [`ShardedStore`] base + rotating sealed
/// delta segments + an in-memory append buffer. See the module docs for
/// the lifecycle and the crash-safety story.
pub struct LiveStore {
    dir: PathBuf,
    schema: Schema,
    config: LiveStoreConfig,
    state: Mutex<LiveState>,
    snapshot: Mutex<Arc<StoreSnapshot>>,
    /// Serializes compactions (explicit calls and the background thread).
    compact_guard: Mutex<()>,
    /// Test-only fault hook: lets the crash-mid-compaction suite kill the
    /// compactor at every protocol point.
    fault: Mutex<Option<CompactFault>>,
    compact_error: Mutex<Option<String>>,
}

impl std::fmt::Debug for LiveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("live state");
        f.debug_struct("LiveStore")
            .field("dir", &self.dir)
            .field("generation", &state.generation)
            .field("base_rows", &state.base.len())
            .field("deltas", &state.deltas.len())
            .field("pending", &state.buffer.len())
            .finish()
    }
}

fn base_dir_name(generation: u64) -> String {
    format!("base-{generation:010}")
}

fn delta_file_name(seq: u64) -> String {
    format!("delta-{seq:06}.ovrs")
}

impl LiveStore {
    /// Creates a new live store at `dir` with an empty base.
    pub fn create(dir: impl AsRef<Path>, schema: Schema) -> Result<Self> {
        Self::create_from(dir, ShardedStore::from_records(schema, &[], 1))
    }

    /// Creates a new live store at `dir` seeded with an existing sealed
    /// store as its base (generation 0).
    pub fn create_from(dir: impl AsRef<Path>, base: ShardedStore) -> Result<Self> {
        Self::create_from_with(dir, base, LiveStoreConfig::default())
    }

    /// [`create_from`](Self::create_from) with explicit tuning.
    pub fn create_from_with(
        dir: impl AsRef<Path>,
        base: ShardedStore,
        config: LiveStoreConfig,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        if dir.join(LIVE_MANIFEST).exists() {
            return Err(StoreError::Validation(format!(
                "{}: a live store already exists here",
                dir.display()
            )));
        }
        std::fs::create_dir_all(&dir)?;
        let base_dir = base_dir_name(0);
        base.write_dir(dir.join(&base_dir))?;
        let manifest =
            LiveManifest { generation: 0, base: base_dir.clone(), next_delta: 0, deltas: vec![] };
        manifest.write_atomic(&dir)?;
        let schema = base.schema().clone();
        let state = LiveState {
            base,
            base_dir,
            deltas: vec![],
            generation: 0,
            next_delta: 0,
            buffer: vec![],
            buffer_bytes: 0,
        };
        Ok(Self::assemble(dir, schema, config, state))
    }

    /// Opens an existing live store, verifying the manifest self-checksum
    /// and every segment checksum, then sweeping any orphan files a crash
    /// left behind (staged temp files, unreferenced bases and deltas).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(dir, LiveStoreConfig::default())
    }

    /// [`open`](Self::open) with explicit tuning.
    pub fn open_with(dir: impl AsRef<Path>, config: LiveStoreConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = LiveManifest::read(&dir)?;
        let base_path = dir.join(&manifest.base);
        let base = ShardedStore::read_dir(&base_path).map_err(|e| match e {
            StoreError::Corrupt(msg) => {
                StoreError::Corrupt(format!("{}: {msg}", base_path.display()))
            }
            other => other,
        })?;
        let mut deltas = Vec::with_capacity(manifest.deltas.len());
        for entry in &manifest.deltas {
            let path = dir.join(&entry.file);
            let store = RowStore::read_file(&path).map_err(|e| match e {
                StoreError::Corrupt(msg) => {
                    StoreError::Corrupt(format!("{}: {msg}", path.display()))
                }
                StoreError::Io(io) => StoreError::Io(std::io::Error::new(
                    io.kind(),
                    format!("{}: {io}", path.display()),
                )),
                other => other,
            })?;
            if store.len() != entry.rows || store.blob_checksum() != entry.checksum {
                return Err(StoreError::Corrupt(format!(
                    "{}: does not match the live manifest",
                    path.display()
                )));
            }
            let mut index = StoreIndex::default();
            for (row, view) in store.scan_views().enumerate() {
                let view = view?;
                index.note_view(row as u32, &view);
            }
            deltas.push(DeltaSegment {
                file: entry.file.clone(),
                rows: entry.rows,
                checksum: entry.checksum,
                store,
                index,
            });
        }
        Self::sweep_orphans(&dir, &manifest);
        let schema = base.schema().clone();
        let state = LiveState {
            base,
            base_dir: manifest.base.clone(),
            deltas,
            generation: manifest.generation,
            next_delta: manifest.next_delta,
            buffer: vec![],
            buffer_bytes: 0,
        };
        Ok(Self::assemble(dir, schema, config, state))
    }

    fn assemble(dir: PathBuf, schema: Schema, config: LiveStoreConfig, state: LiveState) -> Self {
        let snapshot = Arc::new(Self::snapshot_of(&state));
        Self {
            dir,
            schema,
            config,
            state: Mutex::new(state),
            snapshot: Mutex::new(snapshot),
            compact_guard: Mutex::new(()),
            fault: Mutex::new(None),
            compact_error: Mutex::new(None),
        }
    }

    /// Best-effort removal of files a crash left behind: anything staged
    /// (`*.tmp`), base directories other than the committed one, and delta
    /// files the manifest doesn't reference. Never touches the committed
    /// generation.
    fn sweep_orphans(dir: &Path, manifest: &LiveManifest) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let path = entry.path();
            if name.ends_with(".tmp") {
                if path.is_dir() {
                    std::fs::remove_dir_all(&path).ok();
                } else {
                    std::fs::remove_file(&path).ok();
                }
            } else if name.starts_with("base-") && name != manifest.base {
                std::fs::remove_dir_all(&path).ok();
            } else if name.starts_with("delta-")
                && name.ends_with(".ovrs")
                && !manifest.deltas.iter().any(|d| d.file == name)
            {
                std::fs::remove_file(&path).ok();
            }
        }
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The schema appended records must conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuning configuration.
    pub fn config(&self) -> &LiveStoreConfig {
        &self.config
    }

    /// The current sealed generation id.
    pub fn generation(&self) -> u64 {
        self.state.lock().expect("live state").generation
    }

    /// Rows visible to snapshots (base + sealed deltas).
    pub fn sealed_rows(&self) -> usize {
        let state = self.state.lock().expect("live state");
        state.base.len() + state.deltas.iter().map(|d| d.rows).sum::<usize>()
    }

    /// Rows buffered but not yet sealed into a delta.
    pub fn pending_rows(&self) -> usize {
        self.state.lock().expect("live state").buffer.len()
    }

    /// Number of sealed delta segments not yet compacted into the base.
    pub fn num_deltas(&self) -> usize {
        self.state.lock().expect("live state").deltas.len()
    }

    /// Validates and buffers one record. The buffer seals into a delta
    /// segment automatically at the configured row/byte target; until
    /// then the record is neither durable nor visible to snapshots.
    pub fn append(&self, mut record: Record) -> Result<()> {
        record.normalize_labels(&self.schema);
        record.validate(&self.schema)?;
        let mut state = self.state.lock().expect("live state");
        state.buffer_bytes += approx_record_bytes(&record);
        state.buffer.push(record);
        if state.buffer.len() >= self.config.delta_rows
            || state.buffer_bytes >= self.config.delta_bytes
        {
            self.flush_locked(&mut state)?;
        }
        Ok(())
    }

    /// Appends a JSON-lines reader record by record (blank lines skipped,
    /// errors carry the 1-based line number). Returns how many records
    /// were appended. Call [`flush`](Self::flush) afterwards to seal a
    /// partial buffer.
    pub fn append_jsonl(&self, reader: impl std::io::Read) -> Result<usize> {
        use std::io::BufRead;
        let mut reader = std::io::BufReader::new(reader);
        let mut line = String::new();
        let mut lineno = 0usize;
        let mut appended = 0usize;
        loop {
            line.clear();
            let read = reader.read_line(&mut line).map_err(|e| {
                StoreError::Io(std::io::Error::new(e.kind(), format!("line {}: {e}", lineno + 1)))
            })?;
            if read == 0 {
                break;
            }
            lineno += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let record = Record::from_json(trimmed)
                .map_err(|e| StoreError::Validation(format!("line {lineno}: {e}")))?;
            self.append(record)
                .map_err(|e| StoreError::Validation(format!("line {lineno}: {e}")))?;
            appended += 1;
        }
        Ok(appended)
    }

    /// Seals any buffered rows into a delta segment and commits it.
    /// Returns the resulting generation (unchanged if the buffer was
    /// empty).
    pub fn flush(&self) -> Result<u64> {
        let mut state = self.state.lock().expect("live state");
        self.flush_locked(&mut state)
    }

    fn flush_locked(&self, state: &mut LiveState) -> Result<u64> {
        if state.buffer.is_empty() {
            return Ok(state.generation);
        }
        let records = std::mem::take(&mut state.buffer);
        state.buffer_bytes = 0;
        let segment = RowStore::build(records.iter());
        let mut index = StoreIndex::default();
        for (i, record) in records.iter().enumerate() {
            index.note_record(i as u32, record);
        }
        let file = delta_file_name(state.next_delta);
        let staged = self.dir.join(format!("{file}.tmp"));
        let entry = DeltaEntry {
            file: file.clone(),
            rows: records.len(),
            checksum: segment.blob_checksum(),
        };
        // Write the segment, then commit it via the manifest; mutate state
        // only after the commit so any error leaves the buffer intact.
        let committed = (|| -> Result<()> {
            segment.write_file(&staged)?;
            std::fs::rename(&staged, self.dir.join(&file))?;
            let mut manifest = Self::manifest_of(state);
            manifest.generation += 1;
            manifest.next_delta += 1;
            manifest.deltas.push(entry.clone());
            manifest.write_atomic(&self.dir)
        })();
        if let Err(e) = committed {
            std::fs::remove_file(self.dir.join(&file)).ok();
            std::fs::remove_file(&staged).ok();
            state.buffer_bytes = RowStore::approx_bytes(records.iter());
            state.buffer = records;
            return Err(e);
        }
        state.generation += 1;
        state.next_delta += 1;
        state.deltas.push(DeltaSegment {
            file: entry.file,
            rows: entry.rows,
            checksum: entry.checksum,
            store: segment,
            index,
        });
        self.rebuild_snapshot(state);
        Ok(state.generation)
    }

    /// The current sealed snapshot: base + sealed deltas at this
    /// generation, pinned. Cheap (refcount clones, no row data copied).
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        Arc::clone(&self.snapshot.lock().expect("live snapshot"))
    }

    /// Recomputes every segment checksum (base shards and deltas) against
    /// the values recorded at seal time.
    pub fn verify(&self) -> Result<()> {
        let state = self.state.lock().expect("live state");
        state.base.verify()?;
        for delta in &state.deltas {
            if delta.store.blob_checksum() != delta.checksum {
                return Err(StoreError::Corrupt(format!("{}: checksum mismatch", delta.file)));
            }
        }
        Ok(())
    }

    fn manifest_of(state: &LiveState) -> LiveManifest {
        LiveManifest {
            generation: state.generation,
            base: state.base_dir.clone(),
            next_delta: state.next_delta,
            deltas: state
                .deltas
                .iter()
                .map(|d| DeltaEntry { file: d.file.clone(), rows: d.rows, checksum: d.checksum })
                .collect(),
        }
    }

    fn snapshot_of(state: &LiveState) -> StoreSnapshot {
        let merged =
            state.base.with_extra_segments(state.deltas.iter().map(|d| (&d.store, &d.index)));
        StoreSnapshot::new(
            state.generation,
            state.base.len(),
            state.deltas.iter().map(|d| d.rows).sum(),
            state.deltas.len(),
            merged,
        )
    }

    fn rebuild_snapshot(&self, state: &LiveState) {
        *self.snapshot.lock().expect("live snapshot") = Arc::new(Self::snapshot_of(state));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{PayloadValue, TaskLabel, TAG_TRAIN};
    use crate::schema::example_schema;

    fn record(i: usize) -> Record {
        Record::new()
            .with_payload("query", PayloadValue::Singleton(format!("live row {i}")))
            .with_label(
                "Intent",
                "weak1",
                TaskLabel::MulticlassOne(if i.is_multiple_of(2) { "Age" } else { "Height" }.into()),
            )
            .with_tag(TAG_TRAIN)
    }

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("overton-live-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn append_seal_snapshot_lifecycle() {
        let dir = temp("lifecycle");
        let live = LiveStore::create_from_with(
            &dir,
            ShardedStore::from_records(example_schema(), &[], 1),
            LiveStoreConfig { delta_rows: 10, ..Default::default() },
        )
        .unwrap();
        assert_eq!(live.generation(), 0);

        // Buffered rows are invisible until sealed.
        for i in 0..7 {
            live.append(record(i)).unwrap();
        }
        assert_eq!(live.pending_rows(), 7);
        assert_eq!(live.snapshot().len(), 0);

        // Explicit flush seals a delta and bumps the generation.
        assert_eq!(live.flush().unwrap(), 1);
        assert_eq!(live.pending_rows(), 0);
        let snap1 = live.snapshot();
        assert_eq!((snap1.generation(), snap1.len(), snap1.num_deltas()), (1, 7, 1));
        assert_eq!(snap1.store().index().train_rows().len(), 7);

        // Hitting the row target seals automatically.
        for i in 7..17 {
            live.append(record(i)).unwrap();
        }
        assert_eq!(live.pending_rows(), 0, "row target must auto-seal");
        assert_eq!(live.generation(), 2);
        let snap2 = live.snapshot();
        assert_eq!((snap2.len(), snap2.num_deltas()), (17, 2));

        // The pinned earlier snapshot is untouched.
        assert_eq!(snap1.len(), 7);
        for i in 0..17 {
            assert_eq!(snap2.store().get(i).unwrap(), record(i));
        }
        live.verify().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_restores_the_sealed_world() {
        let dir = temp("reopen");
        let live = LiveStore::create(&dir, example_schema()).unwrap();
        for i in 0..25 {
            live.append(record(i)).unwrap();
        }
        live.flush().unwrap();
        let generation = live.generation();
        let rows: Vec<Record> = (0..25).map(|i| live.snapshot().store().get(i).unwrap()).collect();
        drop(live);

        let back = LiveStore::open(&dir).unwrap();
        assert_eq!(back.generation(), generation);
        assert_eq!(back.sealed_rows(), 25);
        let snap = back.snapshot();
        for (i, want) in rows.iter().enumerate() {
            assert_eq!(&snap.store().get(i).unwrap(), want);
        }
        assert_eq!(snap.store().index().train_rows().len(), 25);
        back.verify().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_validates_against_the_schema() {
        let dir = temp("validate");
        let live = LiveStore::create(&dir, example_schema()).unwrap();
        let bad =
            Record::new().with_label("Intent", "w", TaskLabel::MulticlassOne("NotAClass".into()));
        assert!(live.append(bad).is_err());
        assert_eq!(live.pending_rows(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_jsonl_counts_and_reports_lines() {
        let dir = temp("jsonl");
        let live = LiveStore::create(&dir, example_schema()).unwrap();
        let jsonl: String = (0..5).map(|i| format!("{}\n\n", record(i).to_json())).collect();
        assert_eq!(live.append_jsonl(jsonl.as_bytes()).unwrap(), 5);
        live.flush().unwrap();
        assert_eq!(live.sealed_rows(), 5);

        let bad = format!("{}\nnot json\n", record(9).to_json());
        let err = live.append_jsonl(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = temp("clobber");
        LiveStore::create(&dir, example_schema()).unwrap();
        assert!(LiveStore::create(&dir, example_schema()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_from_seeds_the_base() {
        let dir = temp("seeded");
        let records: Vec<Record> = (0..30).map(record).collect();
        let base = ShardedStore::from_records(example_schema(), &records, 3);
        let live = LiveStore::create_from(&dir, base).unwrap();
        assert_eq!(live.sealed_rows(), 30);
        live.append(record(30)).unwrap();
        live.flush().unwrap();
        let snap = live.snapshot();
        assert_eq!(snap.len(), 31);
        assert_eq!((snap.base_rows(), snap.delta_rows()), (30, 1));
        assert_eq!(snap.store().get(30).unwrap(), record(30));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_delta_fails_open_naming_the_file() {
        let dir = temp("corrupt");
        let live = LiveStore::create(&dir, example_schema()).unwrap();
        for i in 0..8 {
            live.append(record(i)).unwrap();
        }
        live.flush().unwrap();
        drop(live);
        let path = dir.join("delta-000000.ovrs");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        let err = LiveStore::open(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("delta-000000.ovrs"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_orphans() {
        let dir = temp("sweep");
        let live = LiveStore::create(&dir, example_schema()).unwrap();
        for i in 0..4 {
            live.append(record(i)).unwrap();
        }
        live.flush().unwrap();
        drop(live);
        // Simulate crash leftovers: a staged manifest, an unreferenced
        // delta, an abandoned base dir.
        std::fs::write(dir.join("LIVE.json.tmp"), "half-written").unwrap();
        std::fs::write(dir.join("delta-000099.ovrs"), "orphan").unwrap();
        std::fs::create_dir_all(dir.join("base-0000000099.tmp")).unwrap();
        std::fs::create_dir_all(dir.join("base-0000000042")).unwrap();
        let live = LiveStore::open(&dir).unwrap();
        assert!(!dir.join("LIVE.json.tmp").exists());
        assert!(!dir.join("delta-000099.ovrs").exists());
        assert!(!dir.join("base-0000000099.tmp").exists());
        assert!(!dir.join("base-0000000042").exists());
        assert_eq!(live.sealed_rows(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}

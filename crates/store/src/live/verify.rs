//! Offline integrity audit of a store directory, segment by segment
//! (the engine behind `overton store verify <dir>`).

use super::manifest::{LiveManifest, LIVE_MANIFEST};
use crate::error::Result;
use crate::rowstore::{RowStore, ShardedStore};
use std::path::Path;

/// Verification outcome for one segment (a base directory, one delta
/// file, or one shard of a plain sealed store).
#[derive(Debug, Clone)]
pub struct SegmentStatus {
    /// Segment name relative to the audited directory.
    pub name: String,
    /// Rows the segment holds (0 when it could not be read).
    pub rows: usize,
    /// True when the segment read back clean and matched its recorded
    /// checksum.
    pub ok: bool,
    /// Human-readable detail: row/shard counts when ok, the precise error
    /// otherwise.
    pub detail: String,
}

/// The full audit result for one directory.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The live generation id (`None` when the directory is a plain
    /// sealed [`ShardedStore`] directory).
    pub generation: Option<u64>,
    /// Per-segment outcomes, manifest order.
    pub segments: Vec<SegmentStatus>,
}

impl VerifyReport {
    /// True when every segment verified clean.
    pub fn ok(&self) -> bool {
        self.segments.iter().all(|s| s.ok)
    }
}

/// Audits a store directory segment by segment: a live store directory
/// (has `LIVE.json`) is checked base + every delta against the manifest
/// checksums; a plain sealed store directory is checked shard by shard.
/// Segment failures are reported in the result, not returned as errors —
/// only an unreadable/corrupt manifest fails the audit outright.
pub fn verify_dir(dir: impl AsRef<Path>) -> Result<VerifyReport> {
    let dir = dir.as_ref();
    if dir.join(LIVE_MANIFEST).exists() {
        verify_live_dir(dir)
    } else {
        verify_sharded_dir(dir)
    }
}

fn verify_live_dir(dir: &Path) -> Result<VerifyReport> {
    let manifest = LiveManifest::read(dir)?;
    let mut segments = Vec::with_capacity(manifest.deltas.len() + 1);
    segments.push(match ShardedStore::read_dir(dir.join(&manifest.base)) {
        Ok(base) => SegmentStatus {
            name: manifest.base.clone(),
            rows: base.len(),
            ok: true,
            detail: format!("{} rows, {} shards", base.len(), base.num_shards()),
        },
        Err(e) => {
            SegmentStatus { name: manifest.base.clone(), rows: 0, ok: false, detail: e.to_string() }
        }
    });
    for entry in &manifest.deltas {
        let status = match RowStore::read_file(dir.join(&entry.file)) {
            Ok(store) if store.blob_checksum() != entry.checksum => SegmentStatus {
                name: entry.file.clone(),
                rows: store.len(),
                ok: false,
                detail: "checksum does not match the live manifest".into(),
            },
            Ok(store) if store.len() != entry.rows => SegmentStatus {
                name: entry.file.clone(),
                rows: store.len(),
                ok: false,
                detail: format!("row count {} disagrees with manifest {}", store.len(), entry.rows),
            },
            Ok(store) => SegmentStatus {
                name: entry.file.clone(),
                rows: store.len(),
                ok: true,
                detail: format!("{} rows", store.len()),
            },
            Err(e) => SegmentStatus {
                name: entry.file.clone(),
                rows: 0,
                ok: false,
                detail: e.to_string(),
            },
        };
        segments.push(status);
    }
    Ok(VerifyReport { generation: Some(manifest.generation), segments })
}

fn verify_sharded_dir(dir: &Path) -> Result<VerifyReport> {
    let segments = match ShardedStore::read_dir(dir) {
        Ok(store) => (0..store.num_shards())
            .map(|s| SegmentStatus {
                name: format!("shard-{s:04}.ovrs"),
                rows: store.shard(s).len(),
                ok: true,
                detail: format!(
                    "{} rows, checksum {}",
                    store.shard(s).len(),
                    store.shard_checksums()[s]
                ),
            })
            .collect(),
        Err(e) => vec![SegmentStatus {
            name: dir.display().to_string(),
            rows: 0,
            ok: false,
            detail: e.to_string(),
        }],
    };
    Ok(VerifyReport { generation: None, segments })
}

#[cfg(test)]
mod tests {
    use super::super::{LiveStore, LiveStoreConfig};
    use super::*;
    use crate::record::{PayloadValue, Record, TaskLabel, TAG_TRAIN};
    use crate::schema::example_schema;
    use std::path::PathBuf;

    fn record(i: usize) -> Record {
        Record::new()
            .with_payload("query", PayloadValue::Singleton(format!("verify row {i}")))
            .with_label("Intent", "weak1", TaskLabel::MulticlassOne("Age".into()))
            .with_tag(TAG_TRAIN)
    }

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("overton-verify-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn clean_live_dir_reports_every_segment_ok() {
        let dir = temp("clean");
        let live = LiveStore::create_from_with(
            &dir,
            ShardedStore::from_records(example_schema(), &[], 1),
            LiveStoreConfig { delta_rows: 5, ..Default::default() },
        )
        .unwrap();
        for i in 0..12 {
            live.append(record(i)).unwrap();
        }
        live.flush().unwrap();
        let report = verify_dir(&dir).unwrap();
        assert_eq!(report.generation, Some(live.generation()));
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.segments.len(), 4, "base + 3 deltas: {report:?}");
        assert_eq!(report.segments[1].rows, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_delta_is_flagged_not_fatal() {
        let dir = temp("flag");
        let live = LiveStore::create(&dir, example_schema()).unwrap();
        for i in 0..6 {
            live.append(record(i)).unwrap();
        }
        live.flush().unwrap();
        drop(live);
        let path = dir.join("delta-000000.ovrs");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();

        let report = verify_dir(&dir).unwrap();
        assert!(!report.ok());
        let bad = report.segments.iter().find(|s| !s.ok).unwrap();
        assert_eq!(bad.name, "delta-000000.ovrs");
        assert!(report.segments[0].ok, "base must still verify: {report:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plain_sharded_dir_verifies_per_shard() {
        let dir = temp("sharded");
        let records: Vec<Record> = (0..30).map(record).collect();
        let store = ShardedStore::from_records(example_schema(), &records, 3);
        store.write_dir(&dir).unwrap();
        let report = verify_dir(&dir).unwrap();
        assert_eq!(report.generation, None);
        assert!(report.ok());
        assert_eq!(report.segments.len(), 3);
        assert_eq!(report.segments.iter().map(|s| s.rows).sum::<usize>(), 30);

        // Corruption surfaces as a failed report, not an Err.
        let path = dir.join("shard-0001.ovrs");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        let report = verify_dir(&dir).unwrap();
        assert!(!report.ok());
        assert!(report.segments[0].detail.contains("shard-0001.ovrs"), "{report:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The live store's generation header: `LIVE.json`.
//!
//! One small self-checksummed JSON document names the current sealed
//! world: the base directory, the ordered delta segment files with their
//! row counts and checksums, the monotonically increasing generation
//! number, and the next delta sequence number. Every mutation of the
//! sealed set (a delta seal, a compaction) commits by atomically renaming
//! a staged `LIVE.json.tmp` over `LIVE.json` — readers either see the old
//! generation in full or the new one in full, never a mix.

use crate::error::{Result, StoreError};
use crate::rowstore::fnv1a;
use std::path::Path;

/// File name of the live store's generation header.
pub const LIVE_MANIFEST: &str = "LIVE.json";

/// On-disk format version of the live manifest.
pub const LIVE_FORMAT_VERSION: u32 = 1;

/// One sealed delta segment as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DeltaEntry {
    /// Segment file name within the live directory (`delta-NNNNNN.ovrs`).
    pub file: String,
    /// Rows in the segment.
    pub rows: usize,
    /// FNV-1a checksum of the segment's row blob, as recorded at seal
    /// time.
    pub checksum: u64,
}

/// The parsed generation header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LiveManifest {
    /// Monotonic commit counter: +1 on every delta seal and compaction.
    pub generation: u64,
    /// Directory name (relative to the live dir) of the sealed base store.
    pub base: String,
    /// Sequence number the next sealed delta will use (never reused, even
    /// after compaction removes old segments).
    pub next_delta: u64,
    /// Sealed delta segments, in append order.
    pub deltas: Vec<DeltaEntry>,
}

impl LiveManifest {
    /// The canonical string the self-checksum covers: every field that
    /// determines what `LiveStore::open` will load.
    fn core(&self) -> String {
        let list = self
            .deltas
            .iter()
            .map(|d| format!("{}:{}:{}", d.file, d.rows, d.checksum))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "live{LIVE_FORMAT_VERSION}|{}|{}|{}|{list}",
            self.generation, self.base, self.next_delta
        )
    }

    /// Renders the manifest as its JSON document.
    pub fn to_json(&self) -> String {
        let deltas = self
            .deltas
            .iter()
            .map(|d| {
                format!(
                    "{{\"file\": \"{}\", \"rows\": {}, \"checksum\": \"{}\"}}",
                    d.file, d.rows, d.checksum
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"version\": {LIVE_FORMAT_VERSION}, \"generation\": \"{}\", \"base\": \"{}\", \
             \"next_delta\": \"{}\", \"deltas\": [{deltas}], \"manifest_checksum\": \"{}\"}}\n",
            self.generation,
            self.base,
            self.next_delta,
            fnv1a(self.core().as_bytes()),
        )
    }

    /// Parses and verifies a manifest document (self-checksum included).
    pub fn parse(text: &str) -> Result<Self> {
        let corrupt = |what: &str| StoreError::Corrupt(format!("live manifest: {what}"));
        let serde_json::Value::Object(map) = serde_json::from_str_value(text)? else {
            return Err(corrupt("not an object"));
        };
        let parse_u64 = |v: Option<&serde_json::Value>| -> Option<u64> {
            v.and_then(|v| v.as_str()).and_then(|s| s.parse().ok())
        };
        let version = map
            .get("version")
            .and_then(|v| v.as_i64())
            .ok_or_else(|| corrupt("missing version"))?;
        if version != i64::from(LIVE_FORMAT_VERSION) {
            return Err(corrupt(&format!("unsupported format version {version}")));
        }
        let generation =
            parse_u64(map.get("generation")).ok_or_else(|| corrupt("missing generation"))?;
        let next_delta =
            parse_u64(map.get("next_delta")).ok_or_else(|| corrupt("missing next_delta"))?;
        let base = map
            .get("base")
            .and_then(|v| v.as_str())
            .ok_or_else(|| corrupt("missing base"))?
            .to_string();
        // The base name is joined onto the live dir: refuse anything that
        // could escape it.
        if !base.starts_with("base-") || base.contains('/') || base.contains("..") {
            return Err(corrupt(&format!("suspicious base name {base:?}")));
        }
        let deltas = match map.get("deltas") {
            Some(serde_json::Value::Array(items)) => items
                .iter()
                .map(|item| -> Option<DeltaEntry> {
                    let serde_json::Value::Object(d) = item else { return None };
                    let file = d.get("file")?.as_str()?.to_string();
                    if !file.starts_with("delta-") || file.contains('/') || file.contains("..") {
                        return None;
                    }
                    let rows = d.get("rows")?.as_i64().filter(|&r| r >= 0)? as usize;
                    let checksum = parse_u64(d.get("checksum"))?;
                    Some(DeltaEntry { file, rows, checksum })
                })
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| corrupt("malformed delta entry"))?,
            _ => return Err(corrupt("missing deltas")),
        };
        let manifest = Self { generation, base, next_delta, deltas };
        let recorded = parse_u64(map.get("manifest_checksum"))
            .ok_or_else(|| corrupt("missing self-checksum"))?;
        if fnv1a(manifest.core().as_bytes()) != recorded {
            return Err(corrupt("self-checksum mismatch"));
        }
        Ok(manifest)
    }

    /// Reads `dir/LIVE.json`. A missing file says "not a live store"
    /// instead of a bare I/O error.
    pub fn read(dir: &Path) -> Result<Self> {
        let path = dir.join(LIVE_MANIFEST);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::Corrupt(format!(
                    "{}: not a live store (missing {LIVE_MANIFEST})",
                    dir.display()
                ))
            } else {
                StoreError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))
            }
        })?;
        Self::parse(&text)
    }

    /// Atomically commits the manifest: writes `LIVE.json.tmp`, then
    /// renames it over `LIVE.json`. The rename is the commit point of
    /// every sealed-set mutation.
    pub fn write_atomic(&self, dir: &Path) -> Result<()> {
        let staged = dir.join(format!("{LIVE_MANIFEST}.tmp"));
        std::fs::write(&staged, self.to_json())?;
        std::fs::rename(&staged, dir.join(LIVE_MANIFEST))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> LiveManifest {
        LiveManifest {
            generation: 7,
            base: "base-0000000003".into(),
            next_delta: 5,
            deltas: vec![
                DeltaEntry { file: "delta-000003.ovrs".into(), rows: 12, checksum: 99 },
                DeltaEntry { file: "delta-000004.ovrs".into(), rows: 3, checksum: 1234567 },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let m = manifest();
        assert_eq!(LiveManifest::parse(&m.to_json()).unwrap(), m);
        let empty = LiveManifest {
            generation: 0,
            base: "base-0000000000".into(),
            next_delta: 0,
            deltas: vec![],
        };
        assert_eq!(LiveManifest::parse(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn tampered_fields_fail_the_self_checksum() {
        let text = manifest().to_json();
        for (from, to) in [
            ("\"generation\": \"7\"", "\"generation\": \"8\""),
            ("\"rows\": 12", "\"rows\": 13"),
            ("base-0000000003", "base-0000000004"),
            ("\"next_delta\": \"5\"", "\"next_delta\": \"6\""),
        ] {
            let tampered = text.replace(from, to);
            assert_ne!(tampered, text, "{from} not present");
            let err = LiveManifest::parse(&tampered).unwrap_err();
            assert!(err.to_string().contains("self-checksum"), "{from}: {err}");
        }
    }

    #[test]
    fn hostile_segment_names_rejected() {
        for (from, to) in
            [("base-0000000003", "../escape"), ("delta-000003.ovrs", "../../etc/passwd")]
        {
            let tampered = manifest().to_json().replace(from, to);
            assert!(LiveManifest::parse(&tampered).is_err(), "{to} accepted");
        }
    }

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("overton-live-man-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = manifest();
        m.write_atomic(&dir).unwrap();
        assert_eq!(LiveManifest::read(&dir).unwrap(), m);
        assert!(!dir.join("LIVE.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_says_not_a_live_store() {
        let dir = std::env::temp_dir().join(format!("overton-live-none-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = LiveManifest::read(&dir).unwrap_err();
        assert!(err.to_string().contains("not a live store"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The staged pipeline run: Figure 1 as an explicit, resumable state
//! machine.
//!
//! A [`Run`] executes the paper's loop as six explicit [`Stage`]s — Ingest
//! → Combine → Search → Train → Package → Evaluate — each producing a
//! typed, serializable artifact under the run directory (`runs/<id>/`) and
//! a per-stage wall-clock + record-count entry in the [`RunReport`]. The
//! unit of monitoring is the *run*, not the model: the report is what an
//! engineer (or the `overton report` CLI) reads to understand what a
//! retrain did, and the persisted stage artifacts are what let a run
//! resume from any completed stage instead of starting over.
//!
//! Run-directory layout (written only when the owning
//! [`Project`](crate::Project) has a root):
//!
//! ```text
//! runs/<id>/
//!   store/              sealed sharded row store (Ingest)
//!   combine.json        per-source diagnostics + example counts (Combine)
//!   search.json         chosen architecture + all trials (Search)
//!   train.json          training report (Train)
//!   train.model.json    weights snapshot, a loadable artifact (Train)
//!   artifact.model.json the packaged deployable artifact (Package)
//!   evaluation.json     per-task quality reports (Evaluate)
//!   baseline.json       traffic baseline for drift detection (Evaluate)
//!   report.json         the RunReport; doubles as the completion record
//!   trace.jsonl         one Span JSON line per completed stage
//! ```
//!
//! `trace.jsonl` uses the same [`Span`](overton_serving::Span) schema the
//! socket tier records per request, with stage names instead of
//! request-path names — `overton trace <dir>` renders either one.

use crate::error::Error;
use crate::pipeline::{OvertonBuild, OvertonOptions};
use crate::workflows::{diagnose_reports, mean_accuracy, scored_accuracies, SliceDiagnosis};
use overton_model::{
    evaluate_store, prepare_store, prepare_store_with_space, search, train_model, CompiledModel,
    DeployableModel, Evaluation, FeatureSpace, ModelConfig, PreparedData, Server, TrainReport,
    TrialResult,
};
use overton_serving::{Span, TrafficBaseline};
use overton_store::{ShardedStore, StoreError};
use overton_supervision::SourceDiagnostics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One stage of the pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Parse + validate the two files (or adopt a sealed store) and seal
    /// the sharded row store.
    Ingest,
    /// Combine multi-source supervision into probabilistic targets.
    Combine,
    /// Coarse architecture search (a no-op pick of the base model when no
    /// tuning spec is configured).
    Search,
    /// Train the compiled multitask model.
    Train,
    /// Package the deployable artifact with its serving signature.
    Package,
    /// Evaluate on the test split: per-task, per-tag, per-slice reports.
    Evaluate,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 6] = [
        Stage::Ingest,
        Stage::Combine,
        Stage::Search,
        Stage::Train,
        Stage::Package,
        Stage::Evaluate,
    ];

    /// The stage's lowercase name (stable; used by the CLI and in files).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Combine => "combine",
            Stage::Search => "search",
            Stage::Train => "train",
            Stage::Package => "package",
            Stage::Evaluate => "evaluate",
        }
    }

    /// The following stage, or `None` after [`Stage::Evaluate`].
    pub fn next(self) -> Option<Stage> {
        let i = Stage::ALL.iter().position(|&s| s == self).expect("stage in ALL");
        Stage::ALL.get(i + 1).copied()
    }

    /// Parses a stage name as printed by [`Stage::name`] (case-insensitive).
    pub fn parse(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name().eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Telemetry for one executed stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// The stage.
    pub stage: Stage,
    /// Wall-clock time the stage took.
    pub wall_ms: u64,
    /// How many records/items the stage processed (rows ingested, examples
    /// combined, trials searched, examples trained on, weights packaged,
    /// rows evaluated).
    pub records: usize,
}

/// The run-level monitoring artifact: per-stage telemetry plus the final
/// test accuracies. Persisted as `report.json`, which also serves as the
/// run's stage-completion record for resume.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// The run's id (its directory name under `runs/`).
    pub run_id: String,
    /// One entry per completed stage, in execution order.
    pub stages: Vec<StageReport>,
    /// Overall test accuracy per task, for tasks that produced an
    /// `overall` row (tasks without scored gold examples are absent, not
    /// zero).
    pub task_accuracy: BTreeMap<String, f64>,
    /// Mean of [`task_accuracy`](Self::task_accuracy) — the mean over
    /// *scored* tasks only, so unscored tasks cannot drag it down.
    pub mean_test_accuracy: f64,
    /// The live-store snapshot generation the run trained on, when the
    /// project was built from a [`StoreSnapshot`](overton_store::StoreSnapshot)
    /// (absent for two-file and plain-store projects). Serde-defaulted so
    /// reports persisted before this field parse unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub snapshot_generation: Option<u64>,
    /// True when the run warm-started from a previous run's packaged
    /// weights (the incremental retrain path) instead of training from a
    /// fresh initialization.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub warm_started: bool,
    /// Seeded-bootstrap 95% interval on
    /// [`mean_test_accuracy`](Self::mean_test_accuracy) (resampling over
    /// the scored per-task accuracies; absent when no task scored or for
    /// reports persisted before this field existed).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mean_accuracy_ci: Option<overton_monitor::stats::Interval>,
    /// Test-set reuse budget remaining after this run's evaluate stage
    /// debited the project meter (ease.ml/meter-style ledger at
    /// `<root>/meter.json`). Absent for rootless runs and for reports
    /// persisted before the meter existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub meter_remaining: Option<u64>,
    /// Statistical evidence behind the promotion decision this run was
    /// part of, when it was produced by a retrain-and-compare workflow
    /// (absent for plain builds and for pre-gate reports).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub promotion: Option<overton_monitor::stats::PromotionEvidence>,
}

impl RunReport {
    /// Telemetry for one stage, if it completed.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// True when the stage has a telemetry entry (i.e. completed).
    pub fn completed(&self, stage: Stage) -> bool {
        self.stage(stage).is_some()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run: {}", self.run_id)?;
        writeln!(f, "{:>9}  {:>9}  {:>9}", "stage", "wall_ms", "records")?;
        for s in &self.stages {
            writeln!(f, "{:>9}  {:>9}  {:>9}", s.stage.name(), s.wall_ms, s.records)?;
        }
        for (task, acc) in &self.task_accuracy {
            writeln!(f, "test accuracy {task}: {acc:.4}")?;
        }
        if !self.task_accuracy.is_empty() {
            writeln!(
                f,
                "mean test accuracy: {:.4} ({} scored tasks)",
                self.mean_test_accuracy,
                self.task_accuracy.len()
            )?;
        }
        if let Some(ci) = &self.mean_accuracy_ci {
            writeln!(f, "mean accuracy 95% bootstrap CI: {ci}")?;
        }
        if let Some(remaining) = self.meter_remaining {
            writeln!(f, "test-set reuse budget remaining: {remaining}")?;
        }
        if let Some(promotion) = &self.promotion {
            writeln!(f, "promotion: {promotion}")?;
        }
        Ok(())
    }
}

/// The combine stage's persisted artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CombineArtifact {
    diagnostics: BTreeMap<String, Vec<SourceDiagnostics>>,
    train_examples: usize,
    dev_examples: usize,
}

/// The search stage's persisted artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SearchArtifact {
    chosen: ModelConfig,
    trials: Vec<TrialResult>,
}

/// A staged, resumable pipeline execution. Created by
/// [`Project::start`](crate::Project::start) (which performs
/// [`Stage::Ingest`]); drive it with [`advance`](Run::advance) or
/// [`complete`](Run::complete).
pub struct Run {
    pub(crate) id: String,
    pub(crate) dir: Option<PathBuf>,
    pub(crate) options: OvertonOptions,
    /// Shared with the owning project when the source is a sealed store,
    /// so starting a run never deep-copies the shard blobs.
    pub(crate) store: Arc<ShardedStore>,
    pub(crate) prepared: Option<PreparedData>,
    pub(crate) diagnostics: BTreeMap<String, Vec<SourceDiagnostics>>,
    pub(crate) train_examples: usize,
    pub(crate) dev_examples: usize,
    pub(crate) chosen_config: Option<ModelConfig>,
    pub(crate) trials: Vec<TrialResult>,
    pub(crate) model: Option<CompiledModel>,
    pub(crate) space: Option<FeatureSpace>,
    pub(crate) train_report: Option<TrainReport>,
    pub(crate) artifact: Option<DeployableModel>,
    pub(crate) evaluation: Option<Evaluation>,
    pub(crate) baseline: Option<TrafficBaseline>,
    /// A previous run's packaged weights to warm-start from (the
    /// incremental retrain path): combine encodes in this artifact's
    /// feature space, search adopts its architecture, and train continues
    /// from its weights instead of a fresh initialization.
    pub(crate) warm: Option<Arc<DeployableModel>>,
    pub(crate) report: RunReport,
    /// The next stage to execute; `None` once the run is complete.
    pub(crate) cursor: Option<Stage>,
    /// Origin instant the `trace.jsonl` span offsets are measured from.
    /// Shifted back in [`note_stage`](Run::note_stage) when a stage
    /// started before construction (ingest runs in `Project::start`), so
    /// offsets are always non-negative.
    trace_origin: Instant,
}

impl fmt::Debug for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Run")
            .field("id", &self.id)
            .field("dir", &self.dir)
            .field("rows", &self.store.len())
            .field("next_stage", &self.cursor)
            .field("completed", &self.report.stages.iter().map(|s| s.stage).collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl Run {
    pub(crate) fn new(
        id: String,
        dir: Option<PathBuf>,
        options: OvertonOptions,
        store: Arc<ShardedStore>,
    ) -> Self {
        let report = RunReport { run_id: id.clone(), ..RunReport::default() };
        Self {
            id,
            dir,
            options,
            store,
            prepared: None,
            diagnostics: BTreeMap::new(),
            train_examples: 0,
            dev_examples: 0,
            chosen_config: None,
            trials: Vec::new(),
            model: None,
            space: None,
            train_report: None,
            artifact: None,
            evaluation: None,
            baseline: None,
            warm: None,
            report,
            cursor: Some(Stage::Combine),
            trace_origin: Instant::now(),
        }
    }

    /// The run id (`run-NNNN` for persisted runs).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The run directory, when the project persists runs.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The sealed store the run operates on.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Per-stage telemetry plus final accuracies.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The next stage [`advance`](Run::advance) would execute, or `None`
    /// when the run is complete.
    pub fn next_stage(&self) -> Option<Stage> {
        self.cursor
    }

    /// True once every stage has executed.
    pub fn is_complete(&self) -> bool {
        self.cursor.is_none()
    }

    /// The searched (or base) architecture, once [`Stage::Search`] ran.
    pub fn chosen_config(&self) -> Option<&ModelConfig> {
        self.chosen_config.as_ref()
    }

    /// All search trials, best first (empty when search was skipped).
    pub fn trials(&self) -> &[TrialResult] {
        &self.trials
    }

    /// Per-task supervision diagnostics, once [`Stage::Combine`] ran.
    pub fn diagnostics(&self) -> &BTreeMap<String, Vec<SourceDiagnostics>> {
        &self.diagnostics
    }

    /// The training summary, once [`Stage::Train`] ran.
    pub fn train_report(&self) -> Option<&TrainReport> {
        self.train_report.as_ref()
    }

    /// The packaged deployable artifact, once [`Stage::Package`] ran.
    pub fn artifact(&self) -> Option<&DeployableModel> {
        self.artifact.as_ref()
    }

    /// The test evaluation, once [`Stage::Evaluate`] ran.
    pub fn evaluation(&self) -> Option<&Evaluation> {
        self.evaluation.as_ref()
    }

    /// The traffic baseline captured over the test split during
    /// [`Stage::Evaluate`] (persisted as `baseline.json`): the reference
    /// distribution the deployment's drift detectors compare live
    /// traffic against.
    pub fn baseline(&self) -> Option<&TrafficBaseline> {
        self.baseline.as_ref()
    }

    /// Overall test accuracy of a task (0 before evaluation or for an
    /// unscored task).
    pub fn test_accuracy(&self, task: &str) -> f64 {
        self.evaluation.as_ref().map_or(0.0, |e| e.accuracy(task))
    }

    /// Mean test accuracy over the tasks that were actually scored
    /// (tasks without an `overall` row are excluded from numerator *and*
    /// denominator).
    pub fn mean_test_accuracy(&self) -> f64 {
        self.report.mean_test_accuracy
    }

    /// The monitoring worklist: `(task, slice)` pairs of the evaluation
    /// ranked by accuracy ascending, skipping slices with fewer than
    /// `min_count` scored examples. The re-homed
    /// [`worst_slices`](crate::worst_slices) workflow.
    pub fn worst_slices(&self, min_count: usize) -> Vec<SliceDiagnosis> {
        self.evaluation.as_ref().map_or_else(Vec::new, |e| diagnose_reports(&e.reports, min_count))
    }

    /// Executes the next stage, returning which one ran.
    pub fn advance(&mut self) -> Result<Stage, Error> {
        let stage =
            self.cursor.ok_or_else(|| Error::run(Stage::Evaluate, "run is already complete"))?;
        let start = Instant::now();
        let records = match stage {
            Stage::Ingest => unreachable!("ingest runs in Project::start"),
            Stage::Combine => self.run_combine()?,
            Stage::Search => self.run_search()?,
            Stage::Train => self.run_train()?,
            Stage::Package => self.run_package()?,
            Stage::Evaluate => self.run_evaluate()?,
        };
        self.note_stage(stage, start, records);
        self.cursor = stage.next();
        self.persist_report()?;
        Ok(stage)
    }

    /// Executes every remaining stage.
    pub fn complete(&mut self) -> Result<(), Error> {
        while !self.is_complete() {
            self.advance()?;
        }
        Ok(())
    }

    /// Consumes the run into the legacy [`OvertonBuild`] bundle. Fails if
    /// the run is not complete.
    pub fn into_build(self) -> Result<OvertonBuild, Error> {
        if !self.is_complete() {
            return Err(Error::run(
                self.cursor.expect("incomplete run has a cursor"),
                "run is not complete; call complete() first",
            ));
        }
        Ok(OvertonBuild {
            artifact: self.artifact.expect("complete run packaged"),
            model: self.model.expect("complete run trained"),
            space: self.space.expect("complete run has a feature space"),
            chosen_config: self.chosen_config.expect("complete run searched"),
            trials: self.trials,
            train_report: self.train_report.expect("complete run trained"),
            diagnostics: self.diagnostics,
            evaluation: self.evaluation.expect("complete run evaluated"),
        })
    }

    pub(crate) fn note_stage(&mut self, stage: Stage, start: Instant, records: usize) {
        let end = Instant::now();
        self.report.stages.push(StageReport {
            stage,
            wall_ms: end.duration_since(start).as_millis() as u64,
            records,
        });
        // Ingest starts in `Project::start`, before this Run exists; fold
        // its start into the origin so every span offset stays positive.
        if start < self.trace_origin {
            self.trace_origin = start;
        }
        self.append_trace_span(Span {
            name: stage.name().to_string(),
            start_micros: start.duration_since(self.trace_origin).as_micros() as u64,
            end_micros: end.duration_since(self.trace_origin).as_micros() as u64,
        });
    }

    /// Appends one stage span to `trace.jsonl` — the build-side twin of
    /// the socket tier's request traces, same [`Span`] schema. Best
    /// effort: a trace write failure never fails the stage.
    fn append_trace_span(&self, span: Span) {
        let Some(dir) = &self.dir else { return };
        let Ok(line) = serde_json::to_string(&span) else { return };
        let open =
            std::fs::OpenOptions::new().create(true).append(true).open(dir.join("trace.jsonl"));
        if let Ok(mut file) = open {
            use std::io::Write;
            let _ = writeln!(file, "{line}");
        }
    }

    // ---- stage executors ------------------------------------------------

    fn run_combine(&mut self) -> Result<usize, Error> {
        if self.store.index().train_rows().is_empty() {
            return Err(Error::NoTrainingData);
        }
        // Warm-started runs encode in the previous artifact's feature
        // space (unseen tokens map to `<unk>`), so the carried-over
        // weights keep their meaning; cold runs build the space from the
        // rows as usual.
        let prepared = match &self.warm {
            Some(warm) => {
                prepare_store_with_space(&self.store, &self.options.combine, warm.space.clone())?
            }
            None => prepare_store(&self.store, &self.options.combine)?,
        };
        if prepared.train.iter().all(|e| e.targets.is_empty()) {
            return Err(Error::NoTrainingData);
        }
        self.diagnostics = prepared.diagnostics.clone();
        self.train_examples = prepared.train.len();
        self.dev_examples = prepared.dev.len();
        let records = prepared.train.len() + prepared.dev.len();
        self.write_json(
            "combine.json",
            &CombineArtifact {
                diagnostics: self.diagnostics.clone(),
                train_examples: self.train_examples,
                dev_examples: self.dev_examples,
            },
        )?;
        self.space = Some(prepared.space.clone());
        self.prepared = Some(prepared);
        Ok(records)
    }

    fn run_search(&mut self) -> Result<usize, Error> {
        let prepared = self.prepared.as_ref().ok_or_else(|| {
            Error::run(Stage::Search, "combine output not in memory (resume from combine)")
        })?;
        // A warm-started run must keep the architecture its weights were
        // trained under — searching a new one would orphan them — so the
        // previous artifact's config wins over both the tuning spec and
        // the base model.
        let (chosen, trials) = match (&self.warm, &self.options.tuning) {
            (Some(warm), _) => (warm.config.clone(), Vec::new()),
            (None, Some(spec)) => search(
                self.store.schema(),
                &prepared.space,
                &prepared.train,
                &prepared.dev,
                spec,
                &self.options.base_model,
                self.options.pretrained.as_ref(),
                &self.options.search,
            ),
            (None, None) => (self.options.base_model.clone(), Vec::new()),
        };
        self.write_json(
            "search.json",
            &SearchArtifact { chosen: chosen.clone(), trials: trials.clone() },
        )?;
        let records = trials.len();
        self.chosen_config = Some(chosen);
        self.trials = trials;
        Ok(records)
    }

    fn run_train(&mut self) -> Result<usize, Error> {
        let prepared = self.prepared.as_ref().ok_or_else(|| {
            Error::run(Stage::Train, "combine output not in memory (resume from combine)")
        })?;
        let chosen = self
            .chosen_config
            .clone()
            .ok_or_else(|| Error::run(Stage::Train, "no architecture chosen (run search first)"))?;
        // Warm start: reinstantiate the previous run's weights and keep
        // training; otherwise compile fresh.
        let mut model = match &self.warm {
            Some(warm) => warm.instantiate(),
            None => CompiledModel::compile(
                self.store.schema(),
                &prepared.space,
                &chosen,
                self.options.pretrained.as_ref(),
            ),
        };
        let train_report =
            train_model(&mut model, &prepared.train, &prepared.dev, &self.options.train);
        self.write_json("train.json", &train_report)?;
        // The weights snapshot is itself a loadable artifact, which is what
        // makes the run resumable from `package` without retraining.
        let mut metadata = BTreeMap::new();
        metadata.insert("stage".into(), "train".into());
        metadata.insert("run".into(), self.id.clone());
        let snapshot = DeployableModel::package(&model, &prepared.space, metadata);
        self.write_bytes("train.model.json", &snapshot.to_bytes())?;
        let records = prepared.train.len();
        self.model = Some(model);
        self.train_report = Some(train_report);
        // Training is the last consumer of the combine intermediate
        // (encoded features + targets for every train/dev example); drop
        // it so a long-lived Run doesn't pin it through deploy/monitor.
        self.prepared = None;
        Ok(records)
    }

    fn run_package(&mut self) -> Result<usize, Error> {
        let model = self
            .model
            .as_ref()
            .ok_or_else(|| Error::run(Stage::Package, "no trained model (run train first)"))?;
        let space = self
            .space
            .as_ref()
            .ok_or_else(|| Error::run(Stage::Package, "no feature space (run combine first)"))?;
        let chosen = self
            .chosen_config
            .as_ref()
            .ok_or_else(|| Error::run(Stage::Package, "no architecture (run search first)"))?;
        let mut metadata = BTreeMap::new();
        metadata.insert("train_records".into(), self.train_examples.to_string());
        metadata.insert("dev_records".into(), self.dev_examples.to_string());
        metadata.insert("encoder".into(), format!("{:?}", chosen.encoder));
        metadata.insert("run".into(), self.id.clone());
        // Data lineage for the incremental path: which live-store
        // generation the weights saw, and whether they continued from a
        // previous run's artifact.
        if let Some(generation) = self.report.snapshot_generation {
            metadata.insert("snapshot_generation".into(), generation.to_string());
        }
        if self.warm.is_some() {
            metadata.insert("warm_started".into(), "true".into());
        }
        let artifact = DeployableModel::package(model, space, metadata);
        self.write_bytes("artifact.model.json", &artifact.to_bytes())?;
        let records = model.num_weights();
        self.artifact = Some(artifact);
        Ok(records)
    }

    fn run_evaluate(&mut self) -> Result<usize, Error> {
        let model = self
            .model
            .as_ref()
            .ok_or_else(|| Error::run(Stage::Evaluate, "no trained model (run train first)"))?;
        let space = self
            .space
            .as_ref()
            .ok_or_else(|| Error::run(Stage::Evaluate, "no feature space (run combine first)"))?;
        let rows = self.store.index().test_rows();
        let evaluation = evaluate_store(model, &self.store, rows, space)?;
        // Every look at the holdout spends statistical validity
        // (ease.ml/meter): debit the project-level reuse ledger before
        // reporting the numbers. Rootless/in-memory runs have no project
        // directory and therefore no ledger to debit. The debit saturates
        // rather than fails when the budget is exhausted — the remaining
        // balance (surfaced in the report, `/metrics` and `overton
        // meter`) is the warning, not a hard stop.
        if let Some(root) = self.dir.as_ref().and_then(|d| d.parent()).and_then(|p| p.parent()) {
            if !root.as_os_str().is_empty() {
                let mut ledger = overton_monitor::stats::MeterLedger::open_or_create(root)?;
                self.report.meter_remaining = Some(ledger.debit(&self.id, 1)?);
            }
        }
        // The filtered mean (shared kernel with `OvertonBuild`): only
        // tasks that produced an `overall` row enter numerator and
        // denominator.
        let task_accuracy = scored_accuracies(&evaluation.reports);
        self.report.mean_test_accuracy = mean_accuracy(&task_accuracy);
        // Seeded bootstrap over the scored per-task accuracies — the
        // non-binomial companion to the per-slice Clopper-Pearson bounds
        // in the quality reports. Seed 0 always: same evaluation, same
        // bounds, bit for bit.
        let accuracies: Vec<f64> = task_accuracy.values().copied().collect();
        self.report.mean_accuracy_ci = (!accuracies.is_empty()).then(|| {
            overton_monitor::stats::bootstrap_mean_interval(
                &accuracies,
                overton_monitor::stats::DEFAULT_ALPHA,
                1000,
                0,
            )
        });
        self.report.task_accuracy = task_accuracy;
        let records = rows.len();
        self.write_json("evaluation.json", &evaluation.reports)?;
        self.evaluation = Some(evaluation);
        // Capture the traffic baseline over the same split the artifact
        // was accepted on — the reference distribution deployments reload
        // for drift detection. The packaged artifact exists (Package runs
        // before Evaluate), so the baseline reflects exactly the served
        // weights. This is a second forward pass over the test rows
        // (evaluate_store just predicted them): a deliberate trade —
        // the baseline must come from the *served* artifact's outputs
        // (confidence + slice heads), which the shard-parallel
        // evaluation kernel does not surface; folding capture into it
        // is a cross-crate refactor to revisit if evaluate-stage wall
        // time ever matters.
        if !rows.is_empty() {
            let artifact = self.artifact.as_ref().expect("package stage ran before evaluate");
            let server = Server::load(artifact);
            let records: Vec<overton_store::Record> = rows
                .iter()
                .map(|&r| self.store.get(r as usize))
                .collect::<Result<_, StoreError>>()?;
            let baseline = TrafficBaseline::collect(&server, &records)?;
            self.write_json("baseline.json", &baseline)?;
            self.baseline = Some(baseline);
        }
        Ok(records)
    }

    // ---- persistence ----------------------------------------------------

    pub(crate) fn write_json<T: Serialize>(&self, file: &str, value: &T) -> Result<(), Error> {
        let Some(dir) = &self.dir else { return Ok(()) };
        let text = serde_json::to_string_pretty(value).map_err(StoreError::Json)?;
        std::fs::write(dir.join(file), text)?;
        Ok(())
    }

    pub(crate) fn write_bytes(&self, file: &str, bytes: &[u8]) -> Result<(), Error> {
        let Some(dir) = &self.dir else { return Ok(()) };
        std::fs::write(dir.join(file), bytes)?;
        Ok(())
    }

    pub(crate) fn persist_report(&self) -> Result<(), Error> {
        self.write_json("report.json", &self.report)
    }

    /// Records a retrain-and-compare promotion decision on this run: the
    /// full evidence goes into the report (re-persisted as `report.json`)
    /// and a summary into the packaged artifact's metadata (the artifact
    /// file is rewritten), so both the run's monitoring record and the
    /// deployable bytes carry the statistical trail.
    pub(crate) fn record_promotion(
        &mut self,
        evidence: &overton_monitor::stats::PromotionEvidence,
    ) -> Result<(), Error> {
        self.report.promotion = Some(evidence.clone());
        self.persist_report()?;
        if let Some(artifact) = self.artifact.as_mut() {
            let decision = if evidence.significant { "promote" } else { "hold" };
            artifact.metadata.insert("promotion".into(), decision.into());
            artifact
                .metadata
                .insert("promotion_p_value".into(), format!("{:.6}", evidence.p_value));
            if let Some(remaining) = evidence.meter_remaining {
                artifact.metadata.insert("meter_remaining".into(), remaining.to_string());
            }
            let bytes = artifact.to_bytes();
            self.write_bytes("artifact.model.json", &bytes)?;
        }
        Ok(())
    }

    // ---- resume ---------------------------------------------------------

    /// The files a stage writes into the run directory (the persisted
    /// store aside, which ingest always rewrites wholesale).
    fn stage_files(stage: Stage) -> &'static [&'static str] {
        match stage {
            Stage::Ingest => &[],
            Stage::Combine => &["combine.json"],
            Stage::Search => &["search.json"],
            Stage::Train => &["train.json", "train.model.json"],
            Stage::Package => &["artifact.model.json"],
            Stage::Evaluate => &["evaluation.json", "baseline.json"],
        }
    }

    /// Deletes the artifacts of `from` and every later stage, so a run
    /// directory mid-resume never pairs fresh early-stage state with
    /// stale downstream artifacts (e.g. a re-ingested store next to an
    /// old `artifact.model.json`).
    pub(crate) fn clear_stage_artifacts(dir: &Path, from: Stage) {
        // Span offsets are relative to one execution's origin, so a
        // resumed run always starts the trace fresh — whatever `from`,
        // mixing spans from two executions would mix two origins.
        std::fs::remove_file(dir.join("trace.jsonl")).ok();
        for stage in Stage::ALL.into_iter().filter(|&s| s >= from) {
            for file in Self::stage_files(stage) {
                std::fs::remove_file(dir.join(file)).ok();
            }
        }
    }

    /// Reloads a persisted run so execution restarts at `from` (which is
    /// re-executed; everything before it is loaded from the run
    /// directory). The heavyweight combine intermediate (per-example
    /// probabilistic targets) is not persisted — when `from` is `search`
    /// or `train` it is rebuilt deterministically from the stored shards —
    /// while trained weights resume from the `train.model.json` snapshot,
    /// so no resume point ever retrains.
    pub(crate) fn load(
        dir: PathBuf,
        id: String,
        options: OvertonOptions,
        from: Stage,
        store: Arc<ShardedStore>,
    ) -> Result<Self, Error> {
        let report_path = dir.join("report.json");
        let text = std::fs::read_to_string(&report_path)
            .map_err(|e| Error::run(from, format!("cannot read {}: {e}", report_path.display())))?;
        let mut report: RunReport = serde_json::from_str(&text)
            .map_err(|e| Error::run(from, format!("report.json: {e}")))?;
        for stage in Stage::ALL.into_iter().take_while(|&s| s != from) {
            if !report.completed(stage) {
                return Err(Error::run(
                    from,
                    format!("cannot resume: stage {stage} never completed in this run"),
                ));
            }
        }
        // A warm-started run's combine/search/train stages depend on the
        // previous artifact (its space, architecture and weights), which
        // — like the pretrained encoder — is an input the run directory
        // does not embed. Resuming one into a retraining stage would
        // silently rebuild a *cold* feature space under warm artifacts;
        // resume is only sound from package onward (those stages reload
        // the trained snapshot, space included).
        if report.warm_started && from <= Stage::Train {
            return Err(Error::run(
                from,
                "cannot resume a warm-started (incremental) run from a stage that retrains; \
                 re-run the incremental retrain against a fresh snapshot instead",
            ));
        }
        // Keep telemetry for the stages we are not re-running.
        report.stages.retain(|s| s.stage < from);
        report.task_accuracy.clear();
        report.mean_test_accuracy = 0.0;
        report.mean_accuracy_ci = None;
        report.meter_remaining = None;
        report.promotion = None;
        report.run_id = id.clone();

        let mut run = Run::new(id, Some(dir.clone()), options, store);
        run.report = report;
        run.cursor = Some(from);

        let read_json = |file: &str| -> Result<String, Error> {
            std::fs::read_to_string(dir.join(file))
                .map_err(|e| Error::run(from, format!("cannot read {file}: {e}")))
        };
        let parse = |what: &str, e: serde_json::Error| Error::run(from, format!("{what}: {e}"));

        if from > Stage::Combine {
            let text = read_json("combine.json")?;
            let combine: CombineArtifact =
                serde_json::from_str(&text).map_err(|e| parse("combine.json", e))?;
            run.diagnostics = combine.diagnostics;
            run.train_examples = combine.train_examples;
            run.dev_examples = combine.dev_examples;
            if from <= Stage::Train {
                // Search/Train need the combined examples; rebuild them
                // deterministically from the sealed store.
                let prepared = prepare_store(&run.store, &run.options.combine)?;
                run.space = Some(prepared.space.clone());
                run.prepared = Some(prepared);
            }
        }
        if from > Stage::Search {
            let text = read_json("search.json")?;
            let search: SearchArtifact =
                serde_json::from_str(&text).map_err(|e| parse("search.json", e))?;
            run.chosen_config = Some(search.chosen);
            run.trials = search.trials;
        }
        if from > Stage::Train {
            let text = read_json("train.json")?;
            run.train_report =
                Some(serde_json::from_str(&text).map_err(|e| parse("train.json", e))?);
            let snapshot_file =
                if from > Stage::Package { "artifact.model.json" } else { "train.model.json" };
            let bytes = std::fs::read(dir.join(snapshot_file))
                .map_err(|e| Error::run(from, format!("cannot read {snapshot_file}: {e}")))?;
            let snapshot = DeployableModel::from_bytes(&bytes)?;
            run.model = Some(snapshot.instantiate());
            run.space = Some(snapshot.space.clone());
            if from > Stage::Package {
                run.artifact = Some(snapshot);
            }
        }

        // Only now that every needed artifact loaded: delete the stale
        // artifacts of the stages being re-run and persist the truncated
        // report, so an abandoned resume can't pair fresh early-stage
        // state with outdated downstream artifacts — while a resume that
        // *fails to load* (e.g. a corrupt search.json) leaves the run
        // directory exactly as it was, still serveable.
        Run::clear_stage_artifacts(&dir, from);
        run.persist_report()?;
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_and_parse() {
        assert_eq!(Stage::Ingest.next(), Some(Stage::Combine));
        assert_eq!(Stage::Evaluate.next(), None);
        assert!(Stage::Combine < Stage::Train);
        assert_eq!(Stage::parse("TRAIN"), Some(Stage::Train));
        assert_eq!(Stage::parse("nope"), None);
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.name()), Some(s));
        }
    }

    #[test]
    fn report_roundtrips_and_tracks_completion() {
        let mut report = RunReport { run_id: "run-0001".into(), ..Default::default() };
        report.stages.push(StageReport { stage: Stage::Ingest, wall_ms: 3, records: 100 });
        report.task_accuracy.insert("Intent".into(), 0.75);
        report.mean_test_accuracy = 0.75;
        assert!(report.completed(Stage::Ingest));
        assert!(!report.completed(Stage::Train));
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let text = report.to_string();
        assert!(text.contains("ingest") && text.contains("mean test accuracy"), "{text}");
    }
}

//! The front door: a declarative [`Project`] built from the paper's
//! two-file contract.
//!
//! An Overton engineer's entire interface is a schema file and a data file
//! (paper §1–2). [`Project::from_files`] takes exactly those two paths —
//! the data file streams straight into the sharded row store, no eager
//! `Vec<Record>` — and executes the pipeline as a staged, resumable
//! [`Run`]. The project also closes Figure 1's loop: [`Project::deploy`]
//! hands the packaged artifact to the serving runtime
//! ([`DeploymentManager`] + [`WorkerPool`]), and [`Project::monitor`]
//! turns the quality reports coming back from live traffic into the
//! ranked slice worklist that drives the next data edit.

use crate::error::Error;
use crate::pipeline::OvertonOptions;
use crate::run::{Run, Stage};
use crate::workflows::{diagnose_reports, ImprovementReport, SliceDiagnosis};
use overton_model::{DeployableModel, ModelRegistry};
use overton_monitor::QualityReport;
use overton_obs as obs;
use overton_serving::{
    CascadeEngine, DeploymentManager, ServingConfig, TrafficBaseline, WorkerPool,
};
use overton_store::{Dataset, ShardedStore, StoreSnapshot};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Where a project's records come from.
enum Source {
    /// The two-file contract: schema JSON + JSONL records. Ingest streams
    /// the data file into shard builders on every run, so edits to the
    /// files are picked up by the next run — that *is* the improvement
    /// loop.
    Files { schema: PathBuf, data: PathBuf },
    /// An already-sealed store (in-memory callers, the legacy shims).
    /// Shared, so repeated runs adopt it without deep-copying the shard
    /// blobs.
    Store(Arc<ShardedStore>),
}

/// A declarative Overton project: a data source, pipeline options, and an
/// optional root directory under which runs persist (`<root>/runs/<id>/`)
/// and deployments keep their model registry (`<root>/registry/`).
pub struct Project {
    name: String,
    source: Source,
    options: OvertonOptions,
    root: Option<PathBuf>,
    /// A previous run's packaged artifact to warm-start new runs from
    /// (the incremental retrain path): combine encodes in its feature
    /// space, search keeps its architecture, train continues from its
    /// weights.
    warm: Option<Arc<DeployableModel>>,
    /// The live-store snapshot generation the source store was pinned at,
    /// when the project was built with [`Project::from_snapshot`];
    /// recorded in the run's report and artifact metadata as lineage.
    snapshot_generation: Option<u64>,
}

impl Project {
    /// A project over the two-file engineer contract. The files are read
    /// at [`start`](Project::start)/[`run`](Project::run) time (the ingest
    /// stage), so construction never fails and re-running picks up edits.
    pub fn from_files(schema: impl Into<PathBuf>, data: impl Into<PathBuf>) -> Self {
        Self {
            name: "overton".into(),
            source: Source::Files { schema: schema.into(), data: data.into() },
            options: OvertonOptions::default(),
            root: None,
            warm: None,
            snapshot_generation: None,
        }
    }

    /// A project over an already-sealed store.
    pub fn from_store(store: ShardedStore) -> Self {
        Self {
            name: "overton".into(),
            source: Source::Store(Arc::new(store)),
            options: OvertonOptions::default(),
            root: None,
            warm: None,
            snapshot_generation: None,
        }
    }

    /// A project over a pinned [`StoreSnapshot`] of a live store
    /// ([`LiveStore::snapshot`](overton_store::LiveStore::snapshot)).
    /// The snapshot's merged base+delta store is adopted without copying
    /// the shard blobs, and its generation id is recorded in every run's
    /// report (and packaged artifact metadata) as data lineage — the
    /// incremental-ingest loop's answer to "which data did these weights
    /// see". Appends and compactions after the pin never perturb the run.
    pub fn from_snapshot(snapshot: &StoreSnapshot) -> Self {
        Self {
            name: "overton".into(),
            source: Source::Store(snapshot.store_arc()),
            options: OvertonOptions::default(),
            root: None,
            warm: None,
            snapshot_generation: Some(snapshot.generation()),
        }
    }

    /// Warm-starts every run of this project from `artifact` (a previous
    /// run's packaged model): combine encodes new rows in the artifact's
    /// feature space (unseen tokens map to `<unk>`), search keeps its
    /// architecture, and training continues from its weights. This is
    /// the incremental retrain path — pair it with
    /// [`from_snapshot`](Project::from_snapshot) over a base+delta world
    /// to skip the full re-ingest.
    pub fn warm_started(mut self, artifact: DeployableModel) -> Self {
        self.warm = Some(Arc::new(artifact));
        self
    }

    /// A project over an eager dataset (seals it once, up front).
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self::from_store(dataset.seal())
    }

    /// Names the project (the deployment/registry name; defaults to
    /// `"overton"`).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Sets the pipeline options.
    pub fn with_options(mut self, options: OvertonOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the project root: runs persist under `<root>/runs/<id>/` and
    /// become resumable; [`deploy`](Project::deploy) keeps its registry at
    /// `<root>/registry/`. Without a root everything runs in memory.
    pub fn at(mut self, root: impl Into<PathBuf>) -> Self {
        self.root = Some(root.into());
        self
    }

    /// The project name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pipeline options.
    pub fn options(&self) -> &OvertonOptions {
        &self.options
    }

    /// The runs directory, when the project has a root.
    pub fn runs_dir(&self) -> Option<PathBuf> {
        self.root.as_ref().map(|r| r.join("runs"))
    }

    /// The id of the most recent persisted run, if any (highest run
    /// number, compared numerically).
    pub fn latest_run_id(&self) -> Result<Option<String>, Error> {
        let Some(runs) = self.runs_dir() else { return Ok(None) };
        if !runs.exists() {
            return Ok(None);
        }
        Ok(max_run(&runs)?.map(|(_, name)| name))
    }

    /// Starts a new run by executing [`Stage::Ingest`]: the two files are
    /// parsed, validated and streamed into the sharded row store (or the
    /// sealed source store is adopted), and — when the project has a root
    /// — the store and the run's options are persisted under a fresh
    /// `runs/<id>/` directory. The directory is allocated only after
    /// ingestion succeeds (and removed again if persisting fails), so a
    /// malformed data file never leaves an empty "latest" run behind.
    pub fn start(&self) -> Result<Run, Error> {
        let start = Instant::now();
        let store = self.ingest_store()?;
        let (id, dir) = self.allocate_run_dir()?;
        let persist = |run: &Run| -> Result<(), Error> {
            if run.dir().is_some() {
                run.store().write_dir(run.dir().expect("checked").join("store"))?;
                run.write_json(
                    "options.json",
                    &RunOptionsFile {
                        uses_pretrained: self.options.pretrained.is_some(),
                        options: self.options.clone(),
                    },
                )?;
            }
            run.persist_report()?;
            Ok(())
        };
        let records = store.len();
        let mut run = Run::new(id, dir, self.options.clone(), store);
        run.warm = self.warm.clone();
        run.report.snapshot_generation = self.snapshot_generation;
        run.report.warm_started = self.warm.is_some();
        run.note_stage(Stage::Ingest, start, records);
        if let Err(e) = persist(&run) {
            if let Some(dir) = run.dir() {
                std::fs::remove_dir_all(dir).ok();
            }
            return Err(e);
        }
        Ok(run)
    }

    /// Starts a run and drives it through every stage.
    pub fn run(&self) -> Result<Run, Error> {
        let mut run = self.start()?;
        run.complete()?;
        Ok(run)
    }

    /// Resumes the persisted run `run_id` from stage `from`: `from` and
    /// everything after it re-execute, everything before it loads from the
    /// run directory (`ingest` re-reads the project source into the same
    /// directory; later stages reuse the sealed store and the persisted
    /// stage artifacts — in particular, resuming after `train` never
    /// retrains). A resumed run re-executes under the **options it was
    /// started with** (persisted as `options.json`); the project's current
    /// options apply only to new runs, so resuming can never silently
    /// retrain with a different configuration than the run's own
    /// artifacts record. Returns the run positioned at `from`; drive it
    /// with [`Run::complete`].
    pub fn resume(&self, run_id: &str, from: Stage) -> Result<Run, Error> {
        let runs = self
            .runs_dir()
            .ok_or_else(|| Error::run(from, "project has no root; nothing to resume"))?;
        let dir = runs.join(run_id);
        if !dir.join("report.json").exists() {
            return Err(Error::run(from, format!("no persisted run at {}", dir.display())));
        }
        let options = self.persisted_options(&dir, from)?;
        if from == Stage::Ingest {
            // A full re-run in place: re-ingest the (possibly edited)
            // source into the same run directory. The new store lands in
            // a temp directory first, so an ingest or write failure
            // leaves the old run fully intact; only once it is safely on
            // disk do we drop the stale downstream artifacts and swap the
            // store in (a plain overwrite would also strand old shard
            // files that `read_dir`'s extra-shard check rejects when the
            // dataset shrank).
            let start = Instant::now();
            let store = self.ingest_store()?;
            let store_dir = dir.join("store");
            let staging = dir.join("store.tmp");
            std::fs::remove_dir_all(&staging).ok();
            store.write_dir(&staging)?;
            std::fs::remove_dir_all(&store_dir).ok();
            std::fs::rename(&staging, &store_dir)?;
            // Only after the new store is swapped in: a failed write or
            // swap above leaves the old run — artifacts included — fully
            // intact and still serveable.
            Run::clear_stage_artifacts(&dir, Stage::Ingest);
            let records = store.len();
            let mut run = Run::new(run_id.to_string(), Some(dir), options, store);
            run.warm = self.warm.clone();
            run.report.snapshot_generation = self.snapshot_generation;
            run.report.warm_started = self.warm.is_some();
            run.note_stage(Stage::Ingest, start, records);
            run.persist_report()?;
            return Ok(run);
        }
        let store = Arc::new(ShardedStore::read_dir(dir.join("store"))?);
        Run::load(dir, run_id.to_string(), options, from, store)
    }

    /// Ingests the project source: streams the two files into shard
    /// builders, or adopts the already-sealed store (a cheap `Arc` clone,
    /// not a copy of the shard blobs).
    fn ingest_store(&self) -> Result<Arc<ShardedStore>, Error> {
        Ok(match &self.source {
            Source::Files { schema, data } => Arc::new(ShardedStore::from_files(schema, data)?),
            Source::Store(store) => Arc::clone(store),
        })
    }

    /// The options a persisted run was started with. A run directory
    /// predating `options.json` falls back to the project's current
    /// options; an *unreadable* `options.json` is a hard error — silently
    /// substituting different options would break the resume guarantee.
    /// The pretrained encoder itself is an input artifact `options.json`
    /// does not embed; it comes from the project (like the data files),
    /// and the persisted `uses_pretrained` marker makes a mismatch a hard
    /// error instead of a silent retrain without the encoder.
    fn persisted_options(
        &self,
        run_dir: &std::path::Path,
        from: Stage,
    ) -> Result<OvertonOptions, Error> {
        let path = run_dir.join("options.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let file: RunOptionsFile = serde_json::from_str(&text).map_err(|e| {
                    Error::run(
                        from,
                        format!(
                            "{}: {e} (the run's original options are unreadable; delete the file \
                             to resume under the project's current options)",
                            path.display()
                        ),
                    )
                })?;
                if file.uses_pretrained != self.options.pretrained.is_some() {
                    return Err(Error::run(
                        from,
                        format!(
                            "the run was built {} a pretrained encoder but the project is \
                             configured {} one; supply matching options to resume",
                            if file.uses_pretrained { "with" } else { "without" },
                            if self.options.pretrained.is_some() { "with" } else { "without" },
                        ),
                    ));
                }
                let mut options = file.options;
                options.pretrained = self.options.pretrained.clone();
                Ok(options)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(self.options.clone()),
            Err(e) => Err(e.into()),
        }
    }

    /// Deploys a completed run's packaged artifact: publishes it to the
    /// project registry, opens a [`DeploymentManager`] (the canary/rollback
    /// gate), and starts a [`WorkerPool`] serving the artifact, attached so
    /// promotions hot-swap the pool's engine. This is the right-hand side
    /// of Figure 1 made concrete.
    pub fn deploy(&self, run: &Run) -> Result<Deployment, Error> {
        self.deploy_with(run, ServingConfig::default())
    }

    /// [`deploy`](Project::deploy) with explicit worker-pool sizing.
    pub fn deploy_with(&self, run: &Run, config: ServingConfig) -> Result<Deployment, Error> {
        let artifact = run.artifact().ok_or_else(|| {
            Error::run(Stage::Package, "run has no packaged artifact; complete the run first")
        })?;
        // Rootless, run-dir-less deployments get a unique scratch
        // registry (cleaned up when the Deployment drops) — a fixed path
        // would grow forever and could collide across processes via pid
        // reuse.
        let (registry_dir, temp_registry) = match (&self.root, run.dir()) {
            (Some(root), _) => (root.join("registry"), None),
            (None, Some(dir)) => (dir.join("registry"), None),
            (None, None) => {
                let unique = DEPLOY_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let dir = std::env::temp_dir().join(format!(
                    "overton-{}-registry-{}-{unique}",
                    self.name,
                    std::process::id()
                ));
                (dir.clone(), Some(dir))
            }
        };
        let registry = ModelRegistry::open(&registry_dir)?;
        registry.publish(artifact, &self.name)?;
        let mut manager = DeploymentManager::open(registry, &self.name, DEPLOY_THRESHOLD)?;
        let engine: Arc<CascadeEngine> = manager.build_engine()?;
        // The run's traffic baseline (collected at evaluate over the test
        // split, persisted as baseline.json) arms the deployment's drift
        // detectors. A run without one (evaluated before this feature)
        // deploys without drift detection; a baseline that exists but
        // does not parse is a hard error — silently deploying with drift
        // detection off while it looks on would defeat the monitoring.
        let baseline = match run.baseline() {
            Some(b) => Some(b.clone()),
            None => match run.dir().map(|d| d.join("baseline.json")) {
                Some(path) if path.exists() => {
                    let text = std::fs::read_to_string(&path)?;
                    Some(serde_json::from_str::<TrafficBaseline>(&text).map_err(|e| {
                        overton_store::StoreError::Validation(format!(
                            "{}: {e} (delete the file to deploy without drift detection)",
                            path.display()
                        ))
                    })?)
                }
                _ => None,
            },
        };
        let pool = Arc::new(WorkerPool::start(engine, config, baseline));
        manager.attach_pool(Arc::clone(&pool));
        let obslog_dir = registry_dir.join(&self.name).join("obslog");
        Ok(Deployment { manager, pool, obslog_dir, temp_registry })
    }

    /// Turns quality reports observed on live traffic (e.g. from
    /// [`DeploymentManager::canary_reports`]) back into the ranked slice
    /// worklist an engineer triages — the monitoring edge of Figure 1's
    /// loop. Slices with fewer than `min_count` scored examples are
    /// skipped.
    pub fn monitor(
        &self,
        reports: &BTreeMap<String, QualityReport>,
        min_count: usize,
    ) -> Vec<SliceDiagnosis> {
        diagnose_reports(reports, min_count)
    }

    /// Re-runs the pipeline on the project's *current* source (for a
    /// two-file project, the freshly edited files) and reports the
    /// targeted `(task, slice)` accuracy before and after — the re-homed
    /// improve-and-retrain workflow.
    ///
    /// The comparison is significance-gated: the report carries
    /// [`PromotionEvidence`](overton_monitor::stats::PromotionEvidence)
    /// (per-slice success counts, confidence bounds, a one-sided
    /// two-proportion p-value), and
    /// [`ImprovementReport::promoted`] is true only when the new run's
    /// per-slice win is statistically significant — a positive point
    /// delta within holdout noise holds the old model. The evidence
    /// (plus the remaining test-set reuse budget) is persisted into the
    /// new run's `report.json` and its artifact metadata.
    pub fn retrain_and_compare(
        &self,
        previous: &Run,
        task: &str,
        slice: &str,
    ) -> Result<ImprovementReport, Error> {
        let before =
            previous.evaluation().and_then(|e| e.slice_accuracy(task, slice)).unwrap_or(0.0);
        let mut run = self.run()?;
        let after = run.evaluation().and_then(|e| e.slice_accuracy(task, slice)).unwrap_or(0.0);
        let evidence = Self::promotion_evidence(previous, &run, task, slice)?;
        run.record_promotion(&evidence)?;
        Ok(ImprovementReport { build: run.into_build()?, before, after, evidence })
    }

    /// The shared significance gate behind both retrain-and-compare
    /// forms: evaluates the one-sided two-proportion test over the two
    /// runs' per-slice success counts and attaches the new run's
    /// remaining test-set reuse budget.
    fn promotion_evidence(
        previous: &Run,
        run: &Run,
        task: &str,
        slice: &str,
    ) -> Result<overton_monitor::stats::PromotionEvidence, Error> {
        use crate::workflows::slice_counts;
        let before = previous.evaluation().map_or((0, 0), |e| slice_counts(e, task, slice));
        let after = run.evaluation().map_or((0, 0), |e| slice_counts(e, task, slice));
        let mut evidence = overton_monitor::stats::evaluate_promotion(
            task,
            slice,
            before,
            after,
            overton_monitor::stats::DEFAULT_ALPHA,
        );
        evidence.meter_remaining = run.report().meter_remaining;
        Ok(evidence)
    }

    /// The automated end of Figure 1's loop: given a slice escalated by
    /// the obs [`Watchdog`](overton_obs::Watchdog) (whose windowed
    /// diagnoses are task-agnostic), picks the task that was weakest on
    /// that slice in `previous`'s evaluation — deterministically, lowest
    /// accuracy with ties broken on task name — and delegates to
    /// [`retrain_and_compare`](Project::retrain_and_compare).
    pub fn retrain_for_slice(
        &self,
        previous: &Run,
        slice: &str,
    ) -> Result<ImprovementReport, Error> {
        let task = self.weakest_task_on_slice(previous, slice)?;
        self.retrain_and_compare(previous, &task, slice)
    }

    /// Incremental variant of
    /// [`retrain_and_compare`](Project::retrain_and_compare): instead of
    /// re-ingesting the project source from scratch, trains on a pinned
    /// live-store [`StoreSnapshot`] (base + sealed deltas) and
    /// warm-starts from `previous`'s packaged weights — combine encodes
    /// the snapshot in the previous run's feature space, search keeps
    /// its architecture, train continues from its weights. The new run
    /// records the snapshot generation in its report and artifact
    /// metadata. Runs under this project's name, root and options.
    pub fn retrain_incremental(
        &self,
        previous: &Run,
        snapshot: &StoreSnapshot,
        task: &str,
        slice: &str,
    ) -> Result<ImprovementReport, Error> {
        let artifact = previous.artifact().ok_or_else(|| {
            Error::run(
                Stage::Package,
                "previous run has no packaged artifact to warm-start from; complete it first",
            )
        })?;
        let before =
            previous.evaluation().and_then(|e| e.slice_accuracy(task, slice)).unwrap_or(0.0);
        let project = Project {
            name: self.name.clone(),
            source: Source::Store(snapshot.store_arc()),
            options: self.options.clone(),
            root: self.root.clone(),
            warm: Some(Arc::new(artifact.clone())),
            snapshot_generation: Some(snapshot.generation()),
        };
        let mut run = project.run()?;
        let after = run.evaluation().and_then(|e| e.slice_accuracy(task, slice)).unwrap_or(0.0);
        let evidence = Self::promotion_evidence(previous, &run, task, slice)?;
        run.record_promotion(&evidence)?;
        Ok(ImprovementReport { build: run.into_build()?, before, after, evidence })
    }

    /// The incremental twin of
    /// [`retrain_for_slice`](Project::retrain_for_slice): picks the task
    /// that was weakest on the escalated slice in `previous`'s evaluation
    /// (deterministically — lowest accuracy, ties on task name) and
    /// delegates to [`retrain_incremental`](Project::retrain_incremental)
    /// over the pinned snapshot.
    pub fn retrain_for_slice_incremental(
        &self,
        previous: &Run,
        snapshot: &StoreSnapshot,
        slice: &str,
    ) -> Result<ImprovementReport, Error> {
        let task = self.weakest_task_on_slice(previous, slice)?;
        self.retrain_incremental(previous, snapshot, &task, slice)
    }

    /// The task of `previous`'s evaluation that scored lowest on `slice`
    /// (the shared picker behind both retrain-for-slice forms).
    fn weakest_task_on_slice(&self, previous: &Run, slice: &str) -> Result<String, Error> {
        let evaluation = previous.evaluation().ok_or_else(|| {
            Error::run(Stage::Evaluate, "previous run has no evaluation; complete it first")
        })?;
        evaluation
            .reports
            .iter()
            .filter_map(|(task, report)| {
                report
                    .group(&format!("{}{slice}", overton_monitor::SLICE_PREFIX))
                    .map(|m| (task, m.accuracy))
            })
            .min_by(|(ta, a), (tb, b)| a.total_cmp(b).then_with(|| ta.cmp(tb)))
            .map(|(task, _)| task.clone())
            .ok_or_else(|| {
                Error::run(
                    Stage::Evaluate,
                    format!("no task of the previous run was evaluated on slice '{slice}'"),
                )
            })
    }

    fn allocate_run_dir(&self) -> Result<(String, Option<PathBuf>), Error> {
        let Some(runs) = self.runs_dir() else {
            return Ok(("run-mem".into(), None));
        };
        std::fs::create_dir_all(&runs)?;
        // `create_dir` (not `create_dir_all`) fails on an existing
        // directory, so two concurrent builds racing for the same number
        // cannot both claim it — the loser retries with the next one.
        let mut next = max_run(&runs)?.map_or(1, |(n, _)| n + 1);
        loop {
            let id = format!("run-{next:04}");
            let dir = runs.join(&id);
            match std::fs::create_dir(&dir) {
                Ok(()) => return Ok((id, Some(dir))),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => next += 1,
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Confidence below which the serving cascade escalates to the large
/// model, when one is attached to the deployment.
const DEPLOY_THRESHOLD: f32 = 0.5;

/// Disambiguates scratch registries of rootless deployments within one
/// process.
static DEPLOY_SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// The on-disk shape of a run's `options.json`: the serializable options
/// plus a marker for the pretrained encoder, which is an input artifact
/// the file does not embed (resume must be given the same one).
#[derive(serde::Serialize, serde::Deserialize)]
struct RunOptionsFile {
    uses_pretrained: bool,
    options: OvertonOptions,
}

fn run_number(name: &str) -> Option<u32> {
    name.strip_prefix("run-")?.parse().ok()
}

/// Scans a runs directory for the highest-numbered `run-N` entry — the
/// one rule shared by "which run is latest" and "which id comes next".
fn max_run(runs: &std::path::Path) -> Result<Option<(u32, String)>, Error> {
    let mut max: Option<(u32, String)> = None;
    for entry in std::fs::read_dir(runs)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if let Some(n) = run_number(&name) {
            if max.as_ref().is_none_or(|(m, _)| n > *m) {
                max = Some((n, name));
            }
        }
    }
    Ok(max)
}

/// A live deployment produced by [`Project::deploy`]: the canary gate plus
/// the worker pool actually answering traffic. Dropping it shuts the pool
/// down after the queue drains (and removes the scratch registry of a
/// rootless deployment).
pub struct Deployment {
    manager: DeploymentManager,
    pool: Arc<WorkerPool>,
    /// Where [`watch`](Deployment::watch) persists the metrics log:
    /// `<registry>/<deployment>/obslog/`.
    obslog_dir: PathBuf,
    /// Set only for rootless deployments, whose registry lives in a
    /// unique temp directory removed on drop.
    temp_registry: Option<PathBuf>,
}

impl Drop for Deployment {
    fn drop(&mut self) {
        if let Some(dir) = &self.temp_registry {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

impl Deployment {
    /// The canary/rollback gate (start canaries, observe traffic, resolve).
    pub fn manager(&mut self) -> &mut DeploymentManager {
        &mut self.manager
    }

    /// The serving pool (submit traffic, read telemetry).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Serves a burst of live records through the incumbent (and any
    /// active canary shadow), returning the live responses in input order.
    pub fn observe(
        &mut self,
        records: &[overton_store::Record],
    ) -> Vec<Result<overton_model::ServingResponse, overton_store::StoreError>> {
        self.manager.observe(records)
    }

    /// Where [`watch`](Deployment::watch) writes the metrics log.
    pub fn obslog_dir(&self) -> &Path {
        &self.obslog_dir
    }

    /// Starts continuous monitoring of the deployment with the default
    /// rule set ([`obs::default_rules`] over the serving slice space):
    /// attaches an [`obs::Monitor`] to the pool's observer hook and
    /// persists the metrics log under
    /// [`obslog_dir`](Deployment::obslog_dir), where `overton monitor`
    /// can replay it.
    pub fn watch(&self) -> Result<obs::Monitor, Error> {
        self.watch_with(obs::ObsConfig {
            rules: obs::default_rules(self.pool.telemetry().slice_names()),
            ..Default::default()
        })
    }

    /// [`watch`](Deployment::watch) with an explicit configuration (the
    /// rules are taken as given).
    pub fn watch_with(&self, config: obs::ObsConfig) -> Result<obs::Monitor, Error> {
        Ok(obs::Monitor::attach(&self.pool, config, Some(&self.obslog_dir))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_model::TrainConfig;
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_store::LiveStore;

    fn quick_options() -> OvertonOptions {
        OvertonOptions {
            train: TrainConfig { epochs: 2, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn incremental_retrain_warm_starts_from_a_pinned_snapshot() {
        let dir = std::env::temp_dir()
            .join(format!("overton-proj-incr-{}", std::process::id()))
            .join("live");
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();

        let base = generate_workload(&WorkloadConfig {
            n_train: 120,
            n_dev: 30,
            n_test: 40,
            seed: 21,
            ..Default::default()
        });
        let live = LiveStore::create_from(&dir, base.seal_shards(2)).unwrap();

        // Cold run over the generation-0 snapshot.
        let snap0 = live.snapshot();
        let project = Project::from_snapshot(&snap0).with_options(quick_options());
        let run = project.run().unwrap();
        assert_eq!(run.report().snapshot_generation, Some(0));
        assert!(!run.report().warm_started);
        let cold_artifact = run.artifact().unwrap().clone();

        // Fresh labeled traffic lands in a delta; the pinned cold
        // snapshot must not see it.
        let extra = generate_workload(&WorkloadConfig {
            n_train: 40,
            n_dev: 0,
            n_test: 0,
            seed: 404,
            ..Default::default()
        });
        for record in extra.records() {
            live.append(record.clone()).unwrap();
        }
        live.flush().unwrap();
        let snap1 = live.snapshot();
        assert!(snap1.generation() > snap0.generation());
        assert_eq!(snap0.len(), 190, "pinned snapshot saw appended rows");

        // Warm retrain over the new snapshot: previous space and
        // architecture carry over, lineage is recorded.
        let report =
            project.retrain_incremental(&run, &snap1, "Intent", "complex-disambiguation").unwrap();
        assert!((0.0..=1.0).contains(&report.before));
        assert!((0.0..=1.0).contains(&report.after));
        let artifact = &report.build.artifact;
        assert_eq!(artifact.metadata.get("warm_started").map(String::as_str), Some("true"));
        assert_eq!(
            artifact.metadata.get("snapshot_generation"),
            Some(&snap1.generation().to_string())
        );
        assert!(report.build.trials.is_empty(), "warm runs never search");
        assert_eq!(
            artifact.space.token_vocab.len(),
            cold_artifact.space.token_vocab.len(),
            "warm run must encode in the previous run's feature space"
        );

        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }
}

//! # overton
//!
//! A from-scratch reproduction of **Overton** (Ré et al., CIDR 2020): a
//! data system for monitoring and improving machine-learned products.
//!
//! The engineer's contract is two files — a *schema* (payloads + tasks) and
//! a *data file* (records with multi-source weak supervision, tags and
//! slices). Everything else is automated, and the front door matches the
//! contract: a [`Project`] is constructed from exactly those two files
//! ([`Project::from_files`], or [`Project::from_store`] for a sealed
//! store) and executes as a staged, resumable [`Run`] — Ingest → Combine
//! → Search → Train → Package → Evaluate — with per-stage telemetry in a
//! [`RunReport`], persisted stage artifacts under `runs/<id>/`, and the
//! deploy/monitor loop ([`Project::deploy`], [`Project::monitor`]) closing
//! Figure 1. The same contract works with no Rust at all through the
//! `overton` CLI (`overton build|evaluate|serve|report <dir>`).
//!
//! ```
//! use overton::{OvertonOptions, Project};
//! use overton::model::TrainConfig;
//! use overton::nlp::{generate_workload, WorkloadConfig};
//!
//! // Kept tiny so this doctest *runs*; scale the sizes up for a real
//! // build (see examples/quickstart.rs and examples/two_file_contract.rs).
//! let dataset = generate_workload(&WorkloadConfig {
//!     n_train: 60,
//!     n_dev: 16,
//!     n_test: 16,
//!     seed: 7,
//!     ..Default::default()
//! });
//! let run = Project::from_dataset(&dataset)
//!     .with_options(OvertonOptions {
//!         train: TrainConfig { epochs: 2, ..Default::default() },
//!         ..Default::default()
//!     })
//!     .run()
//!     .unwrap();
//! assert!(run.is_complete());
//! assert!((0.0..=1.0).contains(&run.test_accuracy("Intent")));
//! println!("{}", run.report()); // per-stage wall-clock + record counts
//! println!("{}", run.evaluation().unwrap().reports["Intent"]);
//! ```

#![warn(missing_docs)]

mod error;
mod pipeline;
mod project;
mod run;
mod workflows;

pub use error::{Error, OvertonError};
pub use pipeline::{build, build_from_store, OvertonBuild, OvertonOptions};
pub use project::{Deployment, Project};
pub use run::{Run, RunReport, Stage, StageReport};
pub use workflows::{
    add_slice_supervision, cold_start, retrain_and_compare, worst_slices, ImprovementReport,
    SliceDiagnosis,
};

// The deterministic statistics kernel — confidence intervals,
// significance tests, and the test-set reuse meter — re-exported from
// `overton-monitor` so every decision surface shares one implementation.
pub use overton_monitor::stats;

// Re-export the subsystem crates so downstream users need a single
// dependency.
pub use overton_model as model;
pub use overton_monitor as monitor;
pub use overton_nlp as nlp;
pub use overton_obs as obs;
pub use overton_serving as serving;
pub use overton_store as store;
pub use overton_supervision as supervision;
pub use overton_tensor as tensor;

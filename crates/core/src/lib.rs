//! # overton
//!
//! A from-scratch reproduction of **Overton** (Ré et al., CIDR 2020): a
//! data system for monitoring and improving machine-learned products.
//!
//! The engineer's contract is two files — a *schema* (payloads + tasks) and
//! a *data file* (records with multi-source weak supervision, tags and
//! slices). Everything else is automated: supervision combination with a
//! generative label model, compilation of the schema into a multitask deep
//! model with slice-based learning, coarse architecture search, training,
//! fine-grained per-tag/per-slice quality reports, and packaging into a
//! deployable artifact with a stable serving signature.
//!
//! ```
//! use overton::{build, OvertonOptions};
//! use overton::model::TrainConfig;
//! use overton::nlp::{generate_workload, WorkloadConfig};
//!
//! // Kept tiny so this doctest *runs*; scale the sizes up for a real
//! // build (see examples/quickstart.rs).
//! let dataset = generate_workload(&WorkloadConfig {
//!     n_train: 60,
//!     n_dev: 16,
//!     n_test: 16,
//!     seed: 7,
//!     ..Default::default()
//! });
//! let options = OvertonOptions {
//!     train: TrainConfig { epochs: 2, ..Default::default() },
//!     ..Default::default()
//! };
//! let built = build(&dataset, &options).unwrap();
//! assert!((0.0..=1.0).contains(&built.test_accuracy("Intent")));
//! println!("{}", built.evaluation.reports["Intent"]);
//! ```

#![warn(missing_docs)]

mod pipeline;
mod workflows;

pub use pipeline::{build, build_from_store, OvertonBuild, OvertonError, OvertonOptions};
pub use workflows::{
    add_slice_supervision, cold_start, retrain_and_compare, worst_slices, ImprovementReport,
    SliceDiagnosis,
};

// Re-export the subsystem crates so downstream users need a single
// dependency.
pub use overton_model as model;
pub use overton_monitor as monitor;
pub use overton_nlp as nlp;
pub use overton_serving as serving;
pub use overton_store as store;
pub use overton_supervision as supervision;
pub use overton_tensor as tensor;

//! "A Day in the Life of an Overton Engineer" (paper §2.3) over the staged
//! API: monitoring output → data edit → retrain, plus the cold-start
//! workflow. The engineer only ever touches *data*.
//!
//! The canonical homes of these workflows are now the [`Run`](crate::Run)
//! and [`Project`](crate::Project) methods —
//! [`Run::worst_slices`](crate::Run::worst_slices),
//! [`Project::monitor`](crate::Project::monitor),
//! [`Project::retrain_and_compare`](crate::Project::retrain_and_compare) —
//! which operate on quality reports wherever they come from (a run's test
//! evaluation or live canary scoring). The free functions here are the
//! original dataset-centric forms, kept for existing callers and for the
//! data-editing half of the loop ([`add_slice_supervision`],
//! [`cold_start`]) that inherently works on an editable [`Dataset`].

use crate::error::OvertonError;
use crate::pipeline::{build, OvertonBuild, OvertonOptions};
use overton_monitor::stats;
use overton_monitor::QualityReport;
use overton_store::{Dataset, Record, TaskLabel};
use std::collections::BTreeMap;

// The shared diagnosis kernel — ranks every `slice:` row of a set of
// per-task quality reports by accuracy ascending with deterministic
// tie-breaking — now lives in `overton-monitor` (`diagnose_reports`),
// where every monitoring surface can reach it: [`Run::worst_slices`]
// (crate::Run::worst_slices), [`Project::monitor`]
// (crate::Project::monitor), live canary scoring, and the obs watchdog's
// automated retrain trigger. Re-exported here so `overton::SliceDiagnosis`
// keeps working.
pub(crate) use overton_monitor::diagnose_reports;
pub use overton_monitor::SliceDiagnosis;

/// Per-task overall test accuracy for the tasks that were actually scored
/// (an `overall` row exists). Shared kernel behind both
/// [`RunReport`](crate::RunReport)'s accuracies and
/// [`OvertonBuild::mean_test_accuracy`](crate::OvertonBuild::mean_test_accuracy),
/// so the "unscored tasks enter neither numerator nor denominator" rule
/// lives in exactly one place.
pub(crate) fn scored_accuracies(
    reports: &BTreeMap<String, QualityReport>,
) -> BTreeMap<String, f64> {
    reports.iter().filter_map(|(task, r)| r.overall().map(|m| (task.clone(), m.accuracy))).collect()
}

/// Mean of the scored-task accuracies (0 when no task was scored).
pub(crate) fn mean_accuracy(scored: &BTreeMap<String, f64>) -> f64 {
    if scored.is_empty() {
        0.0
    } else {
        scored.values().sum::<f64>() / scored.len() as f64
    }
}

/// Ranks (task, slice) pairs of a build's evaluation by accuracy ascending
/// — the worklist an engineer monitors week to week. Legacy form of
/// [`Run::worst_slices`](crate::Run::worst_slices).
pub fn worst_slices(build: &OvertonBuild, min_count: usize) -> Vec<SliceDiagnosis> {
    diagnose_reports(&build.evaluation.reports, min_count)
}

/// Adds supervision to every *training* record of a slice using an
/// engineer-supplied labeler (a labeling function, an annotation pass, or a
/// correction rule). Returns how many labels were written.
///
/// This is the core loop of "Improving an Existing Feature": diagnose a
/// slice, then refine the labels in that slice.
pub fn add_slice_supervision(
    dataset: &mut Dataset,
    slice: &str,
    task: &str,
    source: &str,
    labeler: impl Fn(&Record) -> Option<TaskLabel>,
) -> usize {
    let indices = dataset.in_slice(slice);
    let mut added = 0;
    for i in indices {
        let record = dataset.get_mut(i).expect("index from in_slice");
        if !record.has_tag(overton_store::TAG_TRAIN) {
            continue;
        }
        if let Some(label) = labeler(record) {
            record.tasks.entry(task.to_string()).or_default().insert(source.to_string(), label);
            added += 1;
        }
    }
    added
}

/// The outcome of an improve-and-retrain iteration.
pub struct ImprovementReport {
    /// The new build.
    pub build: OvertonBuild,
    /// Accuracy on the targeted (task, slice) before the change.
    pub before: f64,
    /// Accuracy after the change.
    pub after: f64,
    /// Statistical evidence for (or against) promoting the new build:
    /// per-slice success counts, Clopper-Pearson bounds, and the
    /// one-sided two-proportion p-value of the improvement.
    pub evidence: stats::PromotionEvidence,
}

impl ImprovementReport {
    /// Accuracy delta (positive = improved).
    pub fn delta(&self) -> f64 {
        self.after - self.before
    }

    /// True when the retrain's per-slice win is statistically significant
    /// — the promotion gate. A positive [`delta`](Self::delta) alone is
    /// not enough; the improvement must be distinguishable from holdout
    /// noise at the evidence's significance level.
    pub fn promoted(&self) -> bool {
        self.evidence.significant
    }
}

/// `(successes, trials)` for a task on one slice of an evaluation —
/// `(0, 0)` (total ignorance) when the slice row is absent.
pub(crate) fn slice_counts(
    evaluation: &overton_model::Evaluation,
    task: &str,
    slice: &str,
) -> (u64, u64) {
    evaluation.slice_metrics(task, slice).map_or((0, 0), |m| (m.successes(), m.count as u64))
}

/// Retrains after a supervision change and reports the targeted slice's
/// before/after accuracy. Legacy form of
/// [`Project::retrain_and_compare`](crate::Project::retrain_and_compare);
/// the `previous` baseline may be any earlier build of the feature.
pub fn retrain_and_compare(
    dataset: &Dataset,
    options: &OvertonOptions,
    previous: &OvertonBuild,
    task: &str,
    slice: &str,
) -> Result<ImprovementReport, OvertonError> {
    let before = previous.evaluation.slice_accuracy(task, slice).unwrap_or(0.0);
    let new_build = build(dataset, options)?;
    let after = new_build.evaluation.slice_accuracy(task, slice).unwrap_or(0.0);
    let evidence = stats::evaluate_promotion(
        task,
        slice,
        slice_counts(&previous.evaluation, task, slice),
        slice_counts(&new_build.evaluation, task, slice),
        stats::DEFAULT_ALPHA,
    );
    Ok(ImprovementReport { build: new_build, before, after, evidence })
}

/// Cold start (paper §2.3): a new feature launches with **zero** organic
/// data. The engineer supplies synthetic records (tagged with their
/// lineage) plus weak sources, and ships a first model entirely from them.
///
/// `synthesizer` produces one synthetic training record per call; dev/test
/// records must already be in `dataset` (curated by the launch review).
/// The build routes through the staged [`Run`](crate::Run) like every
/// other pipeline entry point.
pub fn cold_start(
    dataset: &mut Dataset,
    n_synthetic: usize,
    lineage_tag: &str,
    mut synthesizer: impl FnMut(usize) -> Record,
    options: &OvertonOptions,
) -> Result<OvertonBuild, OvertonError> {
    for i in 0..n_synthetic {
        let record = synthesizer(i).with_tag(overton_store::TAG_TRAIN).with_tag(lineage_tag);
        dataset.push(record)?;
    }
    build(dataset, options)
}

// `Run::worst_slices` lives in run.rs; the kernel above is shared so the
// two stay identical.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::OvertonOptions;
    use crate::project::Project;
    use overton_model::TrainConfig;
    use overton_nlp::{generate_workload, WorkloadConfig};
    use overton_store::GOLD_SOURCE;

    fn quick_options() -> OvertonOptions {
        OvertonOptions {
            train: TrainConfig { epochs: 2, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        }
    }

    fn workload() -> Dataset {
        generate_workload(&WorkloadConfig {
            n_train: 150,
            n_dev: 40,
            n_test: 80,
            seed: 13,
            slice_rate: 0.2,
            ..Default::default()
        })
    }

    #[test]
    fn worst_slices_ranks_ascending_and_matches_run_method() {
        let ds = workload();
        let run = Project::from_dataset(&ds).with_options(quick_options()).run().unwrap();
        let from_run = run.worst_slices(3);
        assert!(!from_run.is_empty());
        for pair in from_run.windows(2) {
            assert!(pair[0].metrics.accuracy <= pair[1].metrics.accuracy);
        }
        let build = run.into_build().unwrap();
        let from_build = worst_slices(&build, 3);
        assert_eq!(from_run.len(), from_build.len());
        for (a, b) in from_run.iter().zip(&from_build) {
            assert_eq!((a.task.as_str(), a.slice.as_str()), (b.task.as_str(), b.slice.as_str()));
        }
    }

    #[test]
    fn add_slice_supervision_writes_labels() {
        let mut ds = workload();
        let added = add_slice_supervision(
            &mut ds,
            "complex-disambiguation",
            "IntentArg",
            "engineer_fix",
            |record| record.gold("IntentArg").cloned().or(Some(TaskLabel::Select(1))),
        );
        assert!(added > 0);
        let i = ds
            .in_slice("complex-disambiguation")
            .into_iter()
            .find(|&i| ds.records()[i].has_tag("train"));
        let record = &ds.records()[i.unwrap()];
        assert!(record.tasks["IntentArg"].contains_key("engineer_fix"));
    }

    #[test]
    fn retrain_and_compare_reports_delta() {
        let ds = workload();
        let options = quick_options();
        let first = build(&ds, &options).unwrap();
        let mut improved = ds.clone();
        // Engineers add a high-quality corrective source on the slice. The
        // synthetic generator knows the truth, so emulate an annotation
        // pass by deriving from the existing record structure.
        add_slice_supervision(
            &mut improved,
            "complex-disambiguation",
            "IntentArg",
            "annotator_pass",
            |record| {
                // Pick the non-default candidate the heuristics fight over.
                match record.tasks.get("IntentArg").and_then(|m| m.get("lf_heuristic")) {
                    Some(TaskLabel::Select(v)) if *v != 0 => Some(TaskLabel::Select(*v)),
                    _ => None,
                }
            },
        );
        let report =
            retrain_and_compare(&improved, &options, &first, "IntentArg", "complex-disambiguation")
                .unwrap();
        // The delta is noisy at this scale; we only require the machinery
        // reports coherent numbers.
        assert!((0.0..=1.0).contains(&report.before));
        assert!((0.0..=1.0).contains(&report.after));
    }

    #[test]
    fn cold_start_builds_from_synthetic_only() {
        // Dataset with only dev/test (no organic training data).
        let full = workload();
        let keep: Vec<usize> = full.dev_indices().into_iter().chain(full.test_indices()).collect();
        let mut ds = full.subset(&keep);
        assert!(ds.train_indices().is_empty());

        // Synthesizer: clone gold-labeled dev records as synthetic training
        // data (a stand-in for template-generated launch data), moving gold
        // to a weak source.
        let templates: Vec<Record> = ds.records().to_vec();
        let options = OvertonOptions {
            train: TrainConfig { epochs: 6, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        };
        let built = cold_start(
            &mut ds,
            240,
            "aug:launch-synthetic",
            |i| {
                let mut r = templates[i % templates.len()].clone();
                r.tags.clear();
                for sources in r.tasks.values_mut() {
                    if let Some(gold) = sources.remove(GOLD_SOURCE) {
                        sources.insert("launch_lf".to_string(), gold);
                    }
                }
                r
            },
            &options,
        )
        .unwrap();
        assert!(built.test_accuracy("Intent") > 0.4, "{}", built.test_accuracy("Intent"));
        // Lineage is queryable.
        assert!(!ds.tagged("aug:launch-synthetic").is_empty());
    }
}

//! The legacy one-shot pipeline entry points, now thin shims over the
//! staged [`Project`](crate::Project)/[`Run`](crate::Run) API.
//!
//! [`build`] and [`build_from_store`] predate the two-file front door:
//! they run the whole pipeline in one call and return the [`OvertonBuild`]
//! bundle. They are kept (and parity-tested) for existing callers, but new
//! code should construct a [`Project`](crate::Project) — it exposes the
//! same pipeline as explicit stages with per-stage telemetry, run-dir
//! persistence, resume, and the deploy/monitor loop. Both shims delegate
//! to `Project`, so a shim build and a project run over the same sealed
//! store produce bit-identical results.

use crate::error::OvertonError;
use crate::project::Project;
use overton_model::{
    CompiledModel, DeployableModel, Evaluation, FeatureSpace, ModelConfig, PretrainedEncoder,
    SearchConfig, TrainConfig, TrainReport, TrialResult, TuningSpec,
};
use overton_store::{Dataset, ShardedStore};
use overton_supervision::{CombineMethod, SourceDiagnostics};
use std::collections::BTreeMap;

/// Pipeline configuration. Everything has sensible defaults; an engineer
/// usually touches none of it (that is the point of the system).
/// Serializable: a persisted [`Run`](crate::Run) records its options as
/// `options.json` so resuming re-executes under the run's original
/// configuration.
#[derive(Default, Clone, serde::Serialize, serde::Deserialize)]
#[serde(default)]
pub struct OvertonOptions {
    /// How conflicting supervision is resolved.
    pub combine: CombineMethod,
    /// Base architecture settings (sizes etc. are overridden by search).
    pub base_model: ModelConfig,
    /// The coarse search space; `None` skips search and uses `base_model`.
    pub tuning: Option<TuningSpec>,
    /// Search budget.
    pub search: SearchConfig,
    /// Final training budget.
    pub train: TrainConfig,
    /// Optional pretrained embedding artifact (Figure 4b "with-BERT").
    /// Not persisted in a run's `options.json` — the weight table is an
    /// input artifact (like the data files), so resume takes it from the
    /// project instead of re-serializing megabytes of embeddings per run.
    #[serde(skip)]
    pub pretrained: Option<PretrainedEncoder>,
}

/// The output of one pipeline run.
pub struct OvertonBuild {
    /// The production-ready artifact.
    pub artifact: DeployableModel,
    /// The trained in-memory model (for further analysis).
    pub model: CompiledModel,
    /// Shared feature space.
    pub space: FeatureSpace,
    /// The architecture that was selected (searched or base).
    pub chosen_config: ModelConfig,
    /// All search trials, best first (empty when search was skipped).
    pub trials: Vec<TrialResult>,
    /// Final training summary.
    pub train_report: TrainReport,
    /// Per-task supervision diagnostics (estimated source accuracies).
    pub diagnostics: BTreeMap<String, Vec<SourceDiagnostics>>,
    /// Evaluation on the test split (per-task, per-tag, per-slice reports).
    pub evaluation: Evaluation,
}

impl OvertonBuild {
    /// Overall test accuracy of a task.
    pub fn test_accuracy(&self, task: &str) -> f64 {
        self.evaluation.accuracy(task)
    }

    /// Mean test accuracy over the tasks that were actually scored: tasks
    /// whose report has no `overall` row (no gold test examples) are
    /// excluded from numerator *and* denominator, so they cannot silently
    /// drag the mean toward zero.
    pub fn mean_test_accuracy(&self) -> f64 {
        let scored = crate::workflows::scored_accuracies(&self.evaluation.reports);
        crate::workflows::mean_accuracy(&scored)
    }
}

/// Runs the full pipeline on an eager dataset. Legacy shim: seals the
/// dataset and delegates to a [`Project`](crate::Project) run (the
/// freshly sealed store moves into the project — no copy); prefer the
/// staged API for anything beyond a one-shot build.
pub fn build(dataset: &Dataset, options: &OvertonOptions) -> Result<OvertonBuild, OvertonError> {
    Project::from_store(dataset.seal()).with_options(options.clone()).run()?.into_build()
}

/// Runs the full pipeline on a sealed store. Legacy shim delegating to an
/// in-memory [`Project`](crate::Project) run (combine → search → train →
/// package → evaluate); prefer the staged API for persistence, resume and
/// deployment. The borrowed store is cloned once to enter the project
/// (shard blobs are refcounted `Bytes`, so this copies row offsets and
/// the seal-time index, not the data); callers that own their store
/// should use [`Project::from_store`] directly and skip even that.
pub fn build_from_store(
    store: &ShardedStore,
    options: &OvertonOptions,
) -> Result<OvertonBuild, OvertonError> {
    Project::from_store(store.clone()).with_options(options.clone()).run()?.into_build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_monitor::{Metrics, QualityReport};
    use overton_nlp::{generate_workload, WorkloadConfig};

    fn quick_options() -> OvertonOptions {
        OvertonOptions {
            train: TrainConfig { epochs: 3, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_build_beats_chance() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 250,
            n_dev: 50,
            n_test: 80,
            seed: 9,
            ..Default::default()
        });
        let out = build(&ds, &quick_options()).unwrap();
        // Intent has 7 classes; chance is ~0.14.
        assert!(
            out.test_accuracy("Intent") > 0.5,
            "intent accuracy {}",
            out.test_accuracy("Intent")
        );
        assert!(out.mean_test_accuracy() > 0.4);
        assert!(!out.diagnostics.is_empty());
        assert!(out.trials.is_empty(), "no tuning spec => no trials");
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::new(overton_nlp::workload_schema());
        assert!(matches!(build(&ds, &quick_options()), Err(OvertonError::NoTrainingData)));
    }

    #[test]
    fn build_from_store_matches_build() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 250,
            n_dev: 50,
            n_test: 80,
            seed: 9,
            ..Default::default()
        });
        let eager = build(&ds, &quick_options()).unwrap();
        let store = ds.seal_shards(3);
        let sharded = build_from_store(&store, &quick_options()).unwrap();
        // Training consumes the same examples in the same order, so the
        // builds are identical down to the evaluation reports.
        assert_eq!(sharded.evaluation.reports, eager.evaluation.reports);
        assert_eq!(sharded.train_report.epochs_run, eager.train_report.epochs_run);
    }

    #[test]
    fn mean_test_accuracy_skips_unscored_tasks() {
        // A task whose report lacks an `overall` row (no gold test
        // examples) must not enter the denominator.
        let mut reports = std::collections::BTreeMap::new();
        let mut scored = QualityReport::new("Intent");
        scored.push("overall", Metrics { count: 10, accuracy: 0.8, macro_f1: 0.8, micro_f1: 0.8 });
        reports.insert("Intent".to_string(), scored);
        reports.insert("POS".to_string(), QualityReport::new("POS"));

        let ds = generate_workload(&WorkloadConfig {
            n_train: 60,
            n_dev: 16,
            n_test: 16,
            seed: 5,
            ..Default::default()
        });
        let mut out = build(
            &ds,
            &OvertonOptions {
                train: TrainConfig { epochs: 1, early_stop_patience: 0, ..Default::default() },
                ..Default::default()
            },
        )
        .unwrap();
        out.evaluation.reports = reports;
        assert!((out.mean_test_accuracy() - 0.8).abs() < 1e-12, "{}", out.mean_test_accuracy());
    }
}

//! The end-to-end Overton pipeline (Figure 1): schema + data file in,
//! deployable model + fine-grained quality reports out.
//!
//! The pipeline's working form is the sealed [`ShardedStore`]: every hot
//! stage — supervision combination, feature encoding, evaluation — runs as
//! shard-parallel scans over it, and splits/slices resolve from the
//! seal-time index instead of re-scanning records. [`build`] seals the
//! eager dataset once and delegates to [`build_from_store`].

use overton_model::{
    evaluate_store, prepare_store, search, train_model, CompiledModel, DeployableModel, Evaluation,
    FeatureSpace, ModelConfig, PretrainedEncoder, SearchConfig, TrainConfig, TrainReport,
    TrialResult, TuningSpec,
};
use overton_store::{Dataset, ShardedStore};
use overton_supervision::{CombineError, CombineMethod, SourceDiagnostics};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from a pipeline run.
#[derive(Debug)]
pub enum OvertonError {
    /// Supervision combination failed.
    Combine(CombineError),
    /// The dataset has no usable training data.
    NoTrainingData,
    /// Storage/serialization failure.
    Store(overton_store::StoreError),
}

impl fmt::Display for OvertonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OvertonError::Combine(e) => write!(f, "supervision combination failed: {e}"),
            OvertonError::NoTrainingData => write!(f, "dataset has no training records"),
            OvertonError::Store(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for OvertonError {}

impl From<CombineError> for OvertonError {
    fn from(e: CombineError) -> Self {
        OvertonError::Combine(e)
    }
}

impl From<overton_store::StoreError> for OvertonError {
    fn from(e: overton_store::StoreError) -> Self {
        OvertonError::Store(e)
    }
}

/// Pipeline configuration. Everything has sensible defaults; an engineer
/// usually touches none of it (that is the point of the system).
#[derive(Default)]
pub struct OvertonOptions {
    /// How conflicting supervision is resolved.
    pub combine: CombineMethod,
    /// Base architecture settings (sizes etc. are overridden by search).
    pub base_model: ModelConfig,
    /// The coarse search space; `None` skips search and uses `base_model`.
    pub tuning: Option<TuningSpec>,
    /// Search budget.
    pub search: SearchConfig,
    /// Final training budget.
    pub train: TrainConfig,
    /// Optional pretrained embedding artifact (Figure 4b "with-BERT").
    pub pretrained: Option<PretrainedEncoder>,
}

/// The output of one pipeline run.
pub struct OvertonBuild {
    /// The production-ready artifact.
    pub artifact: DeployableModel,
    /// The trained in-memory model (for further analysis).
    pub model: CompiledModel,
    /// Shared feature space.
    pub space: FeatureSpace,
    /// The architecture that was selected (searched or base).
    pub chosen_config: ModelConfig,
    /// All search trials, best first (empty when search was skipped).
    pub trials: Vec<TrialResult>,
    /// Final training summary.
    pub train_report: TrainReport,
    /// Per-task supervision diagnostics (estimated source accuracies).
    pub diagnostics: BTreeMap<String, Vec<SourceDiagnostics>>,
    /// Evaluation on the test split (per-task, per-tag, per-slice reports).
    pub evaluation: Evaluation,
}

impl OvertonBuild {
    /// Overall test accuracy of a task.
    pub fn test_accuracy(&self, task: &str) -> f64 {
        self.evaluation.accuracy(task)
    }

    /// Mean test accuracy over all tasks with reports.
    pub fn mean_test_accuracy(&self) -> f64 {
        if self.evaluation.reports.is_empty() {
            return 0.0;
        }
        let sum: f64 =
            self.evaluation.reports.values().filter_map(|r| r.overall().map(|m| m.accuracy)).sum();
        sum / self.evaluation.reports.len() as f64
    }
}

/// Runs the full pipeline on an eager dataset: seals it into a
/// [`ShardedStore`] (the pipeline's working form) and delegates to
/// [`build_from_store`].
pub fn build(dataset: &Dataset, options: &OvertonOptions) -> Result<OvertonBuild, OvertonError> {
    build_from_store(&dataset.seal(), options)
}

/// Runs the full pipeline on a sealed store: combine supervision
/// (shard-parallel, all tasks in one scan), (optionally) search, train,
/// package, evaluate (shard-parallel over the test rows from the
/// seal-time index).
pub fn build_from_store(
    store: &ShardedStore,
    options: &OvertonOptions,
) -> Result<OvertonBuild, OvertonError> {
    if store.index().train_rows().is_empty() {
        return Err(OvertonError::NoTrainingData);
    }
    let prepared = prepare_store(store, &options.combine).map_err(|e| match e {
        CombineError::Store(e) => OvertonError::Store(e),
        other => OvertonError::Combine(other),
    })?;
    if prepared.train.iter().all(|e| e.targets.is_empty()) {
        return Err(OvertonError::NoTrainingData);
    }

    let (chosen_config, trials) = match &options.tuning {
        Some(spec) => search(
            store.schema(),
            &prepared.space,
            &prepared.train,
            &prepared.dev,
            spec,
            &options.base_model,
            options.pretrained.as_ref(),
            &options.search,
        ),
        None => (options.base_model.clone(), Vec::new()),
    };

    let mut model = CompiledModel::compile(
        store.schema(),
        &prepared.space,
        &chosen_config,
        options.pretrained.as_ref(),
    );
    let train_report = train_model(&mut model, &prepared.train, &prepared.dev, &options.train);

    let mut metadata = BTreeMap::new();
    metadata.insert("train_records".into(), prepared.train.len().to_string());
    metadata.insert("dev_records".into(), prepared.dev.len().to_string());
    metadata.insert("encoder".into(), format!("{:?}", chosen_config.encoder));
    let artifact = DeployableModel::package(&model, &prepared.space, metadata);

    let evaluation = evaluate_store(&model, store, store.index().test_rows(), &prepared.space)?;

    Ok(OvertonBuild {
        artifact,
        model,
        space: prepared.space,
        chosen_config,
        trials,
        train_report,
        diagnostics: prepared.diagnostics,
        evaluation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use overton_nlp::{generate_workload, WorkloadConfig};

    fn quick_options() -> OvertonOptions {
        OvertonOptions {
            train: TrainConfig { epochs: 3, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_build_beats_chance() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 250,
            n_dev: 50,
            n_test: 80,
            seed: 9,
            ..Default::default()
        });
        let out = build(&ds, &quick_options()).unwrap();
        // Intent has 7 classes; chance is ~0.14.
        assert!(
            out.test_accuracy("Intent") > 0.5,
            "intent accuracy {}",
            out.test_accuracy("Intent")
        );
        assert!(out.mean_test_accuracy() > 0.4);
        assert!(!out.diagnostics.is_empty());
        assert!(out.trials.is_empty(), "no tuning spec => no trials");
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = Dataset::new(overton_nlp::workload_schema());
        assert!(matches!(build(&ds, &quick_options()), Err(OvertonError::NoTrainingData)));
    }

    #[test]
    fn build_from_store_matches_build() {
        let ds = generate_workload(&WorkloadConfig {
            n_train: 250,
            n_dev: 50,
            n_test: 80,
            seed: 9,
            ..Default::default()
        });
        let eager = build(&ds, &quick_options()).unwrap();
        let store = ds.seal_shards(3);
        let sharded = build_from_store(&store, &quick_options()).unwrap();
        // Training consumes the same examples in the same order, so the
        // builds are identical down to the evaluation reports.
        assert_eq!(sharded.evaluation.reports, eager.evaluation.reports);
        assert_eq!(sharded.train_report.epochs_run, eager.train_report.epochs_run);
    }
}

//! The unified error type of the facade crate.
//!
//! Every way a project can fail — a malformed schema or data file, a
//! corrupt row store, a supervision-combination failure, an empty training
//! split, a staged run driven out of order — folds into one exhaustive
//! [`Error`], so callers (including the `overton` CLI) match on a single
//! type instead of juggling `StoreError`/`CombineError`/`OvertonError`
//! conversions by hand.

use crate::run::Stage;
use overton_store::StoreError;
use overton_supervision::CombineError;
use std::fmt;

/// Errors from the Overton facade: project construction, staged runs,
/// deployment and the legacy one-shot pipeline.
#[derive(Debug)]
pub enum Error {
    /// Supervision combination failed (unknown task/class/source).
    Combine(CombineError),
    /// The data has no usable training records.
    NoTrainingData,
    /// Data-layer failure: schema parsing, record validation (including
    /// line-numbered two-file ingestion errors), I/O, or a corrupt store.
    Store(StoreError),
    /// A staged run was driven out of order or its run directory is
    /// missing the state the stage needs.
    Run {
        /// The stage that could not execute or load.
        stage: Stage,
        /// What went wrong.
        message: String,
    },
}

/// The pre-`Project` name of [`Error`], kept so existing callers (and the
/// `build()`/`build_from_store()` shims' signatures) keep compiling.
pub type OvertonError = Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Combine(e) => write!(f, "supervision combination failed: {e}"),
            Error::NoTrainingData => write!(f, "dataset has no training records"),
            Error::Store(e) => write!(f, "storage error: {e}"),
            Error::Run { stage, message } => write!(f, "run stage {stage}: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Combine(e) => Some(e),
            Error::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CombineError> for Error {
    fn from(e: CombineError) -> Self {
        // A store failure inside the combiner is a store failure here:
        // the fold keeps one variant per root cause.
        match e {
            CombineError::Store(e) => Error::Store(e),
            other => Error::Combine(other),
        }
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Store(StoreError::Io(e))
    }
}

impl Error {
    /// Shorthand for a run-orchestration error at `stage`.
    pub(crate) fn run(stage: Stage, message: impl Into<String>) -> Self {
        Error::Run { stage, message: message.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_store_errors_fold_into_store() {
        let e: Error = CombineError::Store(StoreError::Corrupt("bad shard".into())).into();
        assert!(matches!(e, Error::Store(StoreError::Corrupt(_))), "{e}");
        let e: Error = CombineError::UnknownTask("POS".into()).into();
        assert!(matches!(e, Error::Combine(_)), "{e}");
    }

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<Error> = vec![
            CombineError::UnknownTask("t".into()).into(),
            Error::NoTrainingData,
            StoreError::Validation("line 3: bad".into()).into(),
            Error::run(Stage::Train, "no prepared data"),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! The two-file contract, literally: write `schema.json` + `data.jsonl`,
//! then build purely from the files.
//!
//! This is the paper's whole engineering interface (§1–2): the workload
//! writer emits the two files an engineer would edit, and the project is
//! constructed from nothing but their paths — the data file streams
//! straight into the sharded row store, no eager record vector, exactly
//! what the `overton` CLI does (`overton init` / `overton build`). The run
//! persists under `<dir>/runs/<id>/` and is then resumed from the
//! evaluate stage to show that a persisted run needs no retraining.
//!
//! Run with: `cargo run --release -p harness --example two_file_contract`

use overton::{OvertonOptions, Project, Stage};
use overton_model::TrainConfig;
use overton_nlp::{write_two_file_workload, WorkloadConfig};

fn main() {
    let dir = std::env::temp_dir().join(format!("overton-two-file-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. The engineer's two files. In a real product these come from logs
    //    plus labeling functions; here the workload writer stands in.
    println!("== writing the two-file contract ==");
    let (schema_path, data_path) = write_two_file_workload(
        &WorkloadConfig { n_train: 800, n_dev: 120, n_test: 240, seed: 11, ..Default::default() },
        &dir,
    )
    .expect("write workload");
    let jsonl = std::fs::read_to_string(&data_path).expect("read back");
    println!("wrote {}", schema_path.display());
    println!("wrote {} ({} lines)", data_path.display(), jsonl.lines().count());
    println!("first record: {:.100}...", jsonl.lines().next().unwrap());

    // 2. Build purely from the files. `from_files` never touches the
    //    files until the run's ingest stage, so edits are picked up by
    //    every new run.
    println!("\n== building from the files ==");
    let project = Project::from_files(&schema_path, &data_path)
        .named("two-file-demo")
        .with_options(OvertonOptions {
            train: TrainConfig { epochs: 6, ..Default::default() },
            ..Default::default()
        })
        .at(&dir);
    let run = project.run().expect("pipeline succeeds");
    print!("{}", run.report());
    println!("run directory: {}", run.dir().unwrap().display());

    // 3. Resume: the persisted run re-evaluates without retraining (the
    //    trained weights reload from the run directory).
    println!("\n== resuming from the evaluate stage ==");
    let mut resumed = project.resume(run.id(), Stage::Evaluate).expect("resume");
    resumed.complete().expect("evaluate");
    assert_eq!(
        resumed.evaluation().unwrap().reports,
        run.evaluation().unwrap().reports,
        "a resumed evaluation must reproduce the original bit for bit"
    );
    println!("resumed evaluation matches the original run exactly");

    std::fs::remove_dir_all(&dir).ok();
}

//! The cold-start use case (paper §2.3): launching a new product feature
//! with no organic training data at all.
//!
//! A "nutrition facts" feature is launched: the only training data is
//! synthetic, produced by templates over the knowledge base and labeled by
//! launch-time labeling functions. Lineage tags make the synthetic cohort
//! monitorable like any other source.
//!
//! Run with: `cargo run --release -p harness --example cold_start`

use overton::{cold_start, OvertonOptions};
use overton_model::TrainConfig;
use overton_nlp::{generate_workload, KnowledgeBase, QueryGenerator, WorkloadConfig};
use overton_store::{PayloadValue, Record, SetElement, TaskLabel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // Start from a dataset holding ONLY curated dev/test gold (the launch
    // review set) — no training data.
    let full = generate_workload(&WorkloadConfig {
        n_train: 0,
        n_dev: 200,
        n_test: 400,
        seed: 99,
        slice_rate: 0.1,
        ..Default::default()
    });
    let mut dataset = full.clone();
    assert!(dataset.train_indices().is_empty());
    println!(
        "launch review set: {} dev / {} test records, no training data",
        dataset.dev_indices().len(),
        dataset.test_indices().len()
    );

    // Synthesize launch data: template queries labeled by launch LFs. The
    // generator plays the role of the engineers' synthetic-data tooling.
    let kb = KnowledgeBase::standard();
    let generator = QueryGenerator::new(&kb);
    let mut rng = SmallRng::seed_from_u64(1234);

    println!("\n== cold start: synthesizing training data + first build ==");
    let options = OvertonOptions {
        train: TrainConfig { epochs: 8, ..Default::default() },
        ..Default::default()
    };
    let built = cold_start(
        &mut dataset,
        2000,
        "aug:launch-templates",
        |_i| {
            let q = generator.generate(&mut rng, false);
            let mut record = Record::new()
                .with_payload("tokens", PayloadValue::Sequence(q.tokens.clone()))
                .with_payload("query", PayloadValue::Singleton(q.text()))
                .with_payload(
                    "entities",
                    PayloadValue::Set(
                        q.candidates
                            .iter()
                            .map(|c| SetElement {
                                id: kb.entity(c.entity).id.clone(),
                                span: c.span,
                            })
                            .collect(),
                    ),
                );
            // Launch LFs: template-derived intent and argument labels
            // (templates know their own intent, so these are high quality —
            // the usual situation for synthetic launch data).
            record = record
                .with_label("Intent", "launch_lf", TaskLabel::MulticlassOne(q.intent.into()))
                .with_label("IntentArg", "launch_lf", TaskLabel::Select(q.gold_arg))
                .with_label(
                    "POS",
                    "launch_lf",
                    TaskLabel::MulticlassSeq(q.pos.iter().map(|s| s.to_string()).collect()),
                );
            for slice in &q.slices {
                record = record.with_slice(slice);
            }
            record
        },
        &options,
    )
    .expect("cold start succeeds");

    println!("synthetic training records: {}", dataset.tagged("aug:launch-templates").len());
    println!("\nlaunch-quality report (test split):");
    for (task, report) in &built.evaluation.reports {
        if let Some(overall) = report.overall() {
            println!("  {:<12} accuracy {:.3} (n = {})", task, overall.accuracy, overall.count);
        }
    }
    println!("\nweak-supervision share of training data: 100% (cold start has no annotators)");
}

//! The deployment path (paper §2.4): model pairs, the registry, the row
//! store and Pandas-compatible tag export.
//!
//! Trains a "large" and a "small" model on the same data, publishes both to
//! a content-addressed registry, fetches the latest back, verifies the
//! serving signature is identical (model independence), and writes the
//! data file into the binary row store + tag CSV.
//!
//! Run with: `cargo run --release -p harness --example deployment`

use overton::{build, OvertonOptions};
use overton_model::{ModelConfig, ModelPair, ModelRegistry, Server, TrainConfig};
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_store::{rowstore::RowStore, TagIndex};

fn main() {
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 800,
        n_dev: 150,
        n_test: 250,
        seed: 5,
        ..Default::default()
    });
    let train_cfg = TrainConfig { epochs: 6, ..Default::default() };

    // Large model: quality/analysis tier.
    println!("== training large model ==");
    let large = build(
        &dataset,
        &OvertonOptions {
            base_model: ModelConfig { token_dim: 48, hidden_dim: 64, ..Default::default() },
            train: train_cfg.clone(),
            ..Default::default()
        },
    )
    .expect("large build");

    // Small model: the SLA tier, same schema and data.
    println!("== training small model ==");
    let small = build(
        &dataset,
        &OvertonOptions {
            base_model: ModelConfig { token_dim: 16, hidden_dim: 24, ..Default::default() },
            train: train_cfg,
            ..Default::default()
        },
    )
    .expect("small build");

    let pair = ModelPair { large: large.artifact.clone(), small: small.artifact.clone() };
    println!(
        "pair synchronized: {} (large {} weights / small {} weights)",
        pair.synchronized(),
        pair.large.params.num_weights(),
        pair.small.params.num_weights()
    );
    println!(
        "test accuracy (Intent): large {:.3} vs small {:.3}",
        large.test_accuracy("Intent"),
        small.test_accuracy("Intent")
    );

    // Publish to the registry and fetch back.
    let dir = std::env::temp_dir().join("overton-example-registry");
    let registry = ModelRegistry::open(&dir).expect("registry opens");
    let id_large = registry.publish(&pair.large, "factoid-large").expect("publish");
    let id_small = registry.publish(&pair.small, "factoid-small").expect("publish");
    println!("\n== registry ==");
    for entry in registry.list().expect("list") {
        println!("  {:<14} v{} {} ({} bytes)", entry.name, entry.version, entry.id.0, entry.size);
    }
    let fetched = registry
        .fetch(&registry.latest("factoid-small").expect("latest").expect("exists"))
        .expect("fetch");
    assert_eq!(fetched.signature, pair.large.signature, "signatures must match");
    println!("fetched factoid-small; signature matches factoid-large: model independence holds");
    let _ = (id_large, id_small);

    // Serving smoke check through the fetched artifact.
    let server = Server::load(&fetched);
    let some_test = &dataset.records()[dataset.test_indices()[0]];
    let response = server.predict(some_test).expect("predict");
    println!("\nserved one test record; outputs: {:?}", response.tasks.keys().collect::<Vec<_>>());

    // The data layer: binary row store + Pandas-compatible tags.
    println!("\n== row store + tag export ==");
    let store = RowStore::build(dataset.records());
    let path = std::env::temp_dir().join("overton-example.rows");
    store.write_file(&path).expect("write row store");
    let loaded = RowStore::read_file(&path).expect("read row store");
    println!(
        "row store: {} rows, {} KiB on disk, record 0 roundtrips: {}",
        loaded.len(),
        loaded.blob_len() / 1024,
        loaded.get(0).expect("decode") == dataset.records()[0]
    );
    let tags = TagIndex::build(&dataset);
    let csv_path = std::env::temp_dir().join("overton-example-tags.csv");
    let mut csv = Vec::new();
    tags.write_csv(&mut csv).expect("csv");
    std::fs::write(&csv_path, csv).expect("write csv");
    println!("tag CSV written to {} (load with pandas.read_csv)", csv_path.display());
}

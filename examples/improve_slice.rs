//! "Improving an Existing Feature" (paper §2.3): the weekly loop of an
//! Overton engineer, end to end.
//!
//! 1. Build the current production model and read the per-slice reports.
//! 2. Find the worst slice (here: complex disambiguations, where heuristic
//!    supervision is systematically wrong).
//! 3. Add corrective supervision *to the data file only* — an annotation
//!    pass over the slice.
//! 4. Retrain and compare before/after on the slice, watching for
//!    regressions elsewhere.
//!
//! Run with: `cargo run --release -p harness --example improve_slice`

use overton::{add_slice_supervision, build, retrain_and_compare, worst_slices, OvertonOptions};
use overton_model::TrainConfig;
use overton_monitor::regressions;
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_store::TaskLabel;

fn main() {
    let mut dataset = generate_workload(&WorkloadConfig {
        n_train: 1500,
        n_dev: 200,
        n_test: 500,
        seed: 21,
        slice_rate: 0.10,
        ..Default::default()
    });
    let options = OvertonOptions {
        train: TrainConfig { epochs: 8, ..Default::default() },
        ..Default::default()
    };

    println!("== initial build ==");
    let first = build(&dataset, &options).expect("pipeline succeeds");
    println!("worst slices on test:");
    for diag in worst_slices(&first, 5).iter().take(5) {
        println!(
            "  task {:<10} slice {:<24} acc {:.3} (n = {})",
            diag.task, diag.slice, diag.metrics.accuracy, diag.metrics.count
        );
    }

    // The engineer decides the complex-disambiguation slice needs an
    // annotation pass for IntentArg. The annotators' answers are simulated
    // here by a high-quality corrective source derived from the crowd
    // source when it exists, otherwise skipping the record.
    println!("\n== adding corrective supervision on the slice ==");
    let added = add_slice_supervision(
        &mut dataset,
        "complex-disambiguation",
        "IntentArg",
        "annotator_pass",
        |record| match record.tasks.get("IntentArg").and_then(|m| m.get("crowd_arg")) {
            Some(TaskLabel::Select(v)) => Some(TaskLabel::Select(*v)),
            _ => None,
        },
    );
    println!("annotator_pass wrote {added} labels");

    println!("\n== retrain and compare ==");
    let report =
        retrain_and_compare(&dataset, &options, &first, "IntentArg", "complex-disambiguation")
            .expect("pipeline succeeds");
    println!(
        "IntentArg on slice:complex-disambiguation: {:.3} -> {:.3} (delta {:+.3})",
        report.before,
        report.after,
        report.delta()
    );

    // Regression check across all monitored groups.
    let mut regression_count = 0;
    for (task, before_report) in &first.evaluation.reports {
        if let Some(after_report) = report.build.evaluation.reports.get(task) {
            for r in regressions(before_report, after_report, 0.05) {
                println!("  regression in {task}/{}: {:.3} -> {:.3}", r.group, r.before, r.after);
                regression_count += 1;
            }
        }
    }
    if regression_count == 0 {
        println!("no regressions above 5 points on any monitored group");
    }
}

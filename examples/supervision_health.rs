//! Supervision health check: the data-side tooling an Overton engineer
//! runs before (and after) every build.
//!
//! Shows: dataset statistics, estimated source accuracies, source
//! dependency detection (a copycat LF sneaks into the data), confidence
//! calibration of the trained model, and data augmentation with lineage.
//!
//! Run with: `cargo run --release -p harness --example supervision_health`

use overton::{build, OvertonOptions};
use overton_model::{TaskOutput, TrainConfig};
use overton_monitor::calibration_report;
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_store::{DatasetStats, TaskLabel};
use overton_supervision::{
    source_dependencies, AugmentPolicy, LabelMatrix, SynonymSwap, TokenDropout,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn main() {
    let mut dataset = generate_workload(&WorkloadConfig {
        n_train: 1200,
        n_dev: 200,
        n_test: 400,
        seed: 77,
        ..Default::default()
    });

    // A lazy engineer added "lf_copycat": it duplicates lf_keyword's votes.
    for i in dataset.train_indices() {
        let record = dataset.get_mut(i).expect("valid index");
        if let Some(label) = record.tasks.get("Intent").and_then(|m| m.get("lf_keyword")).cloned() {
            record
                .tasks
                .get_mut("Intent")
                .expect("intent labels exist")
                .insert("lf_copycat".to_string(), label);
        }
    }

    println!("== dataset statistics ==");
    println!("{}", DatasetStats::compute(&dataset));

    // Dependency detection over the Intent votes.
    println!("== source dependency check (Intent) ==");
    let sources = dataset.sources_for_task("Intent");
    let mut matrix = LabelMatrix::new(sources.len());
    let classes: Vec<String> = overton_nlp::INTENTS.iter().map(|s| s.to_string()).collect();
    for record in dataset.records() {
        let votes: Vec<Option<u32>> = sources
            .iter()
            .map(|s| {
                record.tasks.get("Intent").and_then(|m| m.get(s)).and_then(|l| match l {
                    TaskLabel::MulticlassOne(c) => {
                        classes.iter().position(|x| x == c).map(|i| i as u32)
                    }
                    _ => None,
                })
            })
            .collect();
        if votes.iter().any(Option::is_some) {
            matrix.push_item(classes.len() as u32, &votes);
        }
    }
    for dep in source_dependencies(&matrix).iter().take(3) {
        println!(
            "  {} <-> {}: co-error {:.3} (expected {:.3}, excess {:+.3})",
            sources[dep.source_a],
            sources[dep.source_b],
            dep.observed_co_error,
            dep.expected_co_error,
            dep.excess
        );
    }
    println!("  (the copycat pair should top this list)\n");

    // Augmentation with lineage.
    println!("== augmentation ==");
    let mut synonyms = BTreeMap::new();
    synonyms.insert("tall".to_string(), vec!["high".to_string()]);
    synonyms.insert("old".to_string(), vec!["aged".to_string()]);
    let policy = AugmentPolicy::new()
        .with(Box::new(SynonymSwap::new("tokens", synonyms, 0.9)), 2.0)
        .with(Box::new(TokenDropout::new("tokens")), 1.0);
    let mut rng = SmallRng::seed_from_u64(9);
    let train_records: Vec<_> =
        dataset.train_indices().iter().map(|&i| dataset.records()[i].clone()).collect();
    let augmented = policy.generate(&train_records, 200, &mut rng);
    println!("generated {} augmented records (tagged aug:*)\n", augmented.len());

    // Train and check calibration of the Intent head.
    println!("== build + calibration ==");
    let built = build(
        &dataset,
        &OvertonOptions {
            train: TrainConfig { epochs: 6, ..Default::default() },
            ..Default::default()
        },
    )
    .expect("build");
    let mut confidences = Vec::new();
    for (record_idx, prediction) in &built.evaluation.predictions {
        let record = &dataset.records()[*record_idx];
        let (Some(TaskOutput::Multiclass { class, dist }), Some(TaskLabel::MulticlassOne(gold))) =
            (prediction.tasks.get("Intent"), record.gold("Intent"))
        else {
            continue;
        };
        let correct = overton_nlp::INTENTS.get(*class).is_some_and(|c| c == gold);
        confidences.push((f64::from(dist[*class]), correct));
    }
    let report = calibration_report(&confidences, 10);
    println!("Intent accuracy: {:.3}", built.test_accuracy("Intent"));
    println!("expected calibration error: {:.4}", report.ece);
    for bin in report.bins.iter().filter(|b| b.count > 0) {
        println!(
            "  conf [{:.1}, {:.1}): n={:<4} mean conf {:.3} accuracy {:.3}",
            bin.lo, bin.hi, bin.count, bin.mean_confidence, bin.accuracy
        );
    }
}

//! Quickstart: the complete Overton loop in one file.
//!
//! Builds a synthetic factoid-QA product (schema + weakly-supervised data
//! file), seals it into the sharded row store the pipeline scans, runs the
//! pipeline (combine supervision → train → package), prints the
//! fine-grained quality reports an engineer monitors, and serves a query
//! through the deployable artifact.
//!
//! Run with: `cargo run --release -p harness --example quickstart`

use overton::{build_from_store, OvertonOptions};
use overton_model::{Server, TrainConfig};
use overton_nlp::{generate_workload, KnowledgeBase, TrafficConfig, TrafficStream, WorkloadConfig};
use overton_serving::{CascadeEngine, ServingConfig, TrafficBaseline, WorkerPool};
use overton_store::{PayloadValue, Record, SetElement};
use std::sync::Arc;

fn main() {
    // 1. The "data file": a workload of factoid queries with three weak
    //    sources per task, slices, and curated gold dev/test splits.
    println!("== generating workload ==");
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 1500,
        n_dev: 200,
        n_test: 400,
        seed: 7,
        ..Default::default()
    });
    println!(
        "{} records ({} train / {} dev / {} test), slices: {:?}",
        dataset.len(),
        dataset.train_indices().len(),
        dataset.dev_indices().len(),
        dataset.test_indices().len(),
        dataset.slice_names(),
    );

    // 2. Seal the data file into the sharded row store: zero-copy binary
    //    rows, per-shard checksums, and a tag/slice/source index built
    //    once. Every hot pipeline stage scans this, shard-parallel.
    println!("\n== sealing into the sharded row store ==");
    let store = dataset.seal();
    println!(
        "{} rows in {} shards, {:.1} KiB encoded, per-shard checksums {:?}",
        store.len(),
        store.num_shards(),
        store.total_bytes() as f64 / 1024.0,
        store.shard_checksums().iter().map(|c| c & 0xffff).collect::<Vec<_>>(),
    );
    // A shard-parallel scan: count slice membership without touching the
    // eager record vector (each worker walks its shard via zero-copy
    // views; per-shard partials merge in shard order).
    let sliced: usize = store
        .par_scan(|scan| {
            let mut n = 0usize;
            for (_, view) in scan.views() {
                n += usize::from(view?.in_slice("complex-disambiguation"));
            }
            Ok(n)
        })
        .expect("scan succeeds")
        .into_iter()
        .sum();
    println!("par_scan: {sliced} rows in slice complex-disambiguation");

    // 3. Build: Overton combines the conflicting supervision with a label
    //    model (one shard-parallel scan for all tasks), compiles the
    //    schema into a multitask model with slice heads, trains, and
    //    packages a deployable artifact.
    println!("\n== building (combine supervision, train, package) ==");
    let options = OvertonOptions {
        train: TrainConfig { epochs: 8, ..Default::default() },
        ..Default::default()
    };
    let built = build_from_store(&store, &options).expect("pipeline succeeds");

    println!("chosen architecture: {:?}", built.chosen_config.encoder);
    println!("model weights: {}", built.model.num_weights());
    println!("\nestimated source accuracies (Intent):");
    for diag in &built.diagnostics["Intent"] {
        println!(
            "  {:<14} coverage {:.2}  est. accuracy {}",
            diag.name,
            diag.coverage,
            diag.estimated_accuracy.map_or("n/a".to_string(), |a| format!("{a:.3}")),
        );
    }

    // 4. The monitoring view: per-task reports with per-tag/per-slice rows.
    println!("\n== fine-grained quality reports (test split) ==");
    for (task, report) in &built.evaluation.reports {
        let _ = task;
        println!("{report}");
    }

    // 5. Serving: load the artifact and answer a query.
    println!("== serving ==");
    let server = Server::load(&built.artifact);
    let record = Record::new()
        .with_payload(
            "tokens",
            PayloadValue::Sequence(
                ["how", "tall", "is", "washington"].iter().map(|s| s.to_string()).collect(),
            ),
        )
        .with_payload("query", PayloadValue::Singleton("how tall is washington".into()))
        .with_payload(
            "entities",
            PayloadValue::Set(vec![
                SetElement { id: "george_washington".into(), span: (3, 4) },
                SetElement { id: "washington_dc".into(), span: (3, 4) },
                SetElement { id: "washington_state".into(), span: (3, 4) },
            ]),
        );
    let response = server.predict(&record).expect("valid record");
    println!("query: \"how tall is washington\"");
    for (task, output) in &response.tasks {
        println!("  {task}: {output:?}");
    }
    println!("  slice memberships: {:?}", response.slices);

    // 6. Production serving: a Poisson traffic stream through the batched
    //    worker pool, with live telemetry against a training-time baseline.
    println!("\n== serving a live traffic stream ==");
    let dev_records: Vec<Record> =
        dataset.dev_indices().iter().map(|&i| dataset.records()[i].clone()).collect();
    let baseline = TrafficBaseline::collect(&server, &dev_records).expect("baseline");
    let engine = Arc::new(CascadeEngine::single(server));
    let pool =
        WorkerPool::start(engine, ServingConfig { workers: 4, max_batch: 32 }, Some(baseline));
    let kb = KnowledgeBase::standard();
    let mut stream =
        TrafficStream::new(&kb, TrafficConfig { qps: 500.0, seed: 8, ..Default::default() });
    let replies = pool.process(stream.records(1000));
    let errors = replies.iter().filter(|r| r.result.is_err()).count();
    println!("served {} requests ({errors} errors)", replies.len());
    println!("{}", pool.snapshot());
    pool.shutdown();
}

//! Quickstart: the complete Overton loop in one file, through the front
//! door.
//!
//! Builds a synthetic factoid-QA product, runs it as a staged
//! [`Project`]/[`Run`] (ingest → combine supervision → search → train →
//! package → evaluate, with per-stage telemetry), prints the fine-grained
//! quality reports an engineer monitors, deploys the packaged artifact to
//! the serving runtime, and feeds live-traffic quality reports back into
//! the slice worklist — Figure 1's loop end to end.
//!
//! Run with: `cargo run --release -p harness --example quickstart`

use overton::{OvertonOptions, Project};
use overton_model::TrainConfig;
use overton_nlp::{generate_workload, KnowledgeBase, TrafficConfig, TrafficStream, WorkloadConfig};
use overton_store::Record;

fn main() {
    // 1. The "data file": a workload of factoid queries with three weak
    //    sources per task, slices, and curated gold dev/test splits. (For
    //    the literal two-file form of the same contract, see
    //    examples/two_file_contract.rs and the `overton` CLI.)
    println!("== generating workload ==");
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 1500,
        n_dev: 200,
        n_test: 400,
        seed: 7,
        ..Default::default()
    });
    println!(
        "{} records ({} train / {} dev / {} test), slices: {:?}",
        dataset.len(),
        dataset.train_indices().len(),
        dataset.dev_indices().len(),
        dataset.test_indices().len(),
        dataset.slice_names(),
    );

    // 2. The project: the declarative front door. Staging the run makes
    //    every pipeline step an explicit, timed, persisted-when-rooted
    //    stage.
    println!("\n== running the staged pipeline ==");
    let project =
        Project::from_dataset(&dataset).named("quickstart").with_options(OvertonOptions {
            train: TrainConfig { epochs: 8, ..Default::default() },
            ..Default::default()
        });
    let mut run = project.start().expect("ingest succeeds");
    println!("ingested {} rows into {} shards", run.store().len(), run.store().num_shards());
    while let Some(stage) = run.next_stage() {
        run.advance().expect("stage succeeds");
        let done = run.report().stage(stage).expect("stage recorded");
        println!("  stage {stage:<8} {:>6} records  {:>5} ms", done.records, done.wall_ms);
    }

    println!("\nchosen architecture: {:?}", run.chosen_config().unwrap().encoder);
    println!("\nestimated source accuracies (Intent):");
    for diag in &run.diagnostics()["Intent"] {
        println!(
            "  {:<14} coverage {:.2}  est. accuracy {}",
            diag.name,
            diag.coverage,
            diag.estimated_accuracy.map_or("n/a".to_string(), |a| format!("{a:.3}")),
        );
    }

    // 3. The monitoring view: the run report plus per-task reports with
    //    per-tag/per-slice rows, and the ranked slice worklist.
    println!("\n== run report ==");
    print!("{}", run.report());
    println!("\n== fine-grained quality reports (test split) ==");
    for report in run.evaluation().expect("run evaluated").reports.values() {
        println!("{report}");
    }
    println!("== worst slices (the week-to-week worklist) ==");
    for diag in run.worst_slices(5).iter().take(3) {
        println!(
            "  {}/{}  acc {:.3} over {} examples",
            diag.task, diag.slice, diag.metrics.accuracy, diag.metrics.count
        );
    }

    // 4. Deploy: the packaged artifact goes to the registry and the
    //    batched worker pool — the right-hand side of Figure 1.
    println!("\n== deploying ==");
    let mut deployment = project.deploy(&run).expect("deploy succeeds");
    let kb = KnowledgeBase::standard();
    let mut stream =
        TrafficStream::new(&kb, TrafficConfig { qps: 500.0, seed: 8, ..Default::default() });
    let records: Vec<Record> = stream.records(1000);
    let replies = deployment.observe(&records);
    let errors = replies.iter().filter(|r| r.is_err()).count();
    println!("served {} live requests ({errors} errors)", replies.len());
    println!("{}", deployment.pool().snapshot());

    // 5. Monitor: quality reports — whether from the test evaluation or
    //    from canary scoring of after-the-fact-labeled live traffic (see
    //    examples/deployment.rs) — feed straight back into the slice
    //    worklist: the edge of the loop where the engineer goes back to
    //    editing data.
    let worklist = project.monitor(&run.evaluation().unwrap().reports, 5);
    println!("== monitor: {} (task, slice) pairs in the worklist ==", worklist.len());
    if let Some(worst) = worklist.first() {
        println!(
            "next data edit: task {} on slice '{}' (acc {:.3})",
            worst.task, worst.slice, worst.metrics.accuracy
        );
    }
}

//! End-to-end integration: schema + data file → pipeline → deployable
//! artifact → serving, across all crates.

use overton::{build, OvertonOptions};
use overton_model::{ModelRegistry, Server, TrainConfig};
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_store::{Dataset, TaskLabel};

fn quick_workload(seed: u64) -> Dataset {
    generate_workload(&WorkloadConfig {
        n_train: 300,
        n_dev: 60,
        n_test: 120,
        seed,
        ..Default::default()
    })
}

fn quick_options(epochs: usize) -> OvertonOptions {
    OvertonOptions {
        train: TrainConfig { epochs, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn schema_to_serving_roundtrip() {
    let dataset = quick_workload(61);
    let built = build(&dataset, &quick_options(4)).expect("pipeline");

    // Publish to a registry, fetch back, serve a gold test record, and
    // check the served intent agrees with the in-memory evaluation.
    let dir = std::env::temp_dir().join(format!("overton-it-registry-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let registry = ModelRegistry::open(&dir).expect("registry");
    let id = registry.publish(&built.artifact, "it-model").expect("publish");
    let fetched = registry.fetch(&id).expect("fetch");
    let server = Server::load(&fetched);

    let mut agreements = 0usize;
    let mut total = 0usize;
    for &i in dataset.test_indices().iter().take(30) {
        let record = &dataset.records()[i];
        let response = server.predict(record).expect("serve");
        if let (
            Some(overton_model::ServedOutput::Multiclass { class, .. }),
            Some(TaskLabel::MulticlassOne(gold)),
        ) = (response.tasks.get("Intent"), record.gold("Intent"))
        {
            total += 1;
            if class == gold {
                agreements += 1;
            }
        }
    }
    assert!(total >= 20, "most test records must produce servable intents");
    // The trained model's serving accuracy should roughly match the
    // evaluation accuracy (same weights, same records).
    let expected = built.test_accuracy("Intent");
    let served = agreements as f64 / total as f64;
    assert!(
        (served - expected).abs() < 0.25,
        "served accuracy {served:.3} vs evaluated {expected:.3}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn signature_survives_architecture_change() {
    let dataset = quick_workload(62);
    let a = build(&dataset, &quick_options(1)).expect("a");
    let mut opts = quick_options(1);
    opts.base_model.encoder = overton_model::EncoderKind::Lstm;
    opts.base_model.hidden_dim = 64;
    let b = build(&dataset, &opts).expect("b");
    assert_eq!(a.artifact.signature, b.artifact.signature);
}

#[test]
fn data_file_roundtrip_then_build() {
    // Write the data file as JSONL (the engineer-facing format), read it
    // back, and confirm the pipeline runs identically on the copy.
    let dataset = quick_workload(63);
    let mut buf = Vec::new();
    dataset.write_jsonl(&mut buf).expect("write");
    let reloaded =
        Dataset::from_jsonl_reader(dataset.schema().clone(), buf.as_slice()).expect("read");
    assert_eq!(reloaded.len(), dataset.len());
    let a = build(&dataset, &quick_options(2)).expect("a");
    let b = build(&reloaded, &quick_options(2)).expect("b");
    // Same data, same seeds: identical accuracy.
    assert_eq!(a.test_accuracy("Intent"), b.test_accuracy("Intent"));
}

#[test]
fn row_store_preserves_the_training_corpus() {
    let dataset = quick_workload(64);
    let store = overton_store::rowstore::RowStore::build(dataset.records());
    let mut bytes = Vec::new();
    store.write(&mut bytes).expect("serialize");
    let loaded = overton_store::rowstore::RowStore::from_bytes(bytes).expect("parse");
    assert_eq!(loaded.len(), dataset.len());
    for (i, record) in dataset.records().iter().enumerate().step_by(17) {
        assert_eq!(&loaded.get(i).expect("row decodes"), record);
    }
}

#[test]
fn mean_accuracy_beats_untrained_model() {
    let dataset = quick_workload(65);
    let trained = build(&dataset, &quick_options(4)).expect("trained");
    let untrained = build(&dataset, &quick_options(0)).err();
    // epochs=0 still trains nothing but should not error; handle both ways:
    if untrained.is_none() {
        // Can't compare; at least assert trained is reasonable.
    }
    assert!(trained.mean_test_accuracy() > 0.5, "{}", trained.mean_test_accuracy());
}

//! The socket tier's parser battery: the bounded HTTP subset against
//! arbitrary bytes (proptest) and the seeded hostile-wire corpus
//! (`overton_nlp::hostile_corpus`). The contract under test: every
//! malformed input yields a client-error response (or a clean quiet
//! close), never a panic, an unbounded buffer, or a hang.

use overton_nlp::{hostile_corpus, HOSTILE_FAMILIES};
use overton_serving::net::http::{read_request, HttpLimits};
use overton_serving::net::wire::decode_predict_request;
use overton_serving::net::{HttpError, Request};
use proptest::prelude::*;
use std::io::BufReader;
use std::time::{Duration, Instant};

fn far() -> Instant {
    Instant::now() + Duration::from_secs(5)
}

fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
    read_request(&mut BufReader::new(bytes), &HttpLimits::default(), far())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes: the parser may accept or reject, but it must
    /// return — no panic — and a rejection must map to a well-formed
    /// client-error status or a quiet close (clean EOF).
    #[test]
    fn arbitrary_bytes_never_panic_the_parser(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        match parse(&bytes) {
            Ok(req) => {
                // Whatever parsed is internally consistent.
                prop_assert!(!req.method.is_empty());
                prop_assert!(!req.target.is_empty());
                for (name, _) in &req.headers {
                    prop_assert_eq!(name.to_ascii_lowercase(), name.clone());
                }
            }
            Err(e) => {
                if let Some(status) = e.status() {
                    prop_assert!(
                        (400..=505).contains(&status),
                        "non-client-error status {} for {:?}", status, e
                    );
                    // Every answerable error produces a response that
                    // closes the connection.
                    let response = e.response().expect("status implies a response");
                    prop_assert_eq!(response.status, status);
                    prop_assert_eq!(response.header("connection"), Some("close"));
                }
            }
        }
    }

    /// A structurally valid request round-trips through the parser with
    /// method, target, headers, and body intact.
    #[test]
    fn valid_requests_roundtrip(
        method_idx in 0usize..4,
        target in "/[a-z0-9/_-]{0,40}",
        headers in prop::collection::btree_map("x-[a-z]{1,10}", "[a-zA-Z0-9 _.-]{0,40}", 0..8),
        body in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let method = ["GET", "POST", "PUT", "DELETE"][method_idx];
        let mut bytes = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
        for (name, value) in &headers {
            bytes.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        bytes.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
        bytes.extend_from_slice(&body);
        let req = parse(&bytes).expect("structurally valid request must parse");
        prop_assert_eq!(&req.method, method);
        prop_assert_eq!(&req.target, &target);
        prop_assert_eq!(&req.body, &body);
        for (name, value) in &headers {
            // Names arrive lowercased, values trimmed.
            prop_assert_eq!(req.header(name), Some(value.trim()));
        }
    }
}

/// The full hostile corpus through the parser (and, for the payloads
/// whose framing is valid, through the wire decoder): every family is
/// rejected with a client-visible error — the parser-level half of the
/// fuzz battery (`net_serving.rs` repeats it over a real socket).
#[test]
fn every_hostile_family_is_rejected_without_panicking() {
    for payload in hostile_corpus(0xC1D7, 96) {
        match parse(&payload.bytes) {
            Err(e) => {
                let status = e.status().unwrap_or_else(|| {
                    panic!(
                        "{}: parser error {e:?} has no status (quiet close is for \
                            EOF/timeouts, not malformed bytes)",
                        payload.family
                    )
                });
                let expected: std::ops::RangeInclusive<u16> = match payload.family {
                    // A real-looking but unsupported version token is the
                    // one 5xx in the battery (505); junk versions are 400.
                    "bad-version" => 400..=505,
                    _ => 400..=499,
                };
                assert!(
                    expected.contains(&status),
                    "{}: expected {expected:?}, got {status} ({e:?})",
                    payload.family
                );
            }
            Ok(req) => {
                // Only body-level families survive the parser; the wire
                // decoder must then reject the body.
                assert!(
                    matches!(
                        payload.family,
                        "bad-utf8-body" | "bad-json-body" | "wrong-shape-json"
                    ),
                    "{}: parser unexpectedly accepted {:?}",
                    payload.family,
                    String::from_utf8_lossy(&payload.bytes)
                );
                decode_predict_request(&req.body, 4096)
                    .expect_err("hostile body must not decode into records");
            }
        }
    }
    // The corpus actually exercised every family (guards against the
    // corpus and this test drifting apart).
    let seen: std::collections::BTreeSet<&str> =
        hostile_corpus(0xC1D7, 96).iter().map(|p| p.family).collect();
    for family in HOSTILE_FAMILIES {
        assert!(seen.contains(family), "family {family} not covered");
    }
}

//! Integration: Overton on a socket. A real `NetServer` on an ephemeral
//! loopback port, driven by the `NetClient` loopback client — wire
//! parity with the in-process pool (bit for bit), load shedding past the
//! queue high-water mark, connection caps, graceful drain (shutdown and
//! engine hot-swap), and the hostile-wire corpus over live TCP.

use overton_model::{
    CompiledModel, DeployableModel, FeatureSpace, ModelConfig, Server, ServingResponse,
};
use overton_nlp::{generate_workload, hostile_corpus, WorkloadConfig};
use overton_serving::net::{NetClient, NetConfig, NetServer, PredictOutcome, ShedPolicy};
use overton_serving::{CascadeEngine, ServingConfig, WorkerPool};
use overton_store::{Dataset, Record};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn workload(seed: u64) -> Dataset {
    generate_workload(&WorkloadConfig {
        n_train: 60,
        n_dev: 15,
        n_test: 40,
        seed,
        ..Default::default()
    })
}

/// A compiled (untrained — predictions are still deterministic) engine
/// plus the workload's test split.
fn engine_and_records(seed: u64) -> (Arc<CascadeEngine>, Vec<Record>) {
    let ds = workload(seed);
    let space = FeatureSpace::build(&ds);
    let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
    let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
    let records = ds.test_indices().iter().map(|&i| ds.records()[i].clone()).collect();
    (Arc::new(CascadeEngine::single(Server::load(&artifact))), records)
}

fn loopback() -> TcpListener {
    TcpListener::bind("127.0.0.1:0").expect("bind ephemeral loopback port")
}

fn start(pool: &Arc<WorkerPool>, config: NetConfig) -> NetServer {
    NetServer::start(loopback(), Arc::clone(pool), config).expect("start net server")
}

/// The acceptance path: batched JSON requests over a real socket come
/// back identical — `assert_eq!`, which on `ServingResponse` means every
/// f32 bit — to the same records through the in-process pool.
#[test]
fn socket_round_trip_matches_in_process_bit_for_bit() {
    let (engine, records) = engine_and_records(301);
    let pool = Arc::new(WorkerPool::start(
        Arc::clone(&engine),
        ServingConfig { workers: 2, max_batch: 16 },
        None,
    ));
    let reference: Vec<ServingResponse> = pool
        .process(records.clone())
        .into_iter()
        .map(|r| r.result.expect("in-process reference record failed"))
        .collect();

    let server = start(&pool, NetConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect loopback client");
    assert!(client.health().unwrap(), "fresh server must be healthy");

    // Several batches over one keep-alive connection.
    let mut answered = Vec::new();
    for chunk in records.chunks(7) {
        match client.predict(chunk).expect("predict over the wire") {
            PredictOutcome::Answered(results) => {
                for result in results {
                    answered.push(result.expect("wire record failed"));
                }
            }
            PredictOutcome::Shed { .. } => panic!("idle server shed a request"),
        }
    }
    assert_eq!(answered.len(), reference.len());
    for (i, (wire, local)) in answered.iter().zip(&reference).enumerate() {
        assert_eq!(wire, local, "record {i}: wire response differs from in-process");
    }

    // Telemetry over the wire is the pool's own snapshot type: both the
    // in-process reference pass and the socket pass are in it.
    let snap = client.telemetry().expect("GET /telemetry");
    assert_eq!(snap.served, 2 * records.len() as u64);
    assert_eq!(snap.errors, 0);
    assert_eq!(snap.shed, 0);

    // Unknown routes and wrong methods answer cleanly on the same
    // connection.
    let not_found = client.request("GET", "/nope", None).unwrap();
    assert_eq!(not_found.status, 404);
    let wrong_method = client.request("GET", "/predict", None).unwrap();
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));

    let addr = server.local_addr();
    server.drain();
    // The listener is gone: new connections are refused by the kernel.
    assert!(
        NetClient::connect_with_timeout(addr, Duration::from_millis(500)).is_err(),
        "post-drain connect must be refused"
    );
    // The pool outlives the socket tier.
    assert_eq!(pool.process(records[..3].to_vec()).len(), 3);
}

/// Overload: with the pool paused and the queue filled to the high-water
/// mark, the next wire request is shed with `503` + `Retry-After`, the
/// shed surfaces in the telemetry snapshot, the already-admitted
/// requests still complete correctly, and the tier recovers.
#[test]
fn overload_sheds_with_retry_after_then_recovers() {
    let (engine, records) = engine_and_records(302);
    let pool = Arc::new(WorkerPool::start(
        Arc::clone(&engine),
        ServingConfig { workers: 1, max_batch: 4 },
        None,
    ));
    let reference: Vec<ServingResponse> =
        pool.process(records[..4].to_vec()).into_iter().map(|r| r.result.unwrap()).collect();

    let high_water = 4;
    let config = NetConfig {
        shed: ShedPolicy { queue_high_water: high_water, retry_after: Duration::from_secs(2) },
        ..NetConfig::default()
    };
    let server = start(&pool, config);
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // Deterministic overload: pause the workers and fill the queue to
    // exactly the high-water mark in-process.
    pool.pause();
    let tickets = pool.submit_burst(records[..high_water].to_vec());
    assert_eq!(pool.queue_depth(), high_water);

    // The wire request hits admission control and is turned away without
    // touching the queue.
    match client.predict(&records[..2]).unwrap() {
        PredictOutcome::Shed { retry_after_secs } => {
            assert_eq!(retry_after_secs, Some(2), "Retry-After must carry the policy's hint");
        }
        PredictOutcome::Answered(_) => panic!("request past high-water must be shed"),
    }
    assert_eq!(pool.queue_depth(), high_water, "shed request must not enqueue");

    // The shed shows up in the snapshot — over the wire, on the same
    // connection that was just shed (shedding closes nothing).
    let snap = client.telemetry().unwrap();
    assert_eq!(snap.shed, 1);

    // The admitted requests were not harmed: release the workers and
    // every queued ticket completes with the right answer.
    pool.resume();
    for (ticket, expected) in tickets.into_iter().zip(&reference) {
        assert_eq!(&ticket.wait().result.unwrap(), expected);
    }

    // Recovered: the queue is empty again and the wire admits requests.
    match client.predict(&records[..4]).unwrap() {
        PredictOutcome::Answered(results) => {
            for (result, expected) in results.into_iter().zip(&reference) {
                assert_eq!(&result.unwrap(), expected);
            }
        }
        PredictOutcome::Shed { .. } => panic!("empty queue must admit"),
    }
    assert_eq!(pool.snapshot().shed, 1, "recovery sheds nothing further");
    server.drain();
}

/// Graceful drain with a request in flight: the in-flight request gets
/// its complete, correct response; a connection that was open when drain
/// began gets `503 draining` and a clean close; new connections are
/// refused at the kernel.
#[test]
fn drain_completes_in_flight_requests_and_refuses_new_work() {
    let (engine, records) = engine_and_records(303);
    let pool = Arc::new(WorkerPool::start(
        Arc::clone(&engine),
        ServingConfig { workers: 1, max_batch: 8 },
        None,
    ));
    let reference: Vec<ServingResponse> =
        pool.process(records[..3].to_vec()).into_iter().map(|r| r.result.unwrap()).collect();

    let server = start(&pool, NetConfig::default());
    let addr = server.local_addr();

    // A bystander connection, accepted before drain.
    let mut bystander = NetClient::connect(addr).unwrap();
    assert!(bystander.health().unwrap());

    // Park the workers so the in-flight request is provably mid-pool when
    // drain begins.
    pool.pause();
    let in_flight = std::thread::spawn({
        let records = records[..3].to_vec();
        move || {
            let mut client = NetClient::connect(addr).unwrap();
            client.predict(&records).expect("in-flight request must complete")
        }
    });
    // Wait until the request's records are actually queued.
    while pool.queue_depth() < 3 {
        std::thread::sleep(Duration::from_millis(2));
    }

    let handle = server.drain_handle();
    handle.request_drain();
    assert!(server.is_draining());

    // The bystander sees the drain state and gets closed cleanly after.
    assert!(!bystander.health().unwrap(), "healthz must report draining");
    assert!(bystander.server_closed(), "draining responses close the connection");

    // Release the workers and complete the drain: it blocks until the
    // in-flight response has been written.
    pool.resume();
    server.drain();

    match in_flight.join().expect("in-flight client thread") {
        PredictOutcome::Answered(results) => {
            assert_eq!(results.len(), reference.len());
            for (result, expected) in results.into_iter().zip(&reference) {
                assert_eq!(&result.unwrap(), expected, "drain corrupted an in-flight response");
            }
        }
        PredictOutcome::Shed { .. } => panic!("a request admitted before drain must be answered"),
    }
    assert!(
        NetClient::connect_with_timeout(addr, Duration::from_millis(500)).is_err(),
        "post-drain connect must be refused"
    );
}

/// Engine hot-swap under the socket: predictions flow over one keep-alive
/// connection across a `swap_engine`, and afterwards the wire serves the
/// new engine's answers — same drill the deployment manager runs on
/// promotion.
#[test]
fn engine_hot_swap_under_live_socket_traffic() {
    let ds = workload(304);
    let space = FeatureSpace::build(&ds);
    let small = CompiledModel::compile(
        ds.schema(),
        &space,
        &ModelConfig { token_dim: 8, hidden_dim: 8, ..Default::default() },
        None,
    );
    let big = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
    let small_artifact = DeployableModel::package(&small, &space, BTreeMap::new());
    let big_artifact = DeployableModel::package(&big, &space, BTreeMap::new());
    let records: Vec<Record> = ds.test_indices().iter().map(|&i| ds.records()[i].clone()).collect();

    let engine_a = Arc::new(CascadeEngine::single(Server::load(&small_artifact)));
    let engine_b = Arc::new(CascadeEngine::single(Server::load(&big_artifact)));
    let expected_b: Vec<ServingResponse> = Server::load(&big_artifact)
        .predict_batch(&records)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();

    let pool = Arc::new(WorkerPool::start(engine_a, ServingConfig::default(), None));
    let server = start(&pool, NetConfig::default());
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let before = match client.predict(&records).unwrap() {
        PredictOutcome::Answered(results) => results,
        PredictOutcome::Shed { .. } => panic!("idle server shed"),
    };
    // Same schema + slice space: the swap is accepted under traffic.
    pool.swap_engine(engine_b).expect("same-signature swap");
    let after = match client.predict(&records).unwrap() {
        PredictOutcome::Answered(results) => results,
        PredictOutcome::Shed { .. } => panic!("idle server shed"),
    };
    for (result, expected) in after.into_iter().zip(&expected_b) {
        assert_eq!(&result.unwrap(), expected, "post-swap wire answers must be the new engine's");
    }
    // And the swap was observable: the two engines disagree somewhere.
    assert_ne!(
        before.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
        expected_b,
        "swap test needs engines that actually differ"
    );
    server.drain();
}

/// The hostile corpus over live TCP: every payload gets a client-error
/// response or a clean close — the server never dies, and still answers
/// a healthy request afterwards.
#[test]
fn hostile_corpus_over_tcp_never_kills_the_server() {
    let (engine, records) = engine_and_records(305);
    let pool = Arc::new(WorkerPool::start(engine, ServingConfig::default(), None));
    // Short timeouts so truncated-body payloads resolve quickly.
    let config = NetConfig {
        read_timeout: Duration::from_millis(150),
        request_deadline: Duration::from_millis(400),
        ..NetConfig::default()
    };
    let server = start(&pool, config);
    let addr = server.local_addr();

    for payload in hostile_corpus(0xBEEF, 48) {
        let mut client = NetClient::connect_with_timeout(addr, Duration::from_secs(2))
            .unwrap_or_else(|e| {
                panic!(
                    "{}: connect failed — did an earlier payload kill the server? {e}",
                    payload.family
                )
            });
        // A quiet close (or timeout-then-close) — the Err arm — is also
        // acceptable; what is not acceptable is a hang, and the client's
        // own read timeout would turn a hang into a test failure here.
        if let Ok(response) = client.send_raw(&payload.bytes) {
            assert!(
                (400..=505).contains(&response.status) && response.status != 500,
                "{}: expected a client error, got {}",
                payload.family,
                response.status
            );
        }
    }

    // Still alive and still correct.
    let mut client = NetClient::connect(addr).unwrap();
    assert!(client.health().unwrap());
    match client.predict(&records[..2]).unwrap() {
        PredictOutcome::Answered(results) => assert!(results.iter().all(Result::is_ok)),
        PredictOutcome::Shed { .. } => panic!("idle server shed"),
    }
    server.drain();
}

/// The connection cap: with one slot and a keep-alive occupant, the next
/// connection is answered `503` at the door (with `Retry-After`) and
/// counted as shed; freeing the slot readmits.
#[test]
fn connection_cap_refuses_at_the_door() {
    let (engine, records) = engine_and_records(306);
    let pool = Arc::new(WorkerPool::start(engine, ServingConfig::default(), None));
    let config = NetConfig { max_connections: 1, ..NetConfig::default() };
    let server = start(&pool, config);
    let addr = server.local_addr();

    let mut occupant = NetClient::connect(addr).unwrap();
    assert!(occupant.health().unwrap(), "the occupant holds the only slot");

    let mut excess = NetClient::connect(addr).unwrap();
    let response = excess.read_response().expect("refusal is a real HTTP response");
    assert_eq!(response.status, 503);
    assert!(response.header("retry-after").is_some());
    assert!(excess.server_closed(), "refused connections are closed");
    assert_eq!(server.refused_connections(), 1);
    assert_eq!(pool.snapshot().shed, 1, "door refusals count as shed");

    // The occupant's slot frees on close; a new connection gets in.
    assert!(occupant.health().unwrap(), "occupant unaffected by the refusal");
    drop(occupant);
    let mut next = loop {
        // The occupant's handler notices the close within its read
        // timeout; retry until the slot frees.
        let mut candidate = NetClient::connect(addr).unwrap();
        match candidate.health() {
            Ok(true) => break candidate,
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    match next.predict(&records[..1]).unwrap() {
        PredictOutcome::Answered(results) => assert!(results[0].is_ok()),
        PredictOutcome::Shed { .. } => panic!("freed slot must admit"),
    }
    // Exactly two connections were ever admitted past the door (the
    // occupant and the replacement); every other attempt was refused.
    assert_eq!(server.accepted_connections(), 2);
    assert!(server.refused_connections() >= 1);
    server.drain();
}

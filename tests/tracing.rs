//! Integration: end-to-end request tracing over a real socket. A trace
//! id supplied in `x-overton-trace` must echo back and round-trip into
//! `GET /trace/<id>` with all eight request-path spans in causal order;
//! generated and invalid ids take the same path; `GET /metrics` must
//! emit grammatically valid Prometheus text whose counters (including
//! shed) agree with the telemetry snapshot; slowest-trace retention
//! orders by duration; and tracing off means the trace routes 404 while
//! `/metrics` still answers.

use overton_model::{CompiledModel, DeployableModel, FeatureSpace, ModelConfig, Server};
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_serving::net::{NetClient, NetConfig, NetServer, PredictOutcome, ShedPolicy};
use overton_serving::{
    validate_exposition, CascadeEngine, ServingConfig, SpanName, WorkerPool, REQUEST_SPANS,
};
use overton_store::{Dataset, Record};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn workload(seed: u64) -> Dataset {
    generate_workload(&WorkloadConfig {
        n_train: 60,
        n_dev: 15,
        n_test: 40,
        seed,
        ..Default::default()
    })
}

fn engine_and_records(seed: u64) -> (Arc<CascadeEngine>, Vec<Record>) {
    let ds = workload(seed);
    let space = FeatureSpace::build(&ds);
    let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
    let artifact = DeployableModel::package(&model, &space, BTreeMap::new());
    let records = ds.test_indices().iter().map(|&i| ds.records()[i].clone()).collect();
    (Arc::new(CascadeEngine::single(Server::load(&artifact))), records)
}

fn start_traced(seed: u64) -> (NetServer, Arc<WorkerPool>, Vec<Record>) {
    let (engine, records) = engine_and_records(seed);
    let pool =
        Arc::new(WorkerPool::start(engine, ServingConfig { workers: 2, max_batch: 8 }, None));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral loopback port");
    let server = NetServer::start(listener, Arc::clone(&pool), NetConfig::default())
        .expect("start net server");
    (server, pool, records)
}

/// The acceptance path: a client-supplied trace id echoes back in the
/// response header and `GET /trace/<id>` returns all eight request-path
/// spans — present, named, and with starts in causal order.
#[test]
fn supplied_trace_id_round_trips_with_all_spans_ordered() {
    let (server, _pool, records) = start_traced(601);
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let id = "itest-trace.A-1";
    let (outcome, echoed) = client.predict_traced(&records[..3], Some(id)).unwrap();
    assert!(matches!(outcome, PredictOutcome::Answered(_)), "idle server must answer");
    assert_eq!(echoed.as_deref(), Some(id), "supplied id must echo back");

    let report = client.trace(id).unwrap();
    assert_eq!(report.id, id);
    assert_eq!(report.outcome, "ok");
    assert_eq!(report.records, 3);
    let names: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
    let expected: Vec<&str> = SpanName::ALL.iter().map(|s| s.name()).collect();
    assert_eq!(names, expected, "all {REQUEST_SPANS} spans, in request-path order");
    let mut prev_start = 0;
    for span in &report.spans {
        assert!(
            span.start_micros >= prev_start,
            "span starts must be causally ordered: {:?}",
            report.spans
        );
        assert!(span.end_micros >= span.start_micros, "span cannot end before it starts");
        prev_start = span.start_micros;
    }
    assert!(report.total_micros >= report.spans.last().unwrap().start_micros);
    server.drain();
}

/// No header → the server generates an id (and echoes it); an id that
/// breaks the charset/length contract is replaced, not trusted.
#[test]
fn generated_and_invalid_ids_still_trace() {
    let (server, _pool, records) = start_traced(602);
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let (_, echoed) = client.predict_traced(&records[..1], None).unwrap();
    let generated = echoed.expect("sampled request gets a generated id");
    assert!(
        generated.len() == 16 && generated.chars().all(|c| c.is_ascii_hexdigit()),
        "generated ids are 16 hex chars, got {generated:?}"
    );
    assert_eq!(client.trace(&generated).unwrap().outcome, "ok");

    let hostile = "spaces and \"quotes\" are not a trace id";
    let (_, echoed) = client.predict_traced(&records[..1], Some(hostile)).unwrap();
    let replaced = echoed.expect("invalid ids fall back to a generated one");
    assert_ne!(replaced, hostile, "an invalid supplied id must not be echoed verbatim");
    assert!(client.trace(&replaced).is_ok());
    server.drain();
}

/// `GET /metrics` answers valid exposition whose counters agree with
/// the snapshot — including the shed counter after a deterministic
/// overload (satellite: shed appears both in text and in write_csv's
/// source snapshot).
#[test]
fn metrics_exposition_parses_and_counts_shed() {
    let (engine, records) = engine_and_records(603);
    let pool =
        Arc::new(WorkerPool::start(engine, ServingConfig { workers: 1, max_batch: 4 }, None));
    let high_water = 2;
    let config = NetConfig {
        shed: ShedPolicy { queue_high_water: high_water, retry_after: Duration::from_secs(1) },
        ..NetConfig::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = NetServer::start(listener, Arc::clone(&pool), config).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // One answered batch, then a deterministic shed: pause the workers,
    // fill the queue to the high-water mark, send one more over the wire.
    assert!(matches!(client.predict(&records[..2]).unwrap(), PredictOutcome::Answered(_)));
    pool.pause();
    let tickets = pool.submit_burst(records[..high_water].to_vec());
    assert!(matches!(client.predict(&records[..1]).unwrap(), PredictOutcome::Shed { .. }));
    pool.resume();
    for ticket in tickets {
        ticket.wait();
    }

    let text = client.metrics().unwrap();
    validate_exposition(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    let snap = pool.snapshot();
    assert!(snap.shed >= 1);
    for needle in [
        format!("overton_requests_shed_total {}", snap.shed),
        format!("overton_requests_served_total {}", snap.served),
        "overton_request_latency_seconds_bucket".to_string(),
        "overton_stage_duration_seconds_bucket{stage=\"engine-forward\"".to_string(),
        "overton_traces_recorded_total".to_string(),
        "overton_connections_active 1".to_string(),
    ] {
        assert!(text.contains(&needle), "missing {needle:?} in:\n{text}");
    }
    server.drain();
}

/// Unknown ids 404 through the typed client, and the slowest-trace list
/// is ordered by total duration, slowest first.
#[test]
fn unknown_trace_404s_and_slowest_retention_orders_by_duration() {
    let (server, _pool, records) = start_traced(604);
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let err = client.trace("never-recorded").unwrap_err();
    assert!(err.to_string().contains("404"), "unknown id must be a 404: {err}");

    for (i, chunk) in records.chunks(5).take(4).enumerate() {
        let id = format!("slow-{i}");
        client.predict_traced(chunk, Some(&id)).unwrap();
    }
    let slowest = client.traces().unwrap();
    assert!(!slowest.is_empty(), "retention must keep finished traces");
    for pair in slowest.windows(2) {
        assert!(
            pair[0].total_micros >= pair[1].total_micros,
            "slowest-first ordering violated: {slowest:?}"
        );
    }
    for t in &slowest {
        assert_eq!(t.outcome, "ok");
        assert!(!t.spans.is_empty());
    }
    server.drain();
}

/// Tracing disabled: predicts carry no echo header, the trace routes
/// answer 404, and `/metrics` still serves (without trace families).
#[test]
fn tracing_disabled_is_404_but_metrics_still_serve() {
    let (engine, records) = engine_and_records(605);
    let pool =
        Arc::new(WorkerPool::start(engine, ServingConfig { workers: 1, max_batch: 8 }, None));
    let config = NetConfig { trace: None, ..NetConfig::default() };
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = NetServer::start(listener, Arc::clone(&pool), config).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    let (outcome, echoed) = client.predict_traced(&records[..1], Some("ignored")).unwrap();
    assert!(matches!(outcome, PredictOutcome::Answered(_)));
    assert_eq!(echoed, None, "tracing off: nothing to echo");
    assert!(client.trace("ignored").is_err());
    assert!(client.traces().is_err());

    let text = client.metrics().unwrap();
    validate_exposition(&text).unwrap();
    assert!(text.contains("overton_requests_served_total 1"), "{text}");
    assert!(!text.contains("overton_traces_recorded_total"), "{text}");
    server.drain();
}

//! The front door end to end: `Project::from_files` → staged `Run` →
//! `deploy` → `monitor`, resume from every completed stage, precise
//! errors on malformed two-file input, and bit-identical parity between
//! the legacy `build()` shims and a `Project` run.

use overton::serving::{CanaryConfig, CanaryOutcome};
use overton::store::StoreError;
use overton::{build_from_store, Error, OvertonOptions, Project, Stage};
use overton_model::TrainConfig;
use overton_nlp::{generate_workload_sealed, write_two_file_workload, WorkloadConfig};
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("overton-project-api-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn quick_options(epochs: usize) -> OvertonOptions {
    OvertonOptions {
        train: TrainConfig { epochs, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn two_file_project_end_to_end_deploy_and_monitor() {
    let root = temp_root("e2e");
    let (schema_path, data_path) = write_two_file_workload(
        &WorkloadConfig { n_train: 250, n_dev: 50, n_test: 80, seed: 9, ..Default::default() },
        &root,
    )
    .unwrap();

    // Build purely from the two files, persisting the run.
    let project = Project::from_files(&schema_path, &data_path)
        .named("e2e")
        .with_options(quick_options(3))
        .at(&root);
    let run = project.run().expect("staged run succeeds");
    assert!(run.is_complete());
    assert_eq!(run.id(), "run-0001");
    assert_eq!(project.latest_run_id().unwrap().as_deref(), Some("run-0001"));

    // Per-stage telemetry: all six stages, with sensible record counts.
    let report = run.report();
    let stages: Vec<Stage> = report.stages.iter().map(|s| s.stage).collect();
    assert_eq!(stages, Stage::ALL.to_vec());
    assert_eq!(report.stage(Stage::Ingest).unwrap().records, 380);
    assert_eq!(report.stage(Stage::Combine).unwrap().records, 300);
    assert_eq!(report.stage(Stage::Evaluate).unwrap().records, 80);
    assert!(report.mean_test_accuracy > 0.4, "{}", report.mean_test_accuracy);
    assert_eq!(report.task_accuracy.len(), 4);

    // Every stage artifact landed in the run directory.
    let run_dir = run.dir().unwrap();
    for file in [
        "store/manifest.json",
        "combine.json",
        "search.json",
        "train.json",
        "train.model.json",
        "artifact.model.json",
        "evaluation.json",
        "report.json",
    ] {
        assert!(run_dir.join(file).exists(), "missing {file}");
    }

    // Deploy: registry + worker pool, then a canary of the same artifact
    // over gold-labeled live traffic resolves to a promotion.
    let mut deployment = project.deploy(&run).expect("deploy succeeds");
    let dataset = run.store().dataset_view().unwrap();
    let gold_records: Vec<_> =
        dataset.test_indices().into_iter().map(|i| dataset.records()[i].clone()).collect();

    let replies = deployment.observe(&gold_records);
    assert_eq!(replies.len(), 80);
    assert!(replies.iter().all(|r| r.is_ok()));
    assert_eq!(deployment.pool().snapshot().served, 80);

    let id = deployment.manager().publish(run.artifact().unwrap()).unwrap();
    deployment.manager().start_canary(&id).unwrap();
    deployment.observe(&gold_records);
    let (_, candidate_reports) = deployment.manager().canary_reports().unwrap();
    let outcome =
        deployment.manager().resolve_canary(&CanaryConfig::default()).expect("canary resolves");
    assert!(matches!(outcome, CanaryOutcome::Promoted { .. }));

    // Monitor: live-scored reports (and the test evaluation) feed the
    // slice worklist, ranked worst-first.
    let live_worklist = project.monitor(&candidate_reports, 5);
    assert!(!live_worklist.is_empty(), "live traffic covered no slices");
    let eval_worklist = project.monitor(&run.evaluation().unwrap().reports, 5);
    assert!(!eval_worklist.is_empty());
    for pair in eval_worklist.windows(2) {
        assert!(pair[0].metrics.accuracy <= pair[1].metrics.accuracy);
    }
    let from_run = run.worst_slices(5);
    assert_eq!(eval_worklist.len(), from_run.len());

    // A second run gets the next id.
    let run2 = project.start().unwrap();
    assert_eq!(run2.id(), "run-0002");

    drop(deployment);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn run_resumes_from_every_completed_stage() {
    let root = temp_root("resume");
    let store = generate_workload_sealed(&WorkloadConfig {
        n_train: 150,
        n_dev: 30,
        n_test: 60,
        seed: 21,
        ..Default::default()
    });
    let project =
        Project::from_store(store).named("resume").with_options(quick_options(2)).at(&root);
    let baseline = project.run().expect("baseline run");
    let baseline_eval = baseline.evaluation().unwrap();

    for from in Stage::ALL {
        let mut resumed = project.resume(baseline.id(), from).expect("resume loads");
        assert_eq!(
            resumed.next_stage(),
            Some(if from == Stage::Ingest { Stage::Combine } else { from })
        );
        resumed.complete().expect("resumed run completes");
        let eval = resumed.evaluation().unwrap();
        assert_eq!(eval.reports, baseline_eval.reports, "resume from {from}");
        assert_eq!(eval.predictions, baseline_eval.predictions, "resume from {from}");
        // Telemetry for skipped stages is preserved; the report is whole.
        let stages: Vec<Stage> = resumed.report().stages.iter().map(|s| s.stage).collect();
        assert_eq!(stages, Stage::ALL.to_vec(), "resume from {from}");
        assert_eq!(resumed.report().mean_test_accuracy, baseline.report().mean_test_accuracy);
    }

    // A resumed run re-executes under the options it was *started* with
    // (persisted as options.json), not the project's current options — a
    // differently-configured project must not silently retrain the run
    // with a new configuration.
    let store = generate_workload_sealed(&WorkloadConfig {
        n_train: 150,
        n_dev: 30,
        n_test: 60,
        seed: 21,
        ..Default::default()
    });
    let reconfigured =
        Project::from_store(store).named("resume").with_options(quick_options(5)).at(&root);
    let mut resumed = reconfigured.resume(baseline.id(), Stage::Train).expect("resume loads");
    resumed.complete().expect("resumed run completes");
    assert_eq!(
        resumed.train_report().unwrap().epochs_run,
        2,
        "resume must keep the run's original training budget"
    );
    assert_eq!(resumed.evaluation().unwrap().reports, baseline_eval.reports);

    // Loading a resume immediately clears the artifacts of the stages
    // being re-run, so an abandoned resume can never leave fresh
    // early-stage state paired with a stale packaged model.
    let run_dir = root.join("runs").join(baseline.id());
    let abandoned = reconfigured.resume(baseline.id(), Stage::Package).expect("resume loads");
    assert!(!run_dir.join("artifact.model.json").exists(), "stale artifact kept");
    assert!(!run_dir.join("evaluation.json").exists(), "stale evaluation kept");
    assert!(run_dir.join("train.model.json").exists(), "earlier artifacts must be kept");
    drop(abandoned);
    // A fresh resume completes and restores them.
    let mut restored = reconfigured.resume(baseline.id(), Stage::Package).expect("resume loads");
    restored.complete().expect("resumed run completes");
    assert!(run_dir.join("artifact.model.json").exists());
    assert_eq!(restored.evaluation().unwrap().reports, baseline_eval.reports);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn legacy_build_shim_is_bit_identical_to_project_run() {
    let store = generate_workload_sealed(&WorkloadConfig {
        n_train: 150,
        n_dev: 30,
        n_test: 60,
        seed: 33,
        ..Default::default()
    });
    let options = quick_options(2);
    let shim = build_from_store(&store, &options).expect("legacy shim");
    let run = Project::from_store(store).with_options(options).run().expect("project run");
    let eval = run.evaluation().unwrap();
    assert_eq!(shim.evaluation.reports, eval.reports);
    assert_eq!(shim.evaluation.predictions, eval.predictions);
    let build = run.into_build().unwrap();
    assert_eq!(shim.artifact.to_bytes(), build.artifact.to_bytes(), "artifacts diverge");
    assert_eq!(shim.train_report, build.train_report);
}

#[test]
fn malformed_two_file_input_surfaces_precise_errors() {
    let root = temp_root("malformed");
    std::fs::create_dir_all(&root).unwrap();
    let schema_path = root.join("schema.json");
    std::fs::write(&schema_path, overton::nlp::workload_schema().to_json()).unwrap();
    let data_path = root.join("data.jsonl");
    let valid = r#"{"payloads": {"query": "how tall is it"}, "tasks": {"Intent": {"w": "Height"}}, "tags": ["train"]}"#;

    let build_err = |data: &str| -> Error {
        std::fs::write(&data_path, data).unwrap();
        Project::from_files(&schema_path, &data_path)
            .run()
            .expect_err("malformed input must error, not panic")
    };

    // A truncated JSONL line (e.g. an interrupted log writer).
    let truncated = format!("{valid}\n{}\n", &valid[..valid.len() / 2]);
    let err = build_err(&truncated);
    assert!(matches!(&err, Error::Store(StoreError::Validation(_))), "{err:?}");
    let msg = err.to_string();
    assert!(msg.contains("data.jsonl") && msg.contains("line 2"), "{msg}");

    // A record supervising a task the schema does not declare.
    let err = build_err(
        r#"{"payloads": {"query": "q"}, "tasks": {"Sentiment": {"w": "pos"}}, "tags": ["train"]}"#,
    );
    let msg = err.to_string();
    assert!(msg.contains("line 1") && msg.contains("unknown task"), "{msg}");

    // A payload value whose shape disagrees with its declared kind
    // (`query` is a singleton, the record supplies a sequence).
    let err =
        build_err(r#"{"payloads": {"query": ["how", "tall"]}, "tasks": {}, "tags": ["train"]}"#);
    let msg = err.to_string();
    assert!(msg.contains("does not match its declared kind"), "{msg}");

    // A missing schema file is an I/O error naming the file, not a panic.
    std::fs::write(&data_path, format!("{valid}\n")).unwrap();
    let err =
        Project::from_files(root.join("nope.json"), &data_path).run().expect_err("missing schema");
    assert!(matches!(&err, Error::Store(StoreError::Io(_))), "{err:?}");
    assert!(err.to_string().contains("nope.json"), "{err}");

    // A missing data file likewise names the file.
    let err = Project::from_files(&schema_path, root.join("absent.jsonl"))
        .run()
        .expect_err("missing data");
    assert!(err.to_string().contains("absent.jsonl"), "{err}");

    // A failed ingest on a *persisted* project must not leave an empty
    // run directory behind — a stale "latest" run would hijack the
    // default run selection of report/evaluate/serve.
    let rooted = Project::from_files(&schema_path, &data_path).at(&root);
    std::fs::write(&data_path, "{not json}\n").unwrap();
    rooted.run().expect_err("malformed data");
    assert_eq!(rooted.latest_run_id().unwrap(), None);
    let leftover = std::fs::read_dir(root.join("runs")).map(|d| d.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "failed ingest left a run directory behind");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn failed_resume_load_preserves_run_artifacts() {
    let root = temp_root("resume-corrupt");
    let store = generate_workload_sealed(&WorkloadConfig {
        n_train: 60,
        n_dev: 15,
        n_test: 15,
        seed: 8,
        ..Default::default()
    });
    let project = Project::from_store(store).with_options(quick_options(1)).at(&root);
    let run = project.run().expect("baseline run");
    let run_dir = root.join("runs").join(run.id());

    // Corrupt an earlier-stage artifact the resume needs: loading must
    // fail WITHOUT destroying the still-good packaged model/evaluation —
    // the run stays serveable after a failed resume.
    let good_search = std::fs::read_to_string(run_dir.join("search.json")).unwrap();
    std::fs::write(run_dir.join("search.json"), "{broken").unwrap();
    let err = project.resume(run.id(), Stage::Package).unwrap_err();
    assert!(err.to_string().contains("search.json"), "{err}");
    assert!(run_dir.join("artifact.model.json").exists(), "failed resume destroyed the artifact");
    assert!(run_dir.join("evaluation.json").exists(), "failed resume destroyed the evaluation");

    // Restoring the artifact makes the same resume succeed.
    std::fs::write(run_dir.join("search.json"), good_search).unwrap();
    let mut resumed = project.resume(run.id(), Stage::Package).expect("resume loads");
    resumed.complete().expect("resumed run completes");
    assert_eq!(resumed.evaluation().unwrap().reports, run.evaluation().unwrap().reports);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn in_place_reingest_replaces_the_store_wholesale() {
    // Resume-from-ingest with a shrunken dataset: the old store had more
    // shard files than the new one writes; stale shards must not survive
    // (read_dir rejects unexpected extra shard files as corruption).
    let root = temp_root("reingest");
    let config =
        WorkloadConfig { n_train: 150, n_dev: 30, n_test: 40, seed: 6, ..Default::default() };
    let wide = overton::nlp::generate_workload(&config).seal_shards(6);
    assert!(wide.num_shards() > 1);
    let project = Project::from_store(wide).with_options(quick_options(1)).at(&root);
    let run = project.run().expect("baseline run");

    let narrow = overton::nlp::generate_workload(&WorkloadConfig {
        n_train: 60,
        n_dev: 15,
        n_test: 15,
        ..config
    })
    .seal_shards(1);
    let edited = Project::from_store(narrow).with_options(quick_options(1)).at(&root);
    let mut rerun = edited.resume(run.id(), Stage::Ingest).expect("re-ingest in place");
    rerun.complete().expect("re-run completes");

    // The persisted store reloads cleanly — no stale shard files left.
    let mut again = edited.resume(run.id(), Stage::Evaluate).expect("store reloads");
    again.complete().expect("evaluate");
    assert_eq!(again.evaluation().unwrap().reports, rerun.evaluation().unwrap().reports);
    assert_eq!(again.store().len(), 90);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn resume_errors_are_precise() {
    // No root: nothing to resume.
    let store = generate_workload_sealed(&WorkloadConfig {
        n_train: 40,
        n_dev: 10,
        n_test: 10,
        seed: 3,
        ..Default::default()
    });
    let in_memory = Project::from_store(store.clone()).with_options(quick_options(1));
    let err = in_memory.resume("run-0001", Stage::Train).unwrap_err();
    assert!(matches!(err, Error::Run { .. }), "{err:?}");

    let root = temp_root("resume-errors");
    let project = Project::from_store(store).with_options(quick_options(1)).at(&root);

    // Unknown run id.
    let err = project.resume("run-9999", Stage::Train).unwrap_err();
    assert!(err.to_string().contains("no persisted run"), "{err}");

    // Resuming past a stage that never completed: only ingest ran here.
    let ingested = project.start().unwrap();
    let err = project.resume(ingested.id(), Stage::Train).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("combine") && msg.contains("never completed"), "{msg}");

    std::fs::remove_dir_all(&root).ok();
}

//! Integration: the supervision subsystem's value, end to end (small-scale
//! versions of experiments E1/A1 asserting the qualitative shape).

use overton::{build, OvertonOptions};
use overton_model::TrainConfig;
use overton_nlp::{generate_workload, SourceSpec, WorkloadConfig};
use overton_supervision::{weak_supervision_fraction, CombineMethod, LabelModelConfig};

fn noisy_workload(seed: u64) -> overton_store::Dataset {
    generate_workload(&WorkloadConfig {
        n_train: 600,
        n_dev: 120,
        n_test: 300,
        seed,
        intent_sources: vec![
            SourceSpec::new("lf_keyword", 0.85, 0.95),
            SourceSpec::new("lf_pattern", 0.55, 0.9),
            SourceSpec::new("lf_noisy", 0.45, 0.9),
        ],
        ..Default::default()
    })
}

fn options(method: CombineMethod) -> OvertonOptions {
    OvertonOptions {
        combine: method,
        train: TrainConfig { epochs: 5, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn label_model_beats_noisy_single_source_end_to_end() {
    let dataset = noisy_workload(81);
    let lm = build(&dataset, &options(CombineMethod::LabelModel(LabelModelConfig::default())))
        .expect("label model build");
    let noisy = build(&dataset, &options(CombineMethod::SingleSource("lf_noisy".into())))
        .expect("single source build");
    assert!(
        lm.test_accuracy("Intent") > noisy.test_accuracy("Intent") + 0.05,
        "label model {:.3} must clearly beat the 45%-accurate source {:.3}",
        lm.test_accuracy("Intent"),
        noisy.test_accuracy("Intent")
    );
}

#[test]
fn label_model_at_least_matches_majority_vote_end_to_end() {
    let dataset = noisy_workload(82);
    let lm = build(&dataset, &options(CombineMethod::LabelModel(LabelModelConfig::default())))
        .expect("label model build");
    let mv = build(&dataset, &options(CombineMethod::MajorityVote)).expect("majority vote build");
    assert!(
        lm.test_accuracy("Intent") >= mv.test_accuracy("Intent") - 0.03,
        "label model {:.3} vs majority vote {:.3}",
        lm.test_accuracy("Intent"),
        mv.test_accuracy("Intent")
    );
}

#[test]
fn estimated_accuracies_rank_sources_correctly() {
    let dataset = noisy_workload(84);
    let built = build(&dataset, &options(CombineMethod::default())).expect("build");
    let diags = &built.diagnostics["Intent"];
    let acc = |name: &str| {
        diags
            .iter()
            .find(|d| d.name == name)
            .and_then(|d| d.estimated_accuracy)
            .expect("accuracy estimated")
    };
    assert!(acc("lf_keyword") > acc("lf_pattern"));
    assert!(acc("lf_pattern") > acc("lf_noisy") - 0.05);
}

#[test]
fn weak_supervision_fraction_reflects_annotator_budget() {
    let no_gold = generate_workload(&WorkloadConfig {
        n_train: 300,
        n_dev: 30,
        n_test: 30,
        seed: 84,
        gold_train_fraction: 0.0,
        ..Default::default()
    });
    assert!((weak_supervision_fraction(&no_gold, "Intent") - 1.0).abs() < 1e-6);

    let some_gold = generate_workload(&WorkloadConfig {
        n_train: 300,
        n_dev: 30,
        n_test: 30,
        seed: 84,
        gold_train_fraction: 0.2,
        ..Default::default()
    });
    let frac = weak_supervision_fraction(&some_gold, "Intent");
    assert!((0.7..0.9).contains(&(f64::from(frac))), "fraction {frac}");
}

#[test]
fn more_weak_data_does_not_hurt() {
    // Small-scale E2 shape check: 4x data >= 1x data (within noise).
    let small = generate_workload(&WorkloadConfig {
        n_train: 150,
        n_dev: 100,
        n_test: 300,
        seed: 85,
        ..Default::default()
    });
    let large = generate_workload(&WorkloadConfig {
        n_train: 600,
        n_dev: 100,
        n_test: 300,
        seed: 85,
        ..Default::default()
    });
    let opts = options(CombineMethod::default());
    let a = build(&small, &opts).expect("small");
    let b = build(&large, &opts).expect("large");
    assert!(
        b.mean_test_accuracy() >= a.mean_test_accuracy() - 0.02,
        "4x data {:.3} should not be worse than 1x {:.3}",
        b.mean_test_accuracy(),
        a.mean_test_accuracy()
    );
}

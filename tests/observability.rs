//! End-to-end continuous observability: seeded drifting traffic through an
//! observed worker pool must (a) raise a drift alert on the drifted slice
//! and stay quiet on stable slices, (b) write an obslog that replays
//! bit-identically into the live windowed state, and (c) drive the
//! watchdog → worklist → automated-retrain loop — Figure 1 with no human
//! in it. Plus the calibration-vs-drift ordering: the KS detector fires
//! while windowed ECE is still below its alert threshold.

use overton::model::TrainConfig;
use overton::monitor::calibration_report;
use overton::nlp::{
    generate_workload, DriftConfig, DriftingTrafficStream, KnowledgeBase, TrafficConfig,
    WorkloadConfig, SLICE_COMPLEX_DISAMBIGUATION, SLICE_NUTRITION,
};
use overton::obs::{
    AlertRule, ObsConfig, ObsLog, Severity, Signal, Watchdog, WatchdogConfig, WATCHDOG_TASK,
};
use overton::{OvertonOptions, Project};
use std::path::PathBuf;

fn quick_options() -> OvertonOptions {
    OvertonOptions {
        train: TrainConfig { epochs: 2, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("overton-obs-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

const WINDOW: u64 = 250;

#[test]
fn drift_is_detected_logged_replayed_and_fed_back() {
    let root = temp_root("loop");
    let ds = generate_workload(&WorkloadConfig {
        n_train: 250,
        n_dev: 40,
        n_test: 150,
        seed: 13,
        ..Default::default()
    });
    let project =
        Project::from_dataset(&ds).named("obsdemo").with_options(quick_options()).at(&root);
    let run = project.run().unwrap();
    // The evaluate stage captured and persisted the traffic baseline.
    let baseline = run.baseline().expect("evaluate collects a baseline").clone();
    assert!(run.dir().unwrap().join("baseline.json").exists());
    assert!(baseline.tag_share(SLICE_COMPLEX_DISAMBIGUATION).is_some());

    let deployment = project.deploy(&run).unwrap();
    let mut monitor = deployment
        .watch_with(ObsConfig {
            window_len: WINDOW,
            rules: overton::obs::default_rules(deployment.pool().telemetry().slice_names()),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(monitor.baseline(), Some(&baseline), "monitor inherits the run's baseline");

    // 8 windows of seeded traffic: stationary for 4, then the slice mix
    // ramps toward the hard slice.
    let kb = KnowledgeBase::standard();
    let mut stream = DriftingTrafficStream::new(
        &kb,
        DriftConfig {
            base: TrafficConfig { seed: 5, ..Default::default() },
            drift_start: 4 * WINDOW as usize,
            drift_ramp: WINDOW as usize,
            ..Default::default()
        },
    );
    for _ in 0..8 {
        let burst = stream.records(WINDOW as usize);
        deployment.pool().process(burst);
        monitor.pump();
    }
    monitor.pump();
    assert_eq!(deployment.pool().telemetry().observer_dropped(), 0);
    assert_eq!(monitor.stats().closed(), 8);
    assert_eq!(monitor.stats().open_count(), 0);

    // (a) A PSI (traffic-mix) alert on the drifted slice...
    let alerts = monitor.alerts();
    assert!(
        alerts.iter().any(|a| a.signal == Signal::TrafficPsi
            && a.slice.as_deref() == Some(SLICE_COMPLEX_DISAMBIGUATION)),
        "expected a PSI alert on the drifted slice, got: {alerts:?}"
    );
    // ...debounced to one PSI alert despite several breaching windows...
    assert_eq!(
        alerts.iter().filter(|a| a.signal == Signal::TrafficPsi).count(),
        1,
        "flapping/persistent drift must alert once: {alerts:?}"
    );
    // ...and nothing at all on the stable slice.
    assert!(
        alerts.iter().all(|a| a.slice.as_deref() != Some(SLICE_NUTRITION)),
        "stable slice must not alert: {alerts:?}"
    );
    // The alert fired only once the drift actually started.
    let psi_window =
        alerts.iter().find(|a| a.signal == Signal::TrafficPsi).map(|a| a.window).unwrap();
    assert!(psi_window >= 4, "PSI fired at window {psi_window}, before the drift began");

    // (b) The obslog replays bit-identically into the live state.
    let replayed = ObsLog::replay(deployment.obslog_dir()).unwrap();
    assert_eq!(replayed.stats(), monitor.stats(), "replayed windowed state must be identical");
    assert_eq!(replayed.alerts(), monitor.alerts());
    assert_eq!(replayed.alert_engine(), monitor.alert_engine());

    // (c) The watchdog escalates the sustained critical into the shared
    // worklist shape, naming the drifted slice.
    let watchdog = Watchdog::new(WatchdogConfig {
        min_severity: Severity::Warning,
        sustain_windows: 3,
        min_count: 10,
    });
    assert_eq!(watchdog.flagged_slices(&monitor), vec![SLICE_COMPLEX_DISAMBIGUATION.to_string()]);
    let worklist = watchdog.worklist(&monitor);
    assert_eq!(worklist.len(), 1);
    assert_eq!(worklist[0].slice, SLICE_COMPLEX_DISAMBIGUATION);
    assert_eq!(worklist[0].task, WATCHDOG_TASK);
    assert!(worklist[0].metrics.count >= 10);
    // A transiently-configured watchdog (needs more sustained windows than
    // the episode has) stays quiet — the loop doesn't fire on blips.
    let strict = Watchdog::new(WatchdogConfig { sustain_windows: 100, ..Default::default() });
    assert!(strict.worklist(&monitor).is_empty());

    // (d) Close the loop: hand the worst slice to the automated retrain.
    // The watchdog's diagnosis is task-agnostic; retrain_for_slice maps it
    // onto the weakest task of the previous run deterministically.
    let report = project.retrain_for_slice(&run, &worklist[0].slice).unwrap();
    assert!((0.0..=1.0).contains(&report.before));
    assert!((0.0..=1.0).contains(&report.after));

    drop(deployment);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn ece_degrades_monotonically_and_ks_fires_before_ece_crosses() {
    // Part 1 (pure calibration): as a synthetic drift widens — the model
    // keeps claiming 0.9 while accuracy erodes — ECE degrades strictly
    // monotonically and tracks the injected gap.
    let mut last = -1.0;
    for shift in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let preds: Vec<(f64, bool)> =
            (0..1000).map(|i| (0.9, (i as f64 / 1000.0) < 0.9 - shift)).collect();
        let ece = calibration_report(&preds, 10).ece;
        assert!((ece - shift).abs() < 5e-3, "shift {shift}: ece {ece}");
        assert!(ece > last, "ECE must degrade monotonically with the drift");
        last = ece;
    }

    // Part 2 (one widening drift stream, two detectors): feed the same
    // synthetic stream both to windowed ECE and to the obs KS rule. The
    // confidence *distribution* shifts linearly with the drift level
    // while calibration damage grows quadratically (the shifted cohort's
    // accuracy erodes gradually), so the KS detector must fire while ECE
    // is still below its own alert threshold — distribution-level drift
    // is visible before calibration damage crosses the line, which is
    // exactly why the KS rule exists.
    const ECE_ALERT: f64 = 0.25;
    const KS_ALERT: f64 = 0.3;
    const N: u64 = 200;
    let mut baseline_hist = vec![0u64; overton::serving::CONFIDENCE_BINS];
    baseline_hist[overton::serving::confidence_bin(0.9)] = N;
    let baseline = overton::serving::TrafficBaseline {
        slice_shares: vec![],
        mean_confidence: 0.9,
        tag_shares: vec![],
        confidence_hist: baseline_hist,
        slice_confidence_hists: vec![],
        sample_size: N,
        tag_counts: vec![],
    };
    let mut monitor = overton::obs::Monitor::new(
        vec![],
        Some(baseline),
        ObsConfig {
            window_len: N,
            rules: vec![AlertRule {
                slice: None,
                signal: Signal::ConfidenceKs,
                threshold: KS_ALERT,
                min_window_count: 64,
                severity: Severity::Warning,
            }],
            ..Default::default()
        },
    );
    let mut window_ece = Vec::new();
    for w in 0..=10u64 {
        let t = w as f64 / 10.0; // drift level of this window
        let drifted = (N as f64 * t).round() as u64; // cohort at conf 0.6
        let drifted_correct = (drifted as f64 * (0.6 - 0.55 * t).max(0.0)).round() as u64;
        let stable_correct = ((N - drifted) as f64 * 0.9).round() as u64;
        let mut preds = Vec::new();
        for i in 0..N {
            let (confidence, correct) = if i < drifted {
                (0.6f32, i < drifted_correct)
            } else {
                (0.9f32, i - drifted < stable_correct)
            };
            preds.push((f64::from(confidence), correct));
            monitor.ingest(&overton::serving::ServeSample {
                ok: true,
                confidence_bin: overton::serving::confidence_bin(confidence),
                confidence_millionths: (f64::from(confidence) * 1e6) as u64,
                latency_micros: 50,
                slice_mask: 0,
                gold_accuracy_millionths: Some(if correct { 1_000_000 } else { 0 }),
            });
        }
        window_ece.push(calibration_report(&preds, 10).ece);
    }
    // Windowed ECE degrades monotonically as the drift widens...
    for pair in window_ece.windows(2) {
        assert!(pair[1] >= pair[0] - 1e-9, "ECE not monotone: {window_ece:?}");
    }
    // ...and eventually crosses its alert threshold...
    let ece_window = window_ece
        .iter()
        .position(|&e| e > ECE_ALERT)
        .expect("the drift must eventually push ECE over the alert threshold");
    // ...but the KS detector fired strictly earlier.
    let ks_window = monitor
        .alerts()
        .iter()
        .find(|a| a.signal == Signal::ConfidenceKs)
        .map(|a| a.window as usize)
        .expect("the KS detector must fire on a confidence-distribution shift");
    assert!(
        ks_window < ece_window,
        "KS (window {ks_window}) must fire before ECE crosses {ECE_ALERT} (window {ece_window}); \
         ece per window: {window_ece:?}"
    );
    assert!(
        window_ece[ks_window] < ECE_ALERT,
        "at the KS alert, calibration damage was still below the line"
    );
}

/// The significance gate end to end, both directions in ONE test:
///
/// 1. a mild drift stream — a real shift, but statistically insignificant
///    at the monitoring window size — raises no alert at all;
/// 2. a retrain whose delta is pure holdout noise is *held*, with the
///    evidence (p-value, intervals, meter balance) persisted into the new
///    run's report and artifact metadata;
/// 3. the strong drift scenario still alerts, now including the
///    significance rule, on the drifted slice only;
/// 4. a genuinely better retrain clears the gate and promotes;
///
/// and every statistical decision is seeded and replays bit-identically.
#[test]
fn significance_gate_blocks_noise_and_promotes_real_improvements() {
    let root = temp_root("gate");
    // A generous slice rate so the per-slice holdout counts are large
    // enough for a real improvement to be distinguishable from noise.
    let slice_rate = 0.25;
    let ds = generate_workload(&WorkloadConfig {
        n_train: 250,
        n_dev: 40,
        n_test: 300,
        seed: 13,
        slice_rate,
        ..Default::default()
    });
    // A deliberately broken incumbent: its slice supervision is corrupted
    // so every IntentArg source votes the default sense — unanimously
    // wrong on the slice (lf_default_sense already does; the two good
    // sources are overwritten). The incumbent learns that mistake, which
    // leaves real headroom for the corrected retrain in (4).
    let mut broken = ds.clone();
    for source in ["lf_heuristic", "crowd_arg"] {
        let corrupted = overton::add_slice_supervision(
            &mut broken,
            SLICE_COMPLEX_DISAMBIGUATION,
            "IntentArg",
            source,
            |_| Some(overton::store::TaskLabel::Select(0)),
        );
        assert!(corrupted > 0);
    }
    let weak_options = OvertonOptions {
        train: TrainConfig { epochs: 1, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    };
    let project = Project::from_dataset(&broken).named("gate").with_options(weak_options).at(&root);
    let run = project.run().unwrap();
    let baseline = run.baseline().expect("evaluate collects a baseline").clone();
    assert!(baseline.sample_size > 0, "baselines now carry their sample size");

    // The evaluate stage debited the project's test-set reuse meter.
    let meter_path = root.join(overton::stats::METER_FILE);
    assert!(meter_path.exists(), "evaluate must start the reuse ledger");
    assert_eq!(
        run.report().meter_remaining,
        Some(overton::stats::DEFAULT_METER_BUDGET - 1),
        "first holdout look must debit the meter"
    );

    let obs_config = |deployment: &overton::Deployment| ObsConfig {
        window_len: WINDOW,
        rules: overton::obs::default_rules(deployment.pool().telemetry().slice_names()),
        ..Default::default()
    };
    let kb = KnowledgeBase::standard();

    // (1) Mild drift: the slice mix really does shift (see
    // DriftConfig::mild), but by an amount indistinguishable from
    // sampling noise over 250-request windows — nothing may page.
    {
        let deployment = project.deploy(&run).unwrap();
        let mut monitor = deployment.watch_with(obs_config(&deployment)).unwrap();
        let mut stream = DriftingTrafficStream::new(
            &kb,
            DriftConfig::mild(TrafficConfig { seed: 5, slice_rate, ..Default::default() }),
        );
        for _ in 0..8 {
            deployment.pool().process(stream.records(WINDOW as usize));
            monitor.pump();
        }
        monitor.pump();
        assert_eq!(monitor.stats().closed(), 8);
        assert!(
            monitor.alerts().is_empty(),
            "an insignificant shift must not raise any alert: {:?}",
            monitor.alerts()
        );
        drop(deployment);
    }

    // (2) Retraining on unchanged data: training is deterministic, so the
    // candidate equals the incumbent and the delta is exactly zero — the
    // canonical noise case. The gate must hold.
    let unchanged =
        project.retrain_and_compare(&run, "IntentArg", SLICE_COMPLEX_DISAMBIGUATION).unwrap();
    assert!(!unchanged.promoted(), "a noise delta must not promote: {}", unchanged.evidence);
    assert!(
        unchanged.evidence.p_value >= overton::stats::DEFAULT_ALPHA,
        "identical models cannot be significantly different: {}",
        unchanged.evidence
    );

    // The evidence is durable: the candidate run's report.json carries
    // the full record, its artifact metadata the decision.
    let run2_dir = root.join("runs").join("run-0002");
    let report2: overton::RunReport =
        serde_json::from_str(&std::fs::read_to_string(run2_dir.join("report.json")).unwrap())
            .unwrap();
    let recorded = report2.promotion.clone().expect("the gate records its evidence");
    assert!(!recorded.significant);
    assert_eq!(recorded.slice, SLICE_COMPLEX_DISAMBIGUATION);
    assert_eq!(report2.meter_remaining, Some(overton::stats::DEFAULT_METER_BUDGET - 2));
    assert_eq!(recorded.meter_remaining, report2.meter_remaining);
    let artifact2 = overton::model::DeployableModel::from_bytes(
        &std::fs::read(run2_dir.join("artifact.model.json")).unwrap(),
    )
    .unwrap();
    assert_eq!(artifact2.metadata.get("promotion").map(String::as_str), Some("hold"));

    // Bit-identical statistics: re-evaluating the recorded counts
    // reproduces the persisted p-value and bounds exactly, and the
    // seeded bootstrap behind the report's mean-accuracy interval
    // replays to the same bits.
    let replayed = overton::stats::evaluate_promotion(
        &recorded.task,
        &recorded.slice,
        (recorded.before.successes, recorded.before.trials),
        (recorded.after.successes, recorded.after.trials),
        recorded.alpha,
    );
    assert_eq!(replayed.p_value.to_bits(), recorded.p_value.to_bits());
    assert_eq!(replayed.before.lower.to_bits(), recorded.before.lower.to_bits());
    assert_eq!(replayed.after.upper.to_bits(), recorded.after.upper.to_bits());
    let accuracies: Vec<f64> = report2.task_accuracy.values().copied().collect();
    let ci = overton::stats::bootstrap_mean_interval(
        &accuracies,
        overton::stats::DEFAULT_ALPHA,
        1000,
        0,
    );
    let persisted_ci = report2.mean_accuracy_ci.expect("evaluate records the bootstrap CI");
    assert_eq!(persisted_ci.lower.to_bits(), ci.lower.to_bits());
    assert_eq!(persisted_ci.upper.to_bits(), ci.upper.to_bits());

    // (3) The strong drift scenario still alerts — and the significance
    // rule confirms the excursion on the drifted slice, only there.
    {
        let deployment = project.deploy(&run).unwrap();
        let mut monitor = deployment.watch_with(obs_config(&deployment)).unwrap();
        let mut stream = DriftingTrafficStream::new(
            &kb,
            DriftConfig {
                base: TrafficConfig { seed: 5, slice_rate, ..Default::default() },
                drift_start: 4 * WINDOW as usize,
                drift_ramp: WINDOW as usize,
                ..Default::default()
            },
        );
        for _ in 0..8 {
            deployment.pool().process(stream.records(WINDOW as usize));
            monitor.pump();
        }
        monitor.pump();
        let alerts = monitor.alerts();
        assert!(
            alerts.iter().any(|a| a.signal == Signal::Significance
                && a.slice.as_deref() == Some(SLICE_COMPLEX_DISAMBIGUATION)),
            "real drift must raise the significance alert on the drifted slice: {alerts:?}"
        );
        assert!(
            alerts.iter().all(|a| a.slice.as_deref() != Some(SLICE_NUTRITION)),
            "the stable slice must stay quiet: {alerts:?}"
        );
        drop(deployment);
    }

    // (4) A real improvement — corrective labels on the slice plus a
    // serious training budget against the 1-epoch incumbent — clears
    // the gate.
    let mut improved = ds.clone();
    let added = overton::add_slice_supervision(
        &mut improved,
        SLICE_COMPLEX_DISAMBIGUATION,
        "IntentArg",
        "annotator_pass",
        |record| match record.tasks.get("IntentArg").and_then(|m| m.get("lf_heuristic")) {
            Some(overton::store::TaskLabel::Select(v)) if *v != 0 => {
                Some(overton::store::TaskLabel::Select(*v))
            }
            _ => None,
        },
    );
    assert!(added > 0);
    let better = Project::from_dataset(&improved)
        .named("gate")
        .with_options(OvertonOptions::default())
        .at(&root);
    let win = better.retrain_and_compare(&run, "IntentArg", SLICE_COMPLEX_DISAMBIGUATION).unwrap();
    assert!(
        win.promoted(),
        "a real improvement must clear the gate: {} (delta {:+.4})",
        win.evidence,
        win.delta()
    );
    assert!(win.evidence.p_value < win.evidence.alpha);
    assert_eq!(win.evidence.meter_remaining, Some(overton::stats::DEFAULT_METER_BUDGET - 3));
    let run3_dir = root.join("runs").join("run-0003");
    let artifact3 = overton::model::DeployableModel::from_bytes(
        &std::fs::read(run3_dir.join("artifact.model.json")).unwrap(),
    )
    .unwrap();
    assert_eq!(artifact3.metadata.get("promotion").map(String::as_str), Some("promote"));

    std::fs::remove_dir_all(&root).ok();
}

/// Satellite: observation must never backpressure serving. A deliberately
/// slow observer — a capacity-1 channel that is never drained — forces
/// every post-first `try_send` to fail; the pool must drop those samples
/// (counted in `observer_dropped`), answer every request correctly, and
/// keep request latency in the same range an unobserved pool sees.
#[test]
fn slow_observer_drops_samples_without_inflating_latency() {
    use overton::model::{CompiledModel, DeployableModel, FeatureSpace, ModelConfig, Server};
    use overton::serving::{CascadeEngine, ServingConfig, WorkerPool};
    use std::sync::Arc;

    let ds = generate_workload(&WorkloadConfig {
        n_train: 60,
        n_dev: 15,
        n_test: 100,
        seed: 91,
        ..Default::default()
    });
    let space = FeatureSpace::build(&ds);
    let model = CompiledModel::compile(ds.schema(), &space, &ModelConfig::default(), None);
    let artifact = DeployableModel::package(&model, &space, std::collections::BTreeMap::new());
    let records: Vec<overton::store::Record> =
        ds.test_indices().iter().map(|&i| ds.records()[i].clone()).collect();
    let engine = Arc::new(CascadeEngine::single(Server::load(&artifact)));
    let config = ServingConfig { workers: 2, max_batch: 8 };

    // Reference: the same traffic through an unobserved pool.
    let unobserved = WorkerPool::start(Arc::clone(&engine), config.clone(), None);
    for chunk in records.chunks(10) {
        for reply in unobserved.process(chunk.to_vec()) {
            reply.result.expect("unobserved record must answer");
        }
    }
    let baseline_p99 = unobserved.telemetry().latency().quantile(0.99);
    unobserved.shutdown();

    // The stalled observer: capacity 1, receiver alive but never drained.
    let (tx, _rx) = std::sync::mpsc::sync_channel(1);
    let observed = WorkerPool::start(engine, config, None);
    observed.telemetry().attach_observer(tx).unwrap();
    for chunk in records.chunks(10) {
        for reply in observed.process(chunk.to_vec()) {
            reply.result.expect("observed record must still answer");
        }
    }
    let served = records.len() as u64;
    assert_eq!(observed.telemetry().snapshot().served, served);
    // One sample fit in the channel; every later one was dropped, not
    // waited for.
    assert_eq!(
        observed.telemetry().observer_dropped(),
        served - 1,
        "a stalled observer must shed samples, not block workers"
    );
    // And dropping is cheap: p99 stays in the unobserved pool's range
    // (generous 10x + 5ms bound — this guards against *blocking*, where a
    // stalled rendezvous would stall every request behind it).
    let observed_p99 = observed.telemetry().latency().quantile(0.99);
    let ceiling = baseline_p99 * 10 + std::time::Duration::from_millis(5);
    assert!(
        observed_p99 <= ceiling,
        "observed p99 {observed_p99:?} vs unobserved {baseline_p99:?}: dropping must not \
         inflate request latency"
    );
    observed.shutdown();
}

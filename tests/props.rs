//! Cross-crate property-based tests (proptest) on serialization and
//! supervision invariants.

use overton_store::rowstore::{
    decode_record, encode_record, read_str, read_u64, write_str, write_u64, RowStore,
};
use overton_store::{
    example_schema, Dataset, PayloadValue, Record, SetElement, StoreError, TaskLabel,
};
use overton_supervision::{majority_vote, LabelMatrix, LabelModel, LabelModelConfig};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = PayloadValue> {
    prop_oneof![
        "[a-z ]{0,24}".prop_map(PayloadValue::Singleton),
        prop::collection::vec("[a-z]{1,8}", 0..12).prop_map(PayloadValue::Sequence),
        prop::collection::vec(("[a-zA-Z_]{1,12}", 0usize..8, 1usize..4), 0..5).prop_map(|els| {
            PayloadValue::Set(
                els.into_iter().map(|(id, lo, w)| SetElement { id, span: (lo, lo + w) }).collect(),
            )
        }),
    ]
}

fn arb_label() -> impl Strategy<Value = TaskLabel> {
    prop_oneof![
        "[A-Z][a-z]{0,8}".prop_map(TaskLabel::MulticlassOne),
        prop::collection::vec("[A-Z]{1,4}", 1..8).prop_map(TaskLabel::MulticlassSeq),
        prop::collection::vec("[a-z]{1,6}", 0..4).prop_map(TaskLabel::BitvectorOne),
        prop::collection::vec(prop::collection::vec("[a-z]{1,6}", 0..3), 1..6)
            .prop_map(TaskLabel::BitvectorSeq),
        (0usize..16).prop_map(TaskLabel::Select),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        prop::collection::btree_map("[a-z]{1,8}", arb_payload(), 0..4),
        prop::collection::btree_map(
            "[A-Z][a-z]{0,6}",
            prop::collection::btree_map("[a-z0-9_]{1,8}", arb_label(), 0..4),
            0..4,
        ),
        prop::collection::btree_set("[a-z:.-]{1,12}", 0..5),
    )
        .prop_map(|(payloads, tasks, tags)| Record { payloads, tasks, tags })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut slice = buf.as_slice();
        prop_assert_eq!(read_u64(&mut slice).unwrap(), v);
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,64}") {
        let mut buf = Vec::new();
        write_str(&mut buf, &s);
        let mut slice = buf.as_slice();
        prop_assert_eq!(read_str(&mut slice).unwrap(), s);
    }

    #[test]
    fn record_binary_roundtrip(record in arb_record()) {
        let mut buf = Vec::new();
        encode_record(&record, &mut buf);
        let mut slice = buf.as_slice();
        let back = decode_record(&mut slice).unwrap();
        prop_assert!(slice.is_empty());
        prop_assert_eq!(back, record);
    }

    #[test]
    fn record_json_roundtrip(record in arb_record()) {
        // JSON cannot distinguish BitvectorOne from MulticlassSeq without a
        // schema, so compare through a second encode (fixed point).
        let json = record.to_json();
        let back = Record::from_json(&json).unwrap();
        prop_assert_eq!(back.to_json(), json);
    }

    #[test]
    fn rowstore_roundtrip(records in prop::collection::vec(arb_record(), 0..20)) {
        let store = RowStore::build(&records);
        let mut bytes = Vec::new();
        store.write(&mut bytes).unwrap();
        let loaded = RowStore::from_bytes(bytes).unwrap();
        prop_assert_eq!(loaded.len(), records.len());
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(&loaded.get(i).unwrap(), r);
        }
    }

    #[test]
    fn sharded_store_roundtrip(
        records in prop::collection::vec(arb_record(), 0..20),
        shards in 1usize..5,
    ) {
        // Records cross shard boundaries at arbitrary points; every
        // variant must round-trip through encode → shard → decode, both
        // as owned records and as zero-copy views.
        let mut ds = Dataset::new(example_schema());
        for r in &records {
            ds.push_unchecked(r.clone());
        }
        let store = ds.seal_shards(shards);
        prop_assert_eq!(store.len(), records.len());
        store.verify().unwrap();
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(&store.get(i).unwrap(), r);
            prop_assert_eq!(&store.view(i).unwrap().to_record(), r);
        }
        let back = store.dataset_view().unwrap();
        prop_assert_eq!(back.records(), &records[..]);
    }

    #[test]
    fn sharded_store_flipped_byte_surfaces_corrupt(
        records in prop::collection::vec(arb_record(), 1..10),
        shards in 1usize..4,
        shard_pick in any::<u64>(),
        pos_pick in any::<u64>(),
    ) {
        let mut ds = Dataset::new(example_schema());
        for r in &records {
            ds.push_unchecked(r.clone());
        }
        let store = ds.seal_shards(shards);
        let dir = std::env::temp_dir().join(format!(
            "overton-props-{}-{}",
            std::process::id(),
            shard_pick ^ pos_pick,
        ));
        store.write_dir(&dir).unwrap();
        // Flip one byte at an arbitrary position of an arbitrary shard
        // file: the whole-file checksum must surface StoreError::Corrupt.
        let shard = (shard_pick % store.num_shards() as u64) as usize;
        let path = dir.join(format!("shard-{shard:04}.ovrs"));
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_pick % bytes.len() as u64) as usize;
        bytes[pos] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        let err = overton_store::ShardedStore::read_dir(&dir).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(matches!(err, StoreError::Corrupt(_)), "{}", err);
    }

    #[test]
    fn majority_vote_outputs_distributions(
        rows in prop::collection::vec(
            prop::collection::vec(prop::option::of(0u32..4), 3),
            1..30,
        )
    ) {
        let matrix = LabelMatrix::from_rows(4, &rows);
        for dist in majority_vote(&matrix) {
            let sum: f32 = dist.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(dist.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn label_model_posteriors_are_distributions(
        rows in prop::collection::vec(
            prop::collection::vec(prop::option::of(0u32..3), 4),
            2..40,
        )
    ) {
        let matrix = LabelMatrix::from_rows(3, &rows);
        let model = LabelModel::fit(&matrix, &LabelModelConfig {
            max_iter: 20,
            ..Default::default()
        });
        for acc in model.accuracies() {
            prop_assert!((0.0..=1.0).contains(acc));
        }
        for dist in model.predict_proba(&matrix) {
            let sum: f32 = dist.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn tensor_matmul_associates_with_identity(
        rows in 1usize..6,
        cols in 1usize..6,
        data in prop::collection::vec(-10.0f32..10.0, 36),
    ) {
        let m = overton_tensor::Matrix::from_vec(
            rows, cols, data[..rows * cols].to_vec(),
        );
        let eye = overton_tensor::Matrix::eye(cols);
        prop_assert_eq!(m.matmul(&eye), m);
    }

    #[test]
    fn tensor_transpose_involution(
        rows in 1usize..6,
        cols in 1usize..6,
        data in prop::collection::vec(-10.0f32..10.0, 36),
    ) {
        let m = overton_tensor::Matrix::from_vec(
            rows, cols, data[..rows * cols].to_vec(),
        );
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}

//! Integration: slice-based learning mechanics across crates (small-scale
//! version of experiment E4).

use overton::{build, worst_slices, OvertonOptions};
use overton_model::{ModelConfig, TrainConfig};
use overton_nlp::{generate_workload, SourceSpec, WorkloadConfig};

fn slice_workload(seed: u64) -> overton_store::Dataset {
    generate_workload(&WorkloadConfig {
        n_train: 700,
        n_dev: 120,
        n_test: 300,
        seed,
        slice_rate: 0.10,
        arg_sources: vec![
            SourceSpec::new("lf_default_sense", 1.0, 1.0),
            SourceSpec::new("lf_heuristic", 0.9, 0.9),
            SourceSpec::new("crowd_arg", 0.95, 0.5),
        ],
        ..Default::default()
    })
}

fn options(slice_heads: bool) -> OvertonOptions {
    OvertonOptions {
        base_model: ModelConfig { slice_heads, ..Default::default() },
        train: TrainConfig { epochs: 5, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn slice_reports_exist_and_monitoring_ranks_them() {
    let dataset = slice_workload(71);
    let built = build(&dataset, &options(true)).expect("build");
    // Per-slice rows must exist for the tasks the slice affects.
    assert!(built.evaluation.slice_accuracy("IntentArg", "complex-disambiguation").is_some());
    let ranked = worst_slices(&built, 5);
    assert!(!ranked.is_empty());
    // The hardest slice for IntentArg should be complex-disambiguation.
    let arg_slices: Vec<&str> =
        ranked.iter().filter(|d| d.task == "IntentArg").map(|d| d.slice.as_str()).collect();
    assert!(arg_slices.contains(&"complex-disambiguation"));
}

#[test]
fn slice_heads_do_not_hurt_overall_quality() {
    let dataset = slice_workload(74);
    let with = build(&dataset, &options(true)).expect("with");
    let without = build(&dataset, &options(false)).expect("without");
    // Paper: per-slice capacity must not degrade aggregate quality. Allow
    // small noise at this scale.
    assert!(
        with.test_accuracy("IntentArg") >= without.test_accuracy("IntentArg") - 0.05,
        "with {:.3} vs without {:.3}",
        with.test_accuracy("IntentArg"),
        without.test_accuracy("IntentArg")
    );
}

#[test]
fn indicator_heads_learn_slice_membership() {
    let dataset = slice_workload(73);
    let built = build(&dataset, &options(true)).expect("build");
    let slice_idx = built
        .space
        .slice_names
        .iter()
        .position(|s| s == "complex-disambiguation")
        .expect("slice exists");
    // Mean predicted membership probability must be higher on in-slice test
    // records than out-of-slice ones.
    let mut in_probs = Vec::new();
    let mut out_probs = Vec::new();
    for (record_idx, prediction) in &built.evaluation.predictions {
        let record = &dataset.records()[*record_idx];
        let p = prediction.slice_probs[slice_idx];
        if record.in_slice("complex-disambiguation") {
            in_probs.push(p);
        } else {
            out_probs.push(p);
        }
    }
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    assert!(
        mean(&in_probs) > mean(&out_probs) + 0.1,
        "indicator separation too weak: in {:.3} vs out {:.3}",
        mean(&in_probs),
        mean(&out_probs)
    );
}

//! Workspace-graph smoke test: runs the quickstart path end-to-end on a
//! tiny workload. If any crate wiring regresses — a broken re-export, a
//! dropped dependency edge, an API drift between `overton-nlp`,
//! `overton-supervision`, `overton-model` and the `overton` facade — this
//! fails fast, before the heavier integration tests get a chance to.

use overton::{build, OvertonOptions};
use overton_model::TrainConfig;
use overton_nlp::{generate_workload, WorkloadConfig};

#[test]
fn quickstart_path_end_to_end() {
    // Tiny but real: enough records for the label model and one train run.
    let dataset = generate_workload(&WorkloadConfig {
        n_train: 60,
        n_dev: 16,
        n_test: 16,
        seed: 42,
        ..Default::default()
    });
    assert_eq!(dataset.len(), 60 + 16 + 16);
    assert!(!dataset.slice_names().is_empty(), "workload declares slices");

    let options = OvertonOptions {
        train: TrainConfig { epochs: 2, ..Default::default() },
        ..Default::default()
    };
    let built = build(&dataset, &options).expect("tiny build succeeds");

    // Every schema task got evaluated, and accuracies are probabilities.
    for task in dataset.schema().tasks.keys() {
        let acc = built.test_accuracy(task);
        assert!((0.0..=1.0).contains(&acc), "task {task} accuracy {acc} out of range");
    }

    // The packaged artifact round-trips through its serialized form.
    let bytes = built.artifact.to_bytes();
    let back = overton_model::DeployableModel::from_bytes(&bytes).expect("artifact deserializes");
    assert_eq!(back.signature, built.artifact.signature);
}

//! Integration: the deployment lifecycle — distillation, registry
//! versioning, regression gates, calibration — across crates.

use overton::{build, OvertonOptions};
use overton_model::{
    distill, prepare, CompiledModel, ModelConfig, ModelPair, ModelRegistry, Server, TrainConfig,
};
use overton_monitor::{calibration_report, regressions};
use overton_nlp::{generate_workload, WorkloadConfig};
use overton_supervision::CombineMethod;
use std::collections::BTreeMap;

fn workload(seed: u64) -> overton_store::Dataset {
    generate_workload(&WorkloadConfig {
        n_train: 300,
        n_dev: 60,
        n_test: 120,
        seed,
        ..Default::default()
    })
}

#[test]
fn distilled_pair_stays_synchronized_and_servable() {
    let ds = workload(91);
    let prepared = prepare(&ds, &CombineMethod::default()).unwrap();
    let train_cfg = TrainConfig { epochs: 4, early_stop_patience: 0, ..Default::default() };

    // Teacher trained normally; student distilled from it.
    let mut teacher =
        CompiledModel::compile(ds.schema(), &prepared.space, &ModelConfig::default(), None);
    overton_model::train_model(&mut teacher, &prepared.train, &prepared.dev, &train_cfg);
    let small_cfg = ModelConfig { token_dim: 16, hidden_dim: 16, ..Default::default() };
    let mut student = CompiledModel::compile(ds.schema(), &prepared.space, &small_cfg, None);
    distill(&teacher, &mut student, &prepared.train, &prepared.dev, &train_cfg);

    let pair = ModelPair {
        large: overton_model::DeployableModel::package(&teacher, &prepared.space, BTreeMap::new()),
        small: overton_model::DeployableModel::package(&student, &prepared.space, BTreeMap::new()),
    };
    assert!(pair.synchronized());

    // Both halves serve the same record without error.
    let record = &ds.records()[ds.test_indices()[0]];
    let large_response = Server::load(&pair.large).predict(record).unwrap();
    let small_response = Server::load(&pair.small).predict(record).unwrap();
    assert_eq!(
        large_response.tasks.keys().collect::<Vec<_>>(),
        small_response.tasks.keys().collect::<Vec<_>>()
    );
}

#[test]
fn registry_versions_advance_through_retraining() {
    let ds = workload(92);
    let dir = std::env::temp_dir().join(format!("overton-it-lifecycle-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let registry = ModelRegistry::open(&dir).unwrap();

    let opts = OvertonOptions {
        train: TrainConfig { epochs: 1, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    };
    let v1 = build(&ds, &opts).unwrap();
    registry.publish(&v1.artifact, "prod").unwrap();

    let mut opts2 = opts;
    opts2.train.epochs = 3;
    let v2 = build(&ds, &opts2).unwrap();
    let id2 = registry.publish(&v2.artifact, "prod").unwrap();

    assert_eq!(registry.list().unwrap().len(), 2);
    assert_eq!(registry.latest("prod").unwrap().unwrap(), id2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn regression_gate_catches_induced_regression() {
    // Build a decent model, then an intentionally crippled one (zero
    // epochs of training after compile = random weights), and confirm the
    // monitor flags the drop on overall groups.
    let ds = workload(93);
    let good = build(
        &ds,
        &OvertonOptions {
            train: TrainConfig { epochs: 4, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        },
    )
    .unwrap();
    let bad = build(
        &ds,
        &OvertonOptions {
            train: TrainConfig { epochs: 1, learning_rate: 0.0, ..Default::default() },
            ..Default::default()
        },
    )
    .unwrap();
    let before = &good.evaluation.reports["Intent"];
    let after = &bad.evaluation.reports["Intent"];
    let regs = regressions(before, after, 0.10);
    assert!(
        regs.iter().any(|r| r.group == "overall"),
        "expected an overall regression, got {regs:?}"
    );
}

#[test]
fn registry_publish_latest_fetch_hotswap_rollback_roundtrip() {
    use overton_model::{DeployableModel, FeatureSpace};

    let ds = workload(95);
    let space = FeatureSpace::build(&ds);
    let v1_model = CompiledModel::compile(
        ds.schema(),
        &space,
        &ModelConfig { seed: 1, ..Default::default() },
        None,
    );
    let v2_model = CompiledModel::compile(
        ds.schema(),
        &space,
        &ModelConfig { seed: 2, ..Default::default() },
        None,
    );
    let v1_artifact = DeployableModel::package(&v1_model, &space, BTreeMap::new());
    let v2_artifact = DeployableModel::package(&v2_model, &space, BTreeMap::new());

    let dir = std::env::temp_dir().join(format!("overton-it-rollback-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let registry = ModelRegistry::open(&dir).unwrap();
    let record = &ds.records()[ds.test_indices()[0]];

    // publish → latest → fetch → serve.
    let v1 = registry.publish(&v1_artifact, "prod").unwrap();
    assert_eq!(registry.latest("prod").unwrap().unwrap(), v1);
    let v1_server = Server::load(&registry.fetch(&v1).unwrap());
    let v1_response = v1_server.predict(record).unwrap();

    // Hot-swap: v2 becomes latest; the serving signature is unchanged, so
    // production can reload `latest` blindly.
    let v2 = registry.publish(&v2_artifact, "prod").unwrap();
    assert_ne!(v1, v2);
    assert_eq!(registry.latest("prod").unwrap().unwrap(), v2);
    let v2_server = Server::load(&registry.fetch(&v2).unwrap());
    assert_eq!(v1_server.signature(), v2_server.signature());
    v2_server.predict(record).unwrap();

    // Corrupt the v2 blob: fetching the latest version now fails with a
    // content-verification error...
    let blob = dir.join(format!("{}.model.json", v2.0));
    let mut bytes = std::fs::read(&blob).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&blob, bytes).unwrap();
    assert!(registry.fetch(&v2).is_err());

    // ...and rollback is just re-serving the previous version, which is
    // still intact and answers exactly as before.
    let rollback_server = Server::load(&registry.fetch(&v1).unwrap());
    assert_eq!(rollback_server.predict(record).unwrap(), v1_response);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trained_model_is_not_wildly_miscalibrated() {
    let ds = workload(94);
    let built = build(
        &ds,
        &OvertonOptions {
            train: TrainConfig { epochs: 5, early_stop_patience: 0, ..Default::default() },
            ..Default::default()
        },
    )
    .unwrap();
    let mut confidences = Vec::new();
    for (record_idx, prediction) in &built.evaluation.predictions {
        let record = &ds.records()[*record_idx];
        if let (
            Some(overton_model::TaskOutput::Multiclass { class, dist }),
            Some(overton_store::TaskLabel::MulticlassOne(gold)),
        ) = (prediction.tasks.get("Intent"), record.gold("Intent"))
        {
            let correct = overton_nlp::INTENTS.get(*class).is_some_and(|c| c == gold);
            confidences.push((f64::from(dist[*class]), correct));
        }
    }
    assert!(confidences.len() > 50);
    let report = calibration_report(&confidences, 10);
    // Small models trained on near-one-hot posteriors are overconfident;
    // the gate catches pathologies, not miscalibration per se.
    assert!(report.ece < 0.5, "ECE {:.3} is pathological", report.ece);
    // High-confidence predictions must still be mostly right.
    let confident: Vec<&(f64, bool)> = confidences.iter().filter(|(c, _)| *c > 0.9).collect();
    if confident.len() > 20 {
        let acc = confident.iter().filter(|(_, ok)| *ok).count() as f64 / confident.len() as f64;
        assert!(acc > 0.6, "high-confidence accuracy {acc:.3}");
    }
}

//! End-to-end live store: the incremental-ingest loop and its crash
//! safety.
//!
//! Two guarantees are exercised here. First, the compactor's atomic
//! commit protocol: a compaction killed at *any* of its fault points
//! must leave the previous generation fully readable from disk, and a
//! restart must be able to finish the merge cleanly. Second, the closed
//! loop from the acceptance criteria: drifting traffic through an
//! observed deployment raises a watchdog alert, the alerting slice's
//! gold-labeled traffic is captured into the live store, and an
//! incremental retrain warm-started from the previous run trains on the
//! base+delta snapshot — while a reader pinned to the pre-append
//! snapshot replays bit-identically and a concurrent compaction
//! perturbs neither result.

use overton::model::TrainConfig;
use overton::nlp::{
    generate_workload, DriftConfig, DriftingTrafficStream, KnowledgeBase, TrafficConfig,
    WorkloadConfig, SLICE_COMPLEX_DISAMBIGUATION,
};
use overton::obs::{ObsConfig, Severity, Watchdog, WatchdogConfig, TAG_CAPTURED};
use overton::store::live::{CompactPoint, COMPACT_POINTS};
use overton::store::{LiveStore, Record, ShardedStore};
use overton::{OvertonOptions, Project};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn quick_options() -> OvertonOptions {
    OvertonOptions {
        train: TrainConfig { epochs: 2, early_stop_patience: 0, ..Default::default() },
        ..Default::default()
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("overton-live-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn all_rows(store: &ShardedStore) -> Vec<Record> {
    (0..store.len()).map(|i| store.get(i).unwrap()).collect()
}

/// Kill the compactor at every fault point in turn. Whatever the point,
/// the store on disk must stay fully readable — the old generation if the
/// kill landed before the manifest rename (the commit point), the new one
/// if it landed after — with bit-identical rows either way, and a clean
/// restart must complete the merge.
#[test]
fn compaction_killed_at_every_point_leaves_the_store_readable() {
    let ds = generate_workload(&WorkloadConfig {
        n_train: 30,
        n_dev: 0,
        n_test: 0,
        seed: 71,
        ..Default::default()
    });
    for (i, point) in COMPACT_POINTS.into_iter().enumerate() {
        let dir = temp_root(&format!("crash-{i}"));
        let expected = {
            let live = LiveStore::create(&dir, ds.schema().clone()).unwrap();
            for batch in ds.records().chunks(10) {
                for record in batch {
                    live.append(record.clone()).unwrap();
                }
                live.flush().unwrap();
            }
            assert_eq!(live.num_deltas(), 3);
            let start_generation = live.generation();
            let expected = all_rows(live.snapshot().store());

            // Kill at this point: the hook aborts mid-protocol with no
            // cleanup, exactly like a crash.
            live.set_compaction_fault(Some(Box::new(move |p| p == point)));
            let err = live.compact().unwrap_err();
            assert!(
                err.to_string().contains("compaction killed"),
                "{point:?}: unexpected error {err}"
            );
            drop(live);

            // Recovery happens purely from disk.
            let reopened = LiveStore::open(&dir).unwrap();
            reopened.verify().unwrap();
            if point == CompactPoint::BeforeCleanup {
                // The manifest rename (the commit point) already
                // happened; only the old generation's cleanup was lost,
                // and open swept it.
                assert_eq!(reopened.generation(), start_generation + 1, "{point:?}");
                assert_eq!(reopened.num_deltas(), 0, "{point:?}");
            } else {
                assert_eq!(reopened.generation(), start_generation, "{point:?}");
                assert_eq!(reopened.num_deltas(), 3, "{point:?}");
            }
            assert_eq!(
                all_rows(reopened.snapshot().store()),
                expected,
                "{point:?}: rows changed across the crash"
            );

            // The restart finishes (or redoes) the merge cleanly.
            reopened.compact().unwrap();
            assert_eq!(reopened.num_deltas(), 0, "{point:?}");
            reopened.verify().unwrap();
            assert_eq!(all_rows(reopened.snapshot().store()), expected, "{point:?}");
            expected
        };

        // And the post-recovery world reopens one more time, unchanged.
        let last = LiveStore::open(&dir).unwrap();
        assert_eq!(all_rows(last.snapshot().store()), expected, "{point:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

const WINDOW: u64 = 250;

/// The acceptance loop: drift → watchdog alert → capture → incremental
/// retrain from a snapshot, with a pinned pre-append reader replaying
/// bit-identically and a concurrent compaction perturbing nothing.
#[test]
fn drift_capture_and_incremental_retrain_close_the_loop() {
    let root = temp_root("loop");
    let ds = generate_workload(&WorkloadConfig {
        n_train: 250,
        n_dev: 40,
        n_test: 150,
        seed: 13,
        ..Default::default()
    });
    let project =
        Project::from_dataset(&ds).named("livedemo").with_options(quick_options()).at(&root);
    let run = project.run().unwrap();
    assert_eq!(run.report().snapshot_generation, None, "a dataset project has no snapshot");

    // The deployment watches seeded traffic that drifts toward the hard
    // slice halfway through.
    let deployment = project.deploy(&run).unwrap();
    let mut monitor = deployment
        .watch_with(ObsConfig {
            window_len: WINDOW,
            rules: overton::obs::default_rules(deployment.pool().telemetry().slice_names()),
            ..Default::default()
        })
        .unwrap();
    let kb = KnowledgeBase::standard();
    let mut stream = DriftingTrafficStream::new(
        &kb,
        DriftConfig {
            base: TrafficConfig { seed: 5, ..Default::default() },
            drift_start: 4 * WINDOW as usize,
            drift_ramp: WINDOW as usize,
            ..Default::default()
        },
    );
    let mut served: Vec<Record> = Vec::new();
    for _ in 0..8 {
        let burst = stream.records(WINDOW as usize);
        served.extend(burst.iter().cloned());
        deployment.pool().process(burst);
        monitor.pump();
    }
    monitor.pump();

    // The live store starts from the training data the run was built on;
    // a reader pins the pre-append world.
    let live = Arc::new(LiveStore::create_from(root.join("live"), ds.seal()).unwrap());
    let snap0 = live.snapshot();
    let rows0 = all_rows(snap0.store());
    assert_eq!(snap0.generation(), 0);

    // Watchdog: the drifted slice is escalated, and its gold-labeled
    // traffic is captured into the live store.
    let watchdog = Watchdog::new(WatchdogConfig {
        min_severity: Severity::Warning,
        sustain_windows: 3,
        min_count: 10,
    });
    assert_eq!(watchdog.flagged_slices(&monitor), vec![SLICE_COMPLEX_DISAMBIGUATION.to_string()]);
    let captured = watchdog.capture_into(&monitor, &served, &live).unwrap();
    assert!(captured > 0, "drifted traffic must have capturable gold rows");
    assert_eq!(live.pending_rows(), captured);
    // Buffered rows are invisible until sealed — the pinned snapshot and
    // even a fresh one still see the base world.
    assert_eq!(live.snapshot().len(), rows0.len());
    live.flush().unwrap();
    let snap1 = live.snapshot();
    assert_eq!(snap1.len(), rows0.len() + captured);
    assert!(snap1.generation() > snap0.generation());
    let captured_row = snap1.store().get(rows0.len()).unwrap();
    assert!(captured_row.has_tag(TAG_CAPTURED) && captured_row.has_tag("train"));

    // Compact concurrently with everything below: pinned snapshots must
    // not notice (compact_min_deltas is above 1, so the kick forces it).
    let compactor = live.start_compactor(Duration::from_millis(20));
    compactor.kick();

    // The incremental retrain: warm-started from the previous run's
    // weights, trained on the base+delta snapshot — no re-ingest of the
    // two files. The captured gold rows target the drifted slice, so its
    // accuracy must not degrade (deterministic: everything is seeded).
    let report =
        project.retrain_for_slice_incremental(&run, &snap1, SLICE_COMPLEX_DISAMBIGUATION).unwrap();
    assert!(
        report.after >= report.before,
        "incremental retrain degraded the drifted slice: {} -> {}",
        report.before,
        report.after
    );
    let artifact = &report.build.artifact;
    assert_eq!(artifact.metadata.get("warm_started").map(String::as_str), Some("true"));
    assert_eq!(artifact.metadata.get("snapshot_generation"), Some(&snap1.generation().to_string()));

    // The pinned pre-append snapshot replays bit-identically: its rows
    // are untouched by the append and the (possibly finished) compaction,
    // and a full pipeline run over it reproduces the original evaluation
    // exactly.
    assert_eq!(all_rows(snap0.store()), rows0, "pinned snapshot rows changed");
    let replay = Project::from_snapshot(&snap0).with_options(quick_options()).run().unwrap();
    assert_eq!(replay.report().snapshot_generation, Some(0));
    assert_eq!(
        replay.evaluation().unwrap().reports,
        run.evaluation().unwrap().reports,
        "a run over the pinned snapshot must replay the original run bit-identically"
    );

    // The compactor never failed, the store verifies, and the sealed
    // world survives a cold reopen with the captured rows in append
    // order.
    compactor.stop();
    assert_eq!(live.take_compact_error(), None);
    live.verify().unwrap();
    let rows1 = all_rows(snap1.store());
    drop(snap0);
    drop(snap1);
    drop(live);
    let reopened = LiveStore::open(root.join("live")).unwrap();
    assert_eq!(reopened.sealed_rows(), rows0.len() + captured);
    assert_eq!(all_rows(reopened.snapshot().store()), rows1);

    drop(deployment);
    std::fs::remove_dir_all(&root).ok();
}

//! Integration-test package for the Overton workspace. All content lives in
//! the sibling `*.rs` integration-test targets; this library is empty.

#![warn(missing_docs)]

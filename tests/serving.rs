//! Integration: the serving runtime — batched worker pool, model-pair
//! cascade, canary deployment with promotion and auto-rollback, live
//! telemetry — across crates.

use overton_model::{
    distill, prepare, CompiledModel, DeployableModel, ModelConfig, ModelPair, ModelRegistry,
    Server, TrainConfig,
};
use overton_nlp::{generate_workload, KnowledgeBase, TrafficConfig, TrafficStream, WorkloadConfig};
use overton_serving::{
    CanaryConfig, CanaryOutcome, CascadeEngine, DeployEvent, DeploymentManager, ServingConfig,
    TrafficBaseline, WorkerPool,
};
use overton_store::{Dataset, Record};
use overton_supervision::CombineMethod;
use std::collections::BTreeMap;
use std::sync::Arc;

fn workload(seed: u64) -> Dataset {
    generate_workload(&WorkloadConfig {
        n_train: 300,
        n_dev: 60,
        n_test: 60,
        seed,
        slice_rate: 0.12,
        ..Default::default()
    })
}

fn small_config() -> ModelConfig {
    ModelConfig { token_dim: 16, hidden_dim: 16, ..Default::default() }
}

/// A trained large/small pair over one workload.
fn trained_pair(ds: &Dataset) -> (ModelPair, overton_model::FeatureSpace) {
    let prepared = prepare(ds, &CombineMethod::default()).unwrap();
    let train_cfg = TrainConfig { epochs: 4, early_stop_patience: 0, ..Default::default() };
    let mut teacher =
        CompiledModel::compile(ds.schema(), &prepared.space, &ModelConfig::default(), None);
    overton_model::train_model(&mut teacher, &prepared.train, &prepared.dev, &train_cfg);
    let mut student = CompiledModel::compile(ds.schema(), &prepared.space, &small_config(), None);
    distill(&teacher, &mut student, &prepared.train, &prepared.dev, &train_cfg);
    let pair = ModelPair {
        large: DeployableModel::package(&teacher, &prepared.space, BTreeMap::new()),
        small: DeployableModel::package(&student, &prepared.space, BTreeMap::new()),
    };
    (pair, prepared.space)
}

fn traffic(seed: u64, n: usize) -> Vec<Record> {
    let kb = KnowledgeBase::standard();
    TrafficStream::new(
        &kb,
        TrafficConfig { qps: 500.0, seed, slice_rate: 0.12, ..Default::default() },
    )
    .records(n)
}

fn temp_registry(tag: &str) -> ModelRegistry {
    let dir = std::env::temp_dir().join(format!("overton-serving-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    ModelRegistry::open(dir).unwrap()
}

/// The acceptance workload: ≥ 1,000 generated queries through the worker
/// pool with batching enabled and the small→large cascade live, telemetry
/// collected against a training-time baseline.
#[test]
fn thousand_queries_through_batched_pool_and_cascade() {
    let ds = workload(201);
    let (pair, _space) = trained_pair(&ds);
    assert!(pair.synchronized());

    // Pick the escalation threshold at the small model's median confidence
    // on a probe sample, so both cascade routes carry real traffic.
    let small_server = Server::load(&pair.small);
    let probe = traffic(9, 100);
    let mut confidences: Vec<f32> =
        small_server.predict_batch(&probe).into_iter().map(|r| r.unwrap().confidence).collect();
    confidences.sort_by(f32::total_cmp);
    let threshold = confidences[confidences.len() / 2];

    // Training-time baseline for drift telemetry, from the curated dev set.
    let dev_records: Vec<Record> =
        ds.dev_indices().iter().map(|&i| ds.records()[i].clone()).collect();
    let baseline = TrafficBaseline::collect(&small_server, &dev_records).unwrap();

    let engine = Arc::new(CascadeEngine::from_pair(&pair, threshold).unwrap());
    let pool = WorkerPool::start(
        Arc::clone(&engine),
        ServingConfig { workers: 4, max_batch: 32 },
        Some(baseline),
    );

    let records = traffic(10, 1000);
    let replies = pool.process(records.clone());
    assert_eq!(replies.len(), 1000);
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(reply.seq, i as u64, "replies must return in submission order");
        assert!(reply.result.is_ok(), "record {i} failed: {:?}", reply.result);
    }
    // Dynamic micro-batching kicked in: a 1,000-record burst cannot have
    // been served one record at a time.
    assert!(
        replies.iter().any(|r| r.batch_size > 1),
        "no batching happened across a 1,000-record burst"
    );
    assert!(replies.iter().all(|r| r.batch_size <= 32));

    // Both cascade routes carried traffic and every request was routed.
    let counters = engine.counters();
    assert_eq!(counters.small + counters.escalated, 1000, "{counters:?}");
    assert!(counters.small > 0, "nothing stayed on the small model: {counters:?}");
    assert!(counters.escalated > 0, "nothing escalated: {counters:?}");
    assert!((0.0..1.0).contains(&counters.escalation_rate()));

    // Escalated responses are exactly the large model's answers.
    let large_server = Server::load(&pair.large);
    let mut checked = 0;
    for (record, reply) in records.iter().zip(&replies).take(200) {
        if reply.route == overton_serving::Route::Large {
            assert_eq!(*reply.result.as_ref().unwrap(), large_server.predict(record).unwrap());
            checked += 1;
        }
    }
    assert!(checked > 0);

    // Telemetry: counts, quantiles, slice shares and drift all populated.
    let snap = pool.snapshot();
    assert_eq!(snap.served, 1000);
    assert_eq!(snap.errors, 0);
    assert!(snap.qps > 0.0);
    assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
    assert!(snap.p99 > std::time::Duration::ZERO);
    assert!((0.0..=1.0).contains(&snap.mean_confidence));
    assert!(snap.confidence_drift.is_some());
    assert!(!snap.slice_shares.is_empty());
    let drift = snap.slice_drift.as_ref().unwrap();
    assert_eq!(drift.len(), snap.slice_shares.len());
    assert!(snap.to_string().contains("qps"));

    pool.shutdown();
}

/// Canary deployment: a better candidate is promoted (hot-swapping the
/// pool's engine behind the stable serving signature), a broken candidate
/// is auto-rolled-back by the per-slice regression gate.
#[test]
fn canary_promotion_and_auto_rollback() {
    let ds = workload(202);
    let (pair, space) = trained_pair(&ds);
    let registry = temp_registry("canary");

    // v1: the distilled small model becomes the incumbent.
    let v1 = registry.publish(&pair.small, "prod").unwrap();
    let mut manager = DeploymentManager::open(registry, "prod", 0.0).unwrap();
    assert_eq!(manager.incumbent_id(), &v1);

    let pool = Arc::new(WorkerPool::start(
        manager.build_engine().unwrap(),
        ServingConfig { workers: 2, max_batch: 16 },
        None,
    ));
    manager.attach_pool(Arc::clone(&pool));
    let signature_before = pool.engine().signature().clone();

    let gate = CanaryConfig { regression_threshold: 0.2, min_scored: 100 };

    // --- Auto-rollback: an untrained candidate regresses everywhere. ---
    let junk_model = CompiledModel::compile(ds.schema(), &space, &small_config(), None);
    let junk = DeployableModel::package(&junk_model, &space, BTreeMap::new());
    let junk_id = manager.publish(&junk).unwrap();
    manager.start_canary(&junk_id).unwrap();
    assert!(manager.canary_active());
    // Live traffic flows while the canary shadows; live answers come from
    // the incumbent via the pool.
    let live = manager.observe(&traffic(11, 300));
    assert!(live.iter().all(Result::is_ok));
    // Resolving too early is refused by the gate.
    assert!(manager.resolve_canary(&CanaryConfig { min_scored: 100_000, ..gate.clone() }).is_err());
    let (inc_reports, cand_reports) = manager.canary_reports().unwrap();
    assert!(inc_reports.contains_key("Intent") && cand_reports.contains_key("Intent"));
    match manager.resolve_canary(&gate).unwrap() {
        CanaryOutcome::RolledBack { id, regressions } => {
            assert_eq!(id, junk_id);
            assert!(!regressions.is_empty());
            assert!(regressions.values().any(|regs| regs.iter().any(|r| r.group == "overall")));
        }
        CanaryOutcome::Promoted { .. } => panic!("junk model must not be promoted"),
    }
    assert_eq!(manager.incumbent_id(), &v1, "rollback must keep the incumbent");
    assert!(!manager.canary_active());

    // --- Promotion: the large (quality) model clears the gate. ---
    let v2 = manager.publish(&pair.large).unwrap();
    manager.start_canary(&v2).unwrap();
    manager.observe(&traffic(12, 300));
    match manager.resolve_canary(&gate).unwrap() {
        CanaryOutcome::Promoted { id } => assert_eq!(id, v2),
        CanaryOutcome::RolledBack { regressions, .. } => {
            panic!("large model unexpectedly rolled back: {regressions:?}")
        }
    }
    assert_eq!(manager.incumbent_id(), &v2);
    assert_eq!(manager.registry().latest("prod").unwrap().unwrap(), v2);

    // The pool hot-swapped behind the same serving signature and now
    // answers with the promoted model.
    assert_eq!(*pool.engine().signature(), signature_before);
    let check = traffic(13, 8);
    let large_server = Server::load(&pair.large);
    for (record, reply) in check.iter().zip(pool.process(check.clone())) {
        assert_eq!(reply.result.unwrap(), large_server.predict(record).unwrap());
    }

    // The deployment log tells the whole story.
    let events = manager.events();
    assert_eq!(events.iter().filter(|e| matches!(e, DeployEvent::RolledBack(..))).count(), 1);
    assert_eq!(events.iter().filter(|e| matches!(e, DeployEvent::Promoted(_))).count(), 1);
    assert_eq!(events.iter().filter(|e| matches!(e, DeployEvent::CanaryStarted(_))).count(), 2);

    // Double-canary and unknown-artifact starts are rejected cleanly.
    assert!(manager.start_canary(&v1).is_ok());
    assert!(manager.start_canary(&v2).is_err());
}
